"""The autonomic loop: LRGP continuously driving a live system.

The paper positions LRGP as a self-optimization scheme for autonomic
event-driven infrastructures (section 1), iterating continuously while
enacting decisions only when they are "sufficiently different" (section
2.1).  This example wires the whole stack together:

* an :class:`EventInfrastructure` runs the base workload's traffic;
* an :class:`LRGP` optimizer iterates once per simulated time unit;
* a threshold :class:`Enactor` applies allocations only on real change;
* at t=60 flow f5 (serving the highest-ranked class, as in figure 3)
  leaves the system — the optimizer re-converges and the controller
  re-enacts.

Run:  python examples/autonomic_recovery.py
"""

from repro import LRGP, LRGPConfig, total_utility
from repro.core.enactment import ThresholdEnactment
from repro.events import AutonomicController, EventInfrastructure
from repro.workloads import base_workload


def main() -> None:
    problem = base_workload()
    optimizer = LRGP(problem, LRGPConfig.adaptive())
    infrastructure = EventInfrastructure(problem)
    controller = AutonomicController(
        optimizer=optimizer,
        infrastructure=infrastructure,
        policy=ThresholdEnactment(rate_rel_change=0.05, population_abs_change=25),
    )

    print("phase 1: converge on the full system (60 control ticks)")
    enactments = controller.run(60)
    allocation = infrastructure.allocation()
    print(f"  enactments: {enactments} / 60 ticks "
          f"(churn {controller.enactor.total_churn:,} consumer moves)")
    print(f"  enacted utility: {total_utility(problem, allocation):,.0f}")
    print(f"  deliveries so far: {infrastructure.total_deliveries():,}")

    print("\nphase 2: flow f5 leaves the system (figure 3 dynamics)")
    optimizer.remove_flow("f5")
    # The live system stops producing on f5 and unadmits its consumers.
    infrastructure.producers["f5"].set_rate(0.0)
    for class_id in ("c18", "c19"):
        node = problem.classes[class_id].node
        infrastructure.brokers[node].set_admitted(class_id, 0)

    before = controller.enactor.enactments
    controller.run(60)
    print(f"  re-enactments after the change: "
          f"{controller.enactor.enactments - before}")
    final = infrastructure.allocation()
    final.rates.pop("f5", None)
    final.populations.pop("c18", None)
    final.populations.pop("c19", None)
    print(f"  re-converged utility: "
          f"{total_utility(optimizer.problem, final):,.0f} "
          f"(capacity freed by f5 reabsorbed by other classes)")
    print(f"  total enactments: {controller.enactor.enactments}, "
          f"total churn: {controller.enactor.total_churn:,}")


if __name__ == "__main__":
    main()
