"""LRGP as an actually-distributed protocol.

The other examples use the centralized reference driver.  This one deploys
the same algorithms as message-passing agents (one source agent per flow,
one node agent per broker, per the paper's Algorithms 1-3):

1. synchronous barrier rounds — provably identical to the reference driver;
2. asynchronous execution with jittered clocks, 250 ms mean latency and
   10% message loss, with sources averaging the last 3 prices per resource
   (the Low & Lapsley technique the paper cites in section 3.5).

Run:  python examples/distributed_deployment.py
"""

from repro import LRGP, LRGPConfig, base_workload
from repro.core.gamma import AdaptiveGamma
from repro.runtime import AsyncConfig, AsynchronousRuntime, SynchronousRuntime


def main() -> None:
    problem = base_workload()

    reference = LRGP(problem, LRGPConfig.adaptive())
    reference.run(150)
    print(f"reference driver:     utility {reference.utilities[-1]:,.0f}")

    sync = SynchronousRuntime(problem, node_gamma=AdaptiveGamma())
    sync.run(150)
    drift = max(
        abs(a - b) for a, b in zip(sync.utilities, reference.utilities)
    )
    print(
        f"synchronous runtime:  utility {sync.utilities[-1]:,.0f}  "
        f"({sync.messages_sent:,} protocol messages, max drift from "
        f"reference {drift:.2e})"
    )

    async_runtime = AsynchronousRuntime(
        problem,
        AsyncConfig(
            latency_mean=0.25,
            loss_probability=0.10,
            averaging_window=3,
            seed=42,
        ),
    )
    async_runtime.run_until(150.0)
    print(
        f"asynchronous runtime: utility {async_runtime.converged_utility():,.0f}  "
        f"({async_runtime.messages_sent:,} sent, "
        f"{async_runtime.messages_lost:,} lost)"
    )
    gap = abs(async_runtime.converged_utility() - reference.utilities[-1])
    print(
        f"async vs reference gap: {gap / reference.utilities[-1] * 100:.3f}% "
        f"despite latency jitter and 10% loss"
    )


if __name__ == "__main__":
    main()
