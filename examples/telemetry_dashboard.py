"""A terminal dashboard built on the telemetry layer.

Runs LRGP on the base workload with a live `Telemetry` attached, then
renders what an operator's dashboard would show: a sparkline of the
utility trajectory, phase timings from the metrics registry, price/gamma
activity per resource, and the convergence diagnostics report (stability
per section 4.3, eq. 4-5 slack, gap to the analytic upper bound).

Everything here is assembled from public `repro.obs` pieces — the same
ones `python -m repro stats` and `python -m repro trace` use.

Run:  python examples/telemetry_dashboard.py
"""

from repro import LRGP, LRGPConfig, MemorySink, Telemetry, base_workload
from repro.baselines.bounds import utility_upper_bound
from repro.obs import ConvergenceDiagnostics, render_diagnostics, render_metrics

SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int = 60) -> str:
    """Down-sample a series into one row of block characters."""
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    return "".join(
        SPARKS[int((v - low) / span * (len(SPARKS) - 1))] for v in values
    )


def main() -> None:
    problem = base_workload()
    telemetry = Telemetry(sink=MemorySink())
    optimizer = LRGP(problem, LRGPConfig.adaptive(telemetry=telemetry))
    optimizer.run(250)

    events = telemetry.sink.events
    utilities = [e.utility for e in telemetry.sink.of_kind("iteration")]
    print("=" * 72)
    print("LRGP telemetry dashboard — base workload, 250 iterations")
    print("=" * 72)
    print()
    print(f"utility  {utilities[0]:>12,.0f} … {utilities[-1]:>12,.0f}")
    print(f"         {sparkline(utilities)}")
    print()

    print(render_metrics(telemetry.registry.snapshot()))
    print()

    gamma_steps = telemetry.sink.of_kind("gamma_step")
    fluctuations = sum(1 for e in gamma_steps if e.fluctuated)
    print(
        f"adaptive gamma: {len(gamma_steps)} adjustments, "
        f"{fluctuations} fluctuation backoffs"
    )
    print()

    report = ConvergenceDiagnostics(
        utility_bound=utility_upper_bound(problem)
    ).analyze(events)
    print(render_diagnostics(report))
    print()
    print(
        f"({len(events):,} events captured in memory; swap MemorySink for "
        f"JsonlSink('trace.jsonl') to stream them to disk)"
    )


if __name__ == "__main__":
    main()
