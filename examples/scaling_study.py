"""Scalability study (paper section 4.3 / Table 2, LRGP side).

Runs LRGP on the six scaled workloads and shows the paper's two findings:

* iterations-until-convergence stays flat as the system grows;
* achieved utility grows linearly with the number of consumer nodes.

(The full LRGP-vs-simulated-annealing comparison, which is much slower, is
in ``benchmarks/test_table2_scalability.py``.)

Run:  python examples/scaling_study.py
"""

import time

from repro import LRGP, LRGPConfig
from repro.core.convergence import iterations_until_convergence
from repro.workloads import TABLE2_WORKLOADS

PAPER_LRGP = {
    "6 flows, 3 c-nodes": (21, 1_328_821),
    "12 flows, 6 c-nodes": (21, 2_657_600),
    "24 flows, 12 c-nodes": (24, 5_313_612),
    "6 flows, 6 c-nodes": (22, 2_656_706),
    "6 flows, 12 c-nodes": (22, 5_313_412),
    "6 flows, 24 c-nodes": (22, 10_626_824),
}


def main() -> None:
    print(
        f"{'workload':24} {'iters':>6} {'utility':>12} "
        f"{'paper iters':>12} {'paper utility':>14} {'secs':>6}"
    )
    base_utility = None
    for label, build in TABLE2_WORKLOADS.items():
        problem = build()
        started = time.perf_counter()
        optimizer = LRGP(problem, LRGPConfig.adaptive())
        optimizer.run(250)
        elapsed = time.perf_counter() - started
        iterations = iterations_until_convergence(optimizer.utilities)
        utility = optimizer.utilities[-1]
        if base_utility is None:
            base_utility = utility
        paper_iterations, paper_utility = PAPER_LRGP[label]
        print(
            f"{label:24} {iterations!s:>6} {utility:12,.0f} "
            f"{paper_iterations:>12} {paper_utility:>14,} {elapsed:6.2f}"
        )

    print(
        "\nLinearity check (utility / base utility vs c-node factor):"
    )
    for label, build in TABLE2_WORKLOADS.items():
        problem = build()
        optimizer = LRGP(problem, LRGPConfig.adaptive())
        optimizer.run(120)
        nodes = len(problem.consumer_nodes())
        print(
            f"  {label:24} c-nodes x{nodes // 3}: utility ratio "
            f"{optimizer.utilities[-1] / base_utility:.3f}"
        )


if __name__ == "__main__":
    main()
