"""Quickstart: optimize the paper's base workload through ``repro.solve``.

Builds the Table 1 workload (6 flows, 3 consumer nodes, 20 consumer
classes), solves it with 250 LRGP iterations via the unified front door
and prints the resulting allocation — flow rates, admitted populations,
node prices — plus the utility trajectory summary.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    problem = repro.base_workload()
    print(f"Workload: {problem.describe()}")

    result = repro.solve(problem, method="lrgp", iterations=250)
    allocation = result.allocation

    print(f"Total utility:  {result.utility:,.0f}   (paper reports 1,328,821)")
    print(f"Converged after {result.converged_at} iterations (paper reports 21)")
    print(f"Feasible:       {repro.is_feasible(problem, allocation)}")

    print("\nFlow rates (r in [10, 1000]):")
    for flow_id in sorted(allocation.rates):
        print(f"  {flow_id}: {allocation.rates[flow_id]:8.2f} msg/s")

    print("\nAdmitted consumers (class: admitted / connected):")
    for class_id in sorted(problem.classes):
        cls = problem.classes[class_id]
        admitted = allocation.population(class_id)
        if admitted > 0:
            print(
                f"  {class_id} @ {cls.node} (flow {cls.flow_id}): "
                f"{admitted:5d} / {cls.max_consumers}"
            )

    print("\nNode prices (the marginal value of node capacity):")
    for node_id, price in sorted(result.metadata["node_prices"].items()):
        print(f"  {node_id}: {price:.6f}")


if __name__ == "__main__":
    main()
