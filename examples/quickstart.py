"""Quickstart: optimize the paper's base workload with LRGP.

Builds the Table 1 workload (6 flows, 3 consumer nodes, 20 consumer
classes), runs 250 LRGP iterations and prints the resulting allocation —
flow rates, admitted populations, node prices — plus the utility trajectory
summary.

Run:  python examples/quickstart.py
"""

from repro import LRGP, LRGPConfig, base_workload, is_feasible, total_utility
from repro.core.convergence import iterations_until_convergence


def main() -> None:
    problem = base_workload()
    print(f"Workload: {problem.describe()}")

    optimizer = LRGP(problem, LRGPConfig.adaptive())
    optimizer.run(250)

    allocation = optimizer.allocation()
    utility = total_utility(problem, allocation)
    converged = iterations_until_convergence(optimizer.utilities)

    print(f"Total utility:  {utility:,.0f}   (paper reports 1,328,821)")
    print(f"Converged after {converged} iterations (paper reports 21)")
    print(f"Feasible:       {is_feasible(problem, allocation)}")

    print("\nFlow rates (r in [10, 1000]):")
    for flow_id in sorted(allocation.rates):
        print(f"  {flow_id}: {allocation.rates[flow_id]:8.2f} msg/s")

    print("\nAdmitted consumers (class: admitted / connected):")
    for class_id in sorted(problem.classes):
        cls = problem.classes[class_id]
        admitted = allocation.population(class_id)
        if admitted > 0:
            print(
                f"  {class_id} @ {cls.node} (flow {cls.flow_id}): "
                f"{admitted:5d} / {cls.max_consumers}"
            )

    print("\nNode prices (the marginal value of node capacity):")
    for node_id, price in sorted(optimizer.node_prices().items()):
        print(f"  {node_id}: {price:.6f}")


if __name__ == "__main__":
    main()
