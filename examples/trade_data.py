"""The Trade Data scenario (paper section 1.1), end to end.

A market-data flow serves two consumer populations: a few *gold* consumers
at a brokerage (paying, reliable delivery, costly per consumer) and
thousands of *public* consumers over the Internet (messages stripped of
gold-only fields).  We:

1. optimize the scenario with LRGP,
2. enact the allocation into the discrete-event pub/sub simulator,
3. verify gold consumers keep service and see the full payload while public
   consumers receive the projected payload,
4. halve the Internet PoP's capacity and show admission control shedding
   public consumers while gold service is preserved.

Run:  python examples/trade_data.py
"""

from repro import LRGP, total_utility
from repro.events import EventInfrastructure
from repro.workloads import trade_data_scenario


def optimize(problem):
    optimizer = LRGP(problem)
    optimizer.run(250)
    return optimizer.allocation()


def main() -> None:
    scenario = trade_data_scenario()
    problem = scenario.problem
    print(f"Scenario: {scenario.name} — {problem.describe()}")

    allocation = optimize(problem)
    print(f"\nLRGP allocation (utility {total_utility(problem, allocation):,.0f}):")
    print(f"  trade rate: {allocation.rates['trades']:.1f} msg/s")
    print(f"  gold admitted:   {allocation.population('gold'):5d} / "
          f"{problem.classes['gold'].max_consumers}")
    print(f"  public admitted: {allocation.population('public'):5d} / "
          f"{problem.classes['public'].max_consumers}")

    infra = EventInfrastructure(
        problem,
        payload_factories=scenario.payload_factories,
        transforms=scenario.transforms,
    )
    infra.enact(allocation)
    infra.run_for(2.0)

    gold = infra.consumers["gold"][0]
    public = infra.consumers["public"][0]
    print("\nAfter 2s of simulated traffic:")
    print(f"  deliveries: {infra.total_deliveries():,}")
    print(f"  gold consumer received {gold.received} messages; "
          f"payload fields: {sorted(gold.last_payload or {})}")
    print(f"  public consumer received {public.received} messages; "
          f"payload fields: {sorted(public.last_payload or {})}")
    assert "counterparty" in (gold.last_payload or {})
    assert "counterparty" not in (public.last_payload or {}), "field not stripped!"

    # -- capacity crunch: the Internet PoP loses half its CPU ----------------
    print("\n--- internet-pop capacity halved (failure / co-tenancy) ---")
    crunched = problem.with_node_capacity(
        "internet-pop", problem.nodes["internet-pop"].capacity / 2.0
    )
    crunched_allocation = optimize(crunched)
    print(f"  trade rate: {crunched_allocation.rates['trades']:.1f} msg/s")
    print(f"  gold admitted:   {crunched_allocation.population('gold'):5d}"
          f"  (was {allocation.population('gold')})")
    print(f"  public admitted: {crunched_allocation.population('public'):5d}"
          f"  (was {allocation.population('public')})")
    shed = allocation.population("public") - crunched_allocation.population("public")
    print(f"  -> admission control shed {shed} public consumers; "
          f"gold service preserved")


if __name__ == "__main__":
    main()
