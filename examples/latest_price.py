"""The Latest Price Data scenario (paper section 1.1).

An elastic flow of latest-price updates; consumers at each PoP apply a
content filter (``price > threshold``), which is exactly the per-consumer
CPU work the ``G`` coefficient models.  The flow is *elastic*: under
pressure the system can reduce the update rate (raising latency) instead of
— or as well as — denying consumers.

We optimize at three node-capacity levels and show the rate/admission
tradeoff moving: plenty of capacity -> high rate, everyone admitted;
squeezed -> the rate drops first (elastic), then consumers are shed.

Run:  python examples/latest_price.py
"""

from repro import LRGP, total_utility
from repro.events import EventInfrastructure
from repro.model.costs import GRYPHON_NODE_CAPACITY
from repro.workloads import latest_price_scenario


def main() -> None:
    print(f"{'capacity':>12}  {'rate':>8}  {'admitted':>18}  {'utility':>12}")
    for factor in (1.0, 0.25, 0.05):
        scenario = latest_price_scenario(
            node_capacity=GRYPHON_NODE_CAPACITY * factor
        )
        problem = scenario.problem
        optimizer = LRGP(problem)
        optimizer.run(250)
        allocation = optimizer.allocation()
        admitted = {
            class_id: allocation.population(class_id)
            for class_id in sorted(problem.classes)
        }
        print(
            f"{GRYPHON_NODE_CAPACITY * factor:12,.0f}  "
            f"{allocation.rates['prices']:8.2f}  "
            f"{str(list(admitted.values())):>18}  "
            f"{total_utility(problem, allocation):12,.0f}"
        )

    # Run the full-capacity system and show the filters working.
    scenario = latest_price_scenario()
    problem = scenario.problem
    optimizer = LRGP(problem)
    optimizer.run(250)
    infra = EventInfrastructure(
        problem,
        payload_factories=scenario.payload_factories,
        transforms=scenario.transforms,
    )
    infra.enact(optimizer.allocation())
    infra.run_for(5.0)

    print("\nContent filters in action (5s of traffic):")
    for class_id in sorted(infra.consumers):
        broker = infra.brokers[problem.classes[class_id].node]
        transform = broker.attachment(class_id).transform
        consumer = infra.consumers[class_id][0]
        print(
            f"  {class_id}: filter passed {transform.passed}/{transform.evaluated} "
            f"messages; consumer 0 received {consumer.received} "
            f"(mean latency {consumer.mean_latency * 1000:.2f} ms)"
        )


if __name__ == "__main__":
    main()
