"""Sweep result rendering: table, plan, CSV/JSON exports, bench payload.

The farm produces :class:`~repro.sweep.farm.SweepResult`; this module is
every presentation of it — the ``repro sweep run`` table, the
``--dry-run`` plan, machine-readable CSV/JSON, the ``BENCH_sweep.json``
payload that ``repro bench snapshot`` folds into the trajectory, and a
sweep-vs-sweep comparison built on the same threshold/direction engine
as ``repro bench compare``.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence
from typing import Any

from repro.obs.bench import compare_snapshots, render_comparison
from repro.sweep.farm import SweepCell, SweepResult
from repro.sweep.spec import RunConfig

__all__ = [
    "bench_payload",
    "render_sweep_comparison",
    "render_sweep_plan",
    "render_sweep_report",
    "sweep_to_csv",
    "sweep_to_json",
]

#: Columns of the CSV export, in order.
_CSV_FIELDS = (
    "label",
    "workload",
    "method",
    "engine",
    "gamma",
    "fault_plan",
    "iterations",
    "seed",
    "repeat",
    "cached",
    "status",
    "error",
    "key",
    "utility",
    "converged_at",
    "retention",
    "wall_time_seconds",
)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _cell_row(cell: SweepCell) -> dict[str, Any]:
    metrics = cell.metrics
    timing = cell.payload.get("timing")
    wall = (
        timing.get("wall_time_seconds") if isinstance(timing, dict) else None
    )
    config = cell.config
    return {
        "label": cell.label,
        "workload": config.workload,
        "method": config.method,
        "engine": config.engine,
        "gamma": config.gamma,
        "fault_plan": (
            None
            if config.fault_plan is None
            else ",".join(f"{k}={v:g}" for k, v in config.fault_plan)
        ),
        "iterations": config.iterations,
        "seed": config.seed,
        "repeat": config.repeat,
        "cached": cell.cached,
        "status": cell.status,
        "error": (
            None
            if cell.error is None
            else f"{cell.error.get('type')}: {cell.error.get('message')}"
        ),
        "key": cell.key,
        "utility": metrics.get("utility"),
        "converged_at": metrics.get("converged_at"),
        "retention": metrics.get("retention"),
        "wall_time_seconds": wall,
    }


def render_sweep_report(result: SweepResult) -> str:
    """The ``repro sweep run`` table: one line per cell plus the farm
    summary (hits/executed/jobs/wall time)."""
    header = ("cell", "utility", "conv", "time", "source", "status")
    rows = [header]
    for cell in result.cells:
        row = _cell_row(cell)
        rows.append(
            (
                cell.label,
                _fmt(row["utility"]),
                _fmt(row["converged_at"]),
                _fmt(row["wall_time_seconds"]) + "s"
                if row["wall_time_seconds"] is not None
                else "-",
                "cache" if cell.cached else "run",
                cell.status,
            )
        )
    widths = [
        max(len(row[column]) for row in rows) for column in range(len(header))
    ]
    lines = [
        "  ".join(value.ljust(width) for value, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    summary = (
        f"{len(result.cells)} cell(s): {result.hits} cached, "
        f"{result.executed} executed (jobs={result.jobs}, "
        f"{result.wall_time_seconds:.2f}s)"
    )
    if result.failed:
        summary += f"; {result.failed} cell(s) FAILED"
    if result.corrupt_entries:
        summary += f"; {result.corrupt_entries} corrupt entr(y/ies) repaired"
    lines.append(summary)
    for cell in result.cells:
        if cell.failed and cell.error is not None:
            lines.append(
                f"  failed: {cell.label}: {cell.error.get('type')}: "
                f"{cell.error.get('message')}"
            )
    return "\n".join(lines)


def render_sweep_plan(
    plan: Sequence[tuple[RunConfig, str, str]],
) -> str:
    """The ``--dry-run`` view: per-cell hit/miss status, then totals."""
    lines = []
    counts = {"hit": 0, "miss": 0, "forced": 0}
    for config, key, status in plan:
        counts[status] = counts.get(status, 0) + 1
        lines.append(f"{status:<6} {key[:12]}  {config.label()}")
    will_run = counts["miss"] + counts["forced"]
    lines.append(
        f"{len(plan)} cell(s): {counts['hit']} cached, "
        f"{will_run} to execute"
        + (f" ({counts['forced']} forced)" if counts["forced"] else "")
    )
    return "\n".join(lines)


def sweep_to_csv(result: SweepResult) -> str:
    """CSV export, one row per cell in grid order."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_CSV_FIELDS, lineterminator="\n")
    writer.writeheader()
    for cell in result.cells:
        row = _cell_row(cell)
        writer.writerow({name: row[name] for name in _CSV_FIELDS})
    return buffer.getvalue()


def sweep_to_json(result: SweepResult) -> dict[str, Any]:
    """Full JSON export: farm bookkeeping plus every cell's payload."""
    return {
        "jobs": result.jobs,
        "wall_time_seconds": result.wall_time_seconds,
        "cells_total": len(result.cells),
        "hits": result.hits,
        "executed": result.executed,
        "failed": result.failed,
        "corrupt_entries": result.corrupt_entries,
        "cells": [
            {
                "config": cell.config.to_dict(),
                "key": cell.key,
                "cached": cell.cached,
                "payload": cell.payload,
            }
            for cell in result.cells
        ],
    }


def bench_payload(result: SweepResult) -> dict[str, Any]:
    """The ``BENCH_sweep.json`` shape: numeric leaves only, named so the
    trajectory's direction inference reads them correctly (``utility`` /
    ``hit_rate`` higher-is-better, ``*_seconds`` lower).

    Cell keys use ``label`` with ``/`` separators, which flatten into
    one path segment under ``collect_metrics`` — each cell stays one
    metric family.
    """
    cells: dict[str, dict[str, float]] = {}
    for cell in result.cells:
        metrics: dict[str, float] = {}
        for name in ("utility", "converged_at", "retention"):
            value = cell.metrics.get(name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                metrics[name] = float(value)
        cells[cell.label] = metrics
    total = len(result.cells)
    wall = result.wall_time_seconds
    return {
        "farm": {
            "cells_total": total,
            "hits": result.hits,
            "executed": result.executed,
            "failed": result.failed,
            "hit_rate": (result.hits / total) if total else 0.0,
            "jobs": result.jobs,
            "wall_time_seconds": wall,
            "cells_per_second": (total / wall) if wall > 0.0 else 0.0,
        },
        "cells": {label: cells[label] for label in sorted(cells)},
    }


def render_sweep_comparison(
    old: dict[str, Any],
    new: dict[str, Any],
    threshold: float = 0.10,
) -> str:
    """Diff two sweep bench payloads (or full JSON exports) with the same
    threshold/direction engine as ``repro bench compare``."""
    comparison = compare_snapshots(old, new, threshold)
    return render_comparison(comparison)
