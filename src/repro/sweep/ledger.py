"""The run ledger: an append-only record of every sweep invocation.

The result cache remembers *cells*; nothing remembered *runs* — how big
the grid was, how much of it was already cached, how long it took, which
package version produced it.  The ledger is that memory: one JSON line
per ``run_sweep`` invocation appended to ``ledger.jsonl`` in the cache
root, next to the entries it describes (wiping the cache dir wipes its
history with it, which is the honest scope).

JSONL because appends are atomic enough at one-line granularity and a
torn final line (crashed process) must not poison the history: the
reader skips unparseable lines and reports how many it skipped, the
same corrupt-entry-is-a-miss stance as :class:`~repro.sweep.cache.ResultCache`.

``repro sweep ledger`` renders the tail; ``repro bench snapshot`` folds
the farm throughput numbers (``cells_per_second``, ``hit_rate``) in via
the sweep bench payload, not the ledger — the ledger is an audit trail,
not a metrics store.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Any

import repro
from repro.canonical import canonical_json, content_hash

if TYPE_CHECKING:
    from repro.sweep.farm import SweepResult
    from repro.sweep.spec import RunConfig

__all__ = [
    "LEDGER_FILENAME",
    "LEDGER_VERSION",
    "RunLedger",
    "ledger_record",
    "render_ledger",
]

#: Bump when the record shape changes (readers tolerate both directions:
#: unknown fields are ignored, missing ones render as ``-``).
LEDGER_VERSION = 1

LEDGER_FILENAME = "ledger.jsonl"


def ledger_record(
    result: "SweepResult",
    configs: tuple["RunConfig", ...],
    capture: bool,
) -> dict[str, Any]:
    """One invocation's ledger line, JSON-safe and finite."""
    cell_seconds: dict[str, float] = {}
    for cell in result.cells:
        if cell.cached:
            continue
        timing = cell.payload.get("timing")
        seconds = (
            timing.get("wall_time_seconds")
            if isinstance(timing, dict)
            else None
        )
        if isinstance(seconds, (int, float)):
            cell_seconds[cell.label] = float(seconds)
    wall = result.wall_time_seconds
    return {
        "version": LEDGER_VERSION,
        "at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "spec_hash": content_hash([config.to_dict() for config in configs]),
        "package": repro.__version__,
        "cells_total": len(result.cells),
        "hits": result.hits,
        "executed": result.executed,
        "failed": result.failed,
        "corrupt_entries": result.corrupt_entries,
        "jobs": result.jobs,
        "capture": capture,
        "wall_time_seconds": wall,
        "cells_per_second": (
            len(result.cells) / wall if wall > 0.0 else None
        ),
        "cell_seconds": {
            label: cell_seconds[label] for label in sorted(cell_seconds)
        },
    }


class RunLedger:
    """Append-only JSONL history of sweep invocations in a cache root."""

    def __init__(self, root: str | Path) -> None:
        self.path = Path(root) / LEDGER_FILENAME
        #: Unparseable lines skipped by the last :meth:`records` call.
        self.corrupt_lines = 0

    def append(self, record: dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as stream:
            stream.write(canonical_json(record) + "\n")

    def records(self) -> list[dict[str, Any]]:
        """Every parseable record, oldest first; corrupt lines skipped
        (and counted in :attr:`corrupt_lines`), never fatal."""
        self.corrupt_lines = 0
        try:
            text = self.path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return []
        records: list[dict[str, Any]] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.corrupt_lines += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                self.corrupt_lines += 1
        return records

    def __len__(self) -> int:
        return len(self.records())


def _fmt(value: Any, spec: str = "") -> str:
    if value is None:
        return "-"
    return format(value, spec)


def render_ledger(
    records: list[dict[str, Any]], limit: int | None = None
) -> str:
    """Human-readable ledger tail, one invocation per line.

    Field=value pairs on purpose: the CI two-pass check greps for
    ``hits=4 executed=0`` and a column layout would turn that contract
    into whitespace trivia.
    """
    if not records:
        return "ledger: (no runs recorded)"
    shown = records if limit is None else records[-limit:]
    lines = []
    for record in shown:
        spec_hash = record.get("spec_hash") or ""
        rate = record.get("cells_per_second")
        lines.append(
            f"{_fmt(record.get('at'))}  spec={spec_hash[:12] or '-'}  "
            f"cells={_fmt(record.get('cells_total'))} "
            f"hits={_fmt(record.get('hits'))} "
            f"executed={_fmt(record.get('executed'))} "
            f"failed={_fmt(record.get('failed'))}  "
            f"jobs={_fmt(record.get('jobs'))} "
            f"capture={'on' if record.get('capture') else 'off'}  "
            f"{_fmt(record.get('wall_time_seconds'), '.2f')}s "
            f"({_fmt(rate, '.2f')} cells/s)  "
            f"v{_fmt(record.get('package'))}"
        )
    if limit is not None and len(records) > limit:
        lines.append(
            f"({len(records) - limit} older run(s) not shown)"
        )
    return "\n".join(lines)
