"""Declarative sweep grids: named axes expanding to deterministic cells.

A :class:`SweepSpec` names each experiment axis with a value list —
workloads (registry specs), solve methods, LRGP engines, gamma policies,
fault plans, iteration budgets, seeds — and :meth:`SweepSpec.expand`
takes their cartesian product in declared axis order, yielding the same
:class:`RunConfig` list on every machine and every ``PYTHONHASHSEED``.

Axis values that cannot apply to a cell are *normalized* rather than
rejected: an ``engine`` only means something for the LRGP-iteration
methods (``repro.solve.ENGINE_METHODS``) and a gamma policy only for the
LRGP config family, so for other methods those axes collapse to their
defaults and the resulting duplicate cells are dropped (first
occurrence wins).  This is what lets one grid put ``annealing`` next to
``lrgp x {reference, vectorized}`` without 2x the annealing runs.
"""

from __future__ import annotations

import itertools
import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any

from repro.canonical import content_hash
from repro.core.engines import available_engines
from repro.solve import ENGINE_METHODS, available_methods
from repro.workloads.registry import canonical_workload_spec

__all__ = ["RunConfig", "SweepSpec", "load_spec", "parse_gamma_policy"]

#: Methods whose gamma-policy axis is meaningful (they build LRGPConfig).
GAMMA_METHODS = frozenset({"lrgp", "two_stage", "multirate"})

#: Fault-plan parameters accepted by a cell (a subset of
#: ``FaultPlan.random``'s keywords plus the run horizon).
_FAULT_PLAN_KEYS = frozenset(
    {
        "horizon",
        "crash_rate",
        "mean_downtime",
        "cold_probability",
        "partition_rate",
        "mean_partition",
        "storm_rate",
        "mean_storm",
        "storm_factor",
        "warmup",
        "checkpoint_interval",
    }
)


def parse_gamma_policy(policy: str) -> tuple[str, float | None]:
    """Validate ``"adaptive"`` | ``"fixed:<step>"``; return (kind, value)."""
    if policy == "adaptive":
        return "adaptive", None
    kind, sep, value = policy.partition(":")
    if kind == "fixed" and sep:
        try:
            step = float(value)
        except ValueError:
            raise ValueError(
                f"gamma policy {policy!r}: step {value!r} is not a number"
            ) from None
        if not step >= 0.0:  # also rejects NaN
            raise ValueError(f"gamma policy {policy!r}: step must be >= 0")
        return "fixed", step
    raise ValueError(
        f"unknown gamma policy {policy!r}; expected 'adaptive' or 'fixed:<step>'"
    )


def _normalize_fault_plan(
    plan: Mapping[str, float] | None,
) -> tuple[tuple[str, float], ...] | None:
    """Sorted, validated (key, value) pairs — hashable and canonical."""
    if plan is None:
        return None
    unknown = set(plan) - _FAULT_PLAN_KEYS
    if unknown:
        raise ValueError(
            f"unknown fault-plan parameter(s) {sorted(unknown)}; "
            f"accepted: {sorted(_FAULT_PLAN_KEYS)}"
        )
    items = tuple((key, float(plan[key])) for key in sorted(plan))
    return items


@dataclass(frozen=True)
class RunConfig:
    """One fully-specified experiment cell.

    Pure data: strings, numbers and tuples only, so a config pickles
    into worker processes and serializes canonically for the cache key.
    ``workload`` is a registry spec (``NAME[:k=v,...]``), stored in
    canonical form (aliases resolved, parameters key-sorted) so two
    spellings of the same cell share one cache entry.
    """

    workload: str = "base"
    method: str = "lrgp"
    engine: str | None = None
    gamma: str = "adaptive"
    fault_plan: tuple[tuple[str, float], ...] | None = None
    iterations: int = 250
    seed: int = 0
    repeat: int = 0

    def __post_init__(self) -> None:
        if self.method not in available_methods():
            raise ValueError(
                f"unknown method {self.method!r}; available: "
                f"{', '.join(available_methods())}"
            )
        if self.engine is not None:
            if self.method not in ENGINE_METHODS:
                raise ValueError(
                    f"method {self.method!r} does not take an engine "
                    f"(engines apply to: {', '.join(sorted(ENGINE_METHODS))})"
                )
            if self.engine not in available_engines():
                raise ValueError(
                    f"unknown engine {self.engine!r}; available: "
                    f"{', '.join(available_engines())}"
                )
        kind, _ = parse_gamma_policy(self.gamma)
        if kind == "fixed" and self.method not in GAMMA_METHODS:
            raise ValueError(
                f"method {self.method!r} does not take a gamma policy "
                f"(policies apply to: {', '.join(sorted(GAMMA_METHODS))})"
            )
        if self.iterations < 0:
            raise ValueError(
                f"iterations must be non-negative, got {self.iterations}"
            )
        if self.repeat < 0:
            raise ValueError(f"repeat must be non-negative, got {self.repeat}")
        object.__setattr__(
            self, "workload", canonical_workload_spec(self.workload)
        )
        object.__setattr__(
            self, "fault_plan", _normalize_fault_plan(
                dict(self.fault_plan) if self.fault_plan is not None else None
            )
        )

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-ready form; the basis of the cache key."""
        return {
            "workload": self.workload,
            "method": self.method,
            "engine": self.engine,
            "gamma": self.gamma,
            "fault_plan": (
                None
                if self.fault_plan is None
                else {key: value for key, value in self.fault_plan}
            ),
            "iterations": self.iterations,
            "seed": self.seed,
            "repeat": self.repeat,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "RunConfig":
        plan = payload.get("fault_plan")
        return RunConfig(
            workload=payload.get("workload", "base"),
            method=payload.get("method", "lrgp"),
            engine=payload.get("engine"),
            gamma=payload.get("gamma", "adaptive"),
            fault_plan=(
                None if plan is None else tuple(sorted(dict(plan).items()))
            ),
            iterations=int(payload.get("iterations", 250)),
            seed=int(payload.get("seed", 0)),
            repeat=int(payload.get("repeat", 0)),
        )

    def config_hash(self, salt: Mapping[str, Any] | None = None) -> str:
        """Content address of this cell (optionally salted)."""
        if salt is None:
            return content_hash(self.to_dict())
        return content_hash({"config": self.to_dict(), "salt": dict(salt)})

    def label(self) -> str:
        """Compact human label for tables and logs."""
        parts = [self.workload, self.method]
        if self.engine is not None:
            parts.append(self.engine)
        kind, _ = parse_gamma_policy(self.gamma)
        if kind == "fixed":
            parts.append(self.gamma)
        if self.fault_plan is not None:
            parts.append("faults")
        parts.append(f"i{self.iterations}")
        if self.seed:
            parts.append(f"s{self.seed}")
        if self.repeat:
            parts.append(f"r{self.repeat}")
        return "/".join(parts)


def _as_tuple(value: Sequence[Any] | None, fallback: tuple[Any, ...]) -> tuple[Any, ...]:
    if value is None:
        return fallback
    result = tuple(value)
    if not result:
        raise ValueError("sweep axes must have at least one value")
    return result


@dataclass(frozen=True)
class SweepSpec:
    """The declarative grid: named axes with value lists.

    ``repeats`` replicates every cell with ``repeat`` indices
    ``0..repeats-1`` (distinct cache entries — the knob for variance
    studies over deterministic methods whose seed axis is meaningless).
    """

    workloads: tuple[str, ...] = ("base",)
    methods: tuple[str, ...] = ("lrgp",)
    engines: tuple[str | None, ...] = (None,)
    gammas: tuple[str, ...] = ("adaptive",)
    fault_plans: tuple[Mapping[str, float] | None, ...] = (None,)
    iterations: tuple[int, ...] = (250,)
    seeds: tuple[int, ...] = (0,)
    repeats: int = 1

    def __post_init__(self) -> None:
        for axis in (
            "workloads", "methods", "engines", "gammas",
            "fault_plans", "iterations", "seeds",
        ):
            values = getattr(self, axis)
            if not isinstance(values, tuple):
                object.__setattr__(self, axis, tuple(values))
            if not getattr(self, axis):
                raise ValueError(f"sweep axis {axis!r} must not be empty")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")

    def expand(self) -> tuple[RunConfig, ...]:
        """The deterministic cell list: product in declared axis order.

        Inapplicable axis values collapse (engine -> ``None`` for
        non-LRGP-iteration methods, gamma -> ``"adaptive"`` for methods
        without an LRGP config) and the duplicates that collapse creates
        are dropped, first occurrence winning.
        """
        cells: list[RunConfig] = []
        seen: set[tuple[Any, ...]] = set()
        for workload, method, engine, gamma, plan, iters, seed in (
            itertools.product(
                self.workloads, self.methods, self.engines, self.gammas,
                self.fault_plans, self.iterations, self.seeds,
            )
        ):
            if method not in ENGINE_METHODS:
                engine = None
            if method not in GAMMA_METHODS:
                gamma = "adaptive"
            for repeat in range(self.repeats):
                config = RunConfig(
                    workload=workload,
                    method=method,
                    engine=engine,
                    gamma=gamma,
                    fault_plan=(
                        None if plan is None
                        else tuple(sorted((k, float(v)) for k, v in dict(plan).items()))
                    ),
                    iterations=iters,
                    seed=seed,
                    repeat=repeat,
                )
                identity = (
                    config.workload, config.method, config.engine,
                    config.gamma, config.fault_plan, config.iterations,
                    config.seed, config.repeat,
                )
                if identity in seen:
                    continue
                seen.add(identity)
                cells.append(config)
        return tuple(cells)

    def to_dict(self) -> dict[str, Any]:
        return {
            "workloads": list(self.workloads),
            "methods": list(self.methods),
            "engines": list(self.engines),
            "gammas": list(self.gammas),
            "fault_plans": [
                None if plan is None else dict(plan)
                for plan in self.fault_plans
            ],
            "iterations": list(self.iterations),
            "seeds": list(self.seeds),
            "repeats": self.repeats,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "SweepSpec":
        known = {f.name for f in fields(SweepSpec)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown sweep-spec field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs: dict[str, Any] = {}
        for name in known - {"repeats", "fault_plans"}:
            if name in payload:
                kwargs[name] = tuple(payload[name])
        if "fault_plans" in payload:
            kwargs["fault_plans"] = tuple(
                None if plan is None else dict(plan)
                for plan in payload["fault_plans"]
            )
        if "repeats" in payload:
            kwargs["repeats"] = int(payload["repeats"])
        return SweepSpec(**kwargs)


def load_spec(path: str | Path) -> SweepSpec:
    """Read a :class:`SweepSpec` from a JSON file (``repro sweep --spec``)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ValueError(f"cannot read sweep spec {path}: {error}") from error
    except ValueError as error:
        raise ValueError(f"unparseable sweep spec {path}: {error}") from error
    if not isinstance(payload, Mapping):
        raise ValueError(f"sweep spec {path} must be a JSON object")
    return SweepSpec.from_dict(payload)
