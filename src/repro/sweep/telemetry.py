"""Cross-process telemetry for the sweep farm.

A :class:`~concurrent.futures.ProcessPoolExecutor` worker dies with its
process; anything it measured dies too unless it ships the numbers home
as plain data.  This module is both ends of that pipe:

* **Worker side** — :func:`capture_bundle` builds the fresh
  :class:`~repro.obs.telemetry.Telemetry` a cell runs under, and
  :func:`telemetry_payload` compacts what it collected (metrics
  snapshot, phase tree, convergence-diagnostics summary) into a
  JSON-safe dict that rides back with the cell's result payload.  The
  payload lives *alongside* the volatile ``timing`` section: the
  bit-stable ``result`` / ``metrics`` sections are untouched, so cache
  keys, payload equality and the two-pass zero-executed guarantee are
  exactly what they were without capture.
* **Parent side** — :func:`aggregate_sweep_telemetry` merges every
  cell's shipped snapshot/tree into one farm-wide
  :class:`FarmTelemetry` via :meth:`MetricsSnapshot.merge` and
  :func:`~repro.obs.profile.merge_reports`, ready for the existing
  exporters (Prometheus text, collapsed-stack flamegraph, speedscope).

Everything here is finite-by-construction: the diagnostics summary
drops non-finite values (a zero-mean trailing window reports an
infinite amplitude) because cached payloads go through canonical JSON,
which rejects NaN/inf.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs import (
    ConvergenceDiagnostics,
    MemorySink,
    MetricsSnapshot,
    PhaseProfiler,
    ProfileReport,
    Telemetry,
    merge_reports,
    report_from_dict,
    snapshot_from_dict,
    snapshot_to_dict,
)

if TYPE_CHECKING:
    from repro.sweep.farm import SweepCell, SweepResult

__all__ = [
    "TELEMETRY_VERSION",
    "FarmTelemetry",
    "aggregate_sweep_telemetry",
    "capture_bundle",
    "cell_phase_report",
    "telemetry_payload",
]

#: Bump when the shape of the shipped telemetry payload changes.
TELEMETRY_VERSION = 1


def capture_bundle() -> Telemetry:
    """A fresh per-cell telemetry bundle: own registry, in-memory event
    sink, and an enabled phase profiler."""
    return Telemetry(profiler=PhaseProfiler())


def _finite_or_none(value: Any) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value) if math.isfinite(value) else None


def _diagnostics_summary(telemetry: Telemetry) -> dict[str, Any]:
    """The compact, always-finite diagnostics digest shipped per cell."""
    sink = telemetry.sink
    events = sink.events if isinstance(sink, MemorySink) else []
    report = ConvergenceDiagnostics().analyze(events)
    return {
        "iterations": report.iterations,
        "converged": report.converged,
        "iterations_to_tolerance": report.iterations_to_tolerance,
        "final_utility": _finite_or_none(report.final_utility),
        "trailing_amplitude": _finite_or_none(report.trailing_amplitude),
        "total_oscillations": report.total_oscillations,
        "resources": len(report.resources),
    }


def telemetry_payload(telemetry: Telemetry) -> dict[str, Any]:
    """Compact a cell's telemetry bundle into its JSON-safe payload."""
    return {
        "version": TELEMETRY_VERSION,
        "metrics": snapshot_to_dict(telemetry.registry.snapshot()),
        "phases": telemetry.profiler.report().to_dict(),
        "diagnostics": _diagnostics_summary(telemetry),
    }


def cell_phase_report(cell: "SweepCell") -> ProfileReport | None:
    """The cell's shipped phase tree, or ``None`` if it ran uncaptured."""
    shipped = cell.payload.get("telemetry")
    if not isinstance(shipped, dict) or "phases" not in shipped:
        return None
    return report_from_dict(shipped["phases"])


@dataclass(frozen=True)
class FarmTelemetry:
    """Every captured cell's telemetry merged into one farm-wide view."""

    metrics: MetricsSnapshot
    phases: ProfileReport
    #: Cells that shipped a telemetry payload (captured runs and cache
    #: hits whose entries were written by captured runs).
    cells_with_telemetry: int
    cells_total: int

    @property
    def empty(self) -> bool:
        return self.cells_with_telemetry == 0


def aggregate_sweep_telemetry(result: "SweepResult") -> FarmTelemetry:
    """Merge the telemetry shipped by a sweep's cells.

    Cells without a telemetry section (uncaptured runs, failed cells,
    pre-capture cache entries) are skipped, not an error — the counts on
    the returned :class:`FarmTelemetry` make partial coverage visible.
    """
    merged_metrics = MetricsSnapshot(counters={}, gauges={}, histograms={})
    reports: list[ProfileReport] = []
    captured = 0
    for cell in result.cells:
        shipped = cell.payload.get("telemetry")
        if not isinstance(shipped, dict):
            continue
        captured += 1
        if "metrics" in shipped:
            merged_metrics = merged_metrics.merge(
                snapshot_from_dict(shipped["metrics"])
            )
        if "phases" in shipped:
            reports.append(report_from_dict(shipped["phases"]))
    return FarmTelemetry(
        metrics=merged_metrics,
        phases=merge_reports(*reports),
        cells_with_telemetry=captured,
        cells_total=len(result.cells),
    )
