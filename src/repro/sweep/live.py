"""Live sweep monitoring: progress events, ETA, straggler detection.

:func:`~repro.sweep.farm.run_sweep` used to block inside
``executor.map`` until the whole grid finished; with completion-order
collection it can narrate.  The farm drives a :class:`SweepProgress`,
which turns each completion into one flat JSON-safe *event dict*:

* ``sweep_started`` — cell totals, worker count, upfront cache hits;
* ``cell_finished`` — one per cell (hits included) with running
  ``done``/``total``, hit rate, failure count, an ETA extrapolated from
  the mean executed-cell duration over the remaining pending cells, and
  a ``straggler`` flag for any executed cell slower than the rolling
  p95 of the executed durations seen before it (only once five or more
  samples exist — below that a p95 is noise);
* ``sweep_finished`` — final totals plus throughput
  (``cells_per_second``).

Events go wherever the caller points them: ``repro sweep run --live``
renders them as progress lines on stderr, ``--events FILE`` appends
them as a JSONL stream (:class:`JsonlEventWriter`), and tests consume
them as plain dicts.  Everything here is pure stdlib and wall-clock
free — the farm supplies measured durations, this module only counts.
"""

from __future__ import annotations

import json
from typing import IO, Any, Callable, Protocol

__all__ = [
    "STRAGGLER_MIN_SAMPLES",
    "JsonlEventWriter",
    "SweepProgress",
    "render_live_event",
]

#: Executed-cell durations needed before the p95 straggler flag arms.
STRAGGLER_MIN_SAMPLES = 5


class SweepMonitor(Protocol):
    """Anything that accepts sweep progress event dicts."""

    def __call__(self, event: dict[str, Any]) -> None: ...


def _p95(samples: list[float]) -> float:
    """Nearest-rank 95th percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = max(0, -(-95 * len(ordered) // 100) - 1)  # ceil(0.95n) - 1
    return ordered[rank]


class SweepProgress:
    """Counts completions and emits the event stream described above.

    The farm owns the facts (which cell, cached or not, how long); this
    class owns the derived quantities (done/total, hit rate, ETA,
    straggler flags) so every consumer — live renderer, JSONL stream,
    tests — sees identical numbers.
    """

    def __init__(
        self,
        total: int,
        jobs: int,
        emit: Callable[[dict[str, Any]], None],
    ) -> None:
        self.total = total
        self.jobs = jobs
        self._emit = emit
        self.done = 0
        self.hits = 0
        self.failed = 0
        self._durations: list[float] = []

    def sweep_started(self, pending: int) -> None:
        self._emit(
            {
                "event": "sweep_started",
                "cells_total": self.total,
                "jobs": self.jobs,
                "pending": pending,
                "hits": self.total - pending,
            }
        )

    def _eta_seconds(self) -> float | None:
        """Remaining wall time, extrapolated from executed-cell means.

        ``None`` until an executed duration exists; cache hits are free
        and excluded.  Remaining cells are assumed pending (hits resolve
        upfront, before any ``cell_finished`` for executed cells).
        """
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        if not self._durations:
            return None
        mean = sum(self._durations) / len(self._durations)
        return remaining * mean / min(self.jobs, remaining)

    def cell_finished(
        self,
        index: int,
        label: str,
        key: str,
        cached: bool,
        failed: bool,
        seconds: float,
    ) -> None:
        straggler = False
        if not cached:
            if (
                len(self._durations) >= STRAGGLER_MIN_SAMPLES
                and seconds > _p95(self._durations)
            ):
                straggler = True
            self._durations.append(seconds)
        self.done += 1
        if cached:
            self.hits += 1
        if failed:
            self.failed += 1
        self._emit(
            {
                "event": "cell_finished",
                "index": index,
                "label": label,
                "key": key,
                "cached": cached,
                "status": "hit" if cached else ("failed" if failed else "ok"),
                "seconds": seconds,
                "done": self.done,
                "total": self.total,
                "hits": self.hits,
                "failed": self.failed,
                "hit_rate": self.hits / self.done,
                "eta_seconds": self._eta_seconds(),
                "straggler": straggler,
            }
        )

    def sweep_finished(self, wall_time_seconds: float) -> None:
        self._emit(
            {
                "event": "sweep_finished",
                "cells_total": self.total,
                "done": self.done,
                "hits": self.hits,
                "executed": self.done - self.hits,
                "failed": self.failed,
                "jobs": self.jobs,
                "wall_time_seconds": wall_time_seconds,
                "cells_per_second": (
                    self.done / wall_time_seconds
                    if wall_time_seconds > 0.0
                    else None
                ),
            }
        )


def render_live_event(event: dict[str, Any]) -> str | None:
    """One ``--live`` progress line per event (``None`` = print nothing)."""
    kind = event.get("event")
    if kind == "sweep_started":
        return (
            f"sweep: {event['cells_total']} cell(s), "
            f"{event['hits']} cached, {event['pending']} to execute "
            f"(jobs={event['jobs']})"
        )
    if kind == "cell_finished":
        eta = event.get("eta_seconds")
        eta_text = "" if eta is None else f" eta {eta:.1f}s"
        flags = " STRAGGLER" if event.get("straggler") else ""
        return (
            f"[{event['done']}/{event['total']}] "
            f"{event['status']:<6} {event['label']} "
            f"({event['seconds']:.2f}s, hit rate "
            f"{event['hit_rate']:.0%}{eta_text}){flags}"
        )
    if kind == "sweep_finished":
        rate = event.get("cells_per_second")
        rate_text = "" if rate is None else f", {rate:.2f} cells/s"
        return (
            f"sweep finished: {event['done']} cell(s) in "
            f"{event['wall_time_seconds']:.2f}s — {event['hits']} cached, "
            f"{event['executed']} executed, {event['failed']} failed"
            f"{rate_text}"
        )
    return None


class JsonlEventWriter:
    """Append each event as one JSON line to an open text stream."""

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream

    def __call__(self, event: dict[str, Any]) -> None:
        self._stream.write(json.dumps(event, sort_keys=True) + "\n")
        self._stream.flush()
