"""Content-addressed result cache for sweep cells.

Every cell's key is the SHA-256 of its canonical-JSON :class:`RunConfig`
salted with the cache schema version and the package version — change
the solver (version bump) or the entry layout (schema bump) and every
old entry silently misses instead of serving stale results.  Entries
are one JSON file each under ``<root>/<key[:2]>/<key>.json`` (git-style
fan-out keeps directory listings sane at thousands of entries), written
atomically (temp file + ``os.replace``) so a crashed worker never leaves
a half-written entry that a later run would trust.

Corrupt entries are a *miss*, not a crash: any unreadable, unparseable
or wrong-shape file is ignored (and counted in ``corrupt_hits``), the
cell re-executes, and the fresh result overwrites the bad entry.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from collections.abc import Iterator
from pathlib import Path
from typing import TYPE_CHECKING, Any

import repro
from repro.canonical import canonical_json

if TYPE_CHECKING:
    from repro.sweep.spec import RunConfig

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "cache_salt",
    "default_cache_dir",
]

#: Bump to invalidate every existing entry (layout or semantics change).
CACHE_SCHEMA_VERSION = 1


def cache_salt() -> dict[str, Any]:
    """The key salt: cache schema + package version.

    A new package version may change solver behavior, so results cached
    under the old version must not be served for the new one.
    """
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "package": repro.__version__,
    }


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro/sweep``,
    else ``~/.cache/repro/sweep``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "sweep"


class ResultCache:
    """Filesystem-backed, content-addressed store of cell results."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        #: Unreadable/corrupt entries encountered by :meth:`get` this
        #: session; the farm reports them so silent decay is visible.
        self.corrupt_hits = 0

    def key_for(self, config: "RunConfig") -> str:
        """The cell's content address (config + schema/version salt)."""
        return config.config_hash(cache_salt())

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored entry, or ``None`` on miss *or* corruption.

        A corrupt entry (bad JSON, wrong shape, mismatched key or salt)
        must behave exactly like a miss — the caller re-executes and
        overwrites — because a cache that crashes on its own debris is
        worse than no cache.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            self.corrupt_hits += 1
            return None
        try:
            entry = json.loads(text)
        except ValueError:
            self.corrupt_hits += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("key") != key
            or entry.get("salt") != cache_salt()
            or not isinstance(entry.get("payload"), dict)
        ):
            self.corrupt_hits += 1
            return None
        return entry

    def put(
        self, key: str, config: "RunConfig", payload: dict[str, Any]
    ) -> Path:
        """Atomically persist a cell result; returns the entry path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "salt": cache_salt(),
            "config": config.to_dict(),
            "payload": payload,
        }
        text = canonical_json(entry)
        handle, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(text)
            os.replace(temp_name, path)
        finally:
            # os.replace consumed the temp file on success; anything left
            # behind is debris from a failed write.
            with contextlib.suppress(FileNotFoundError):
                os.unlink(temp_name)
        return path

    def entry_paths(self) -> Iterator[Path]:
        """Every ``*.json`` entry under the fan-out dirs, sorted."""
        if not self.root.is_dir():
            return iter(())
        return iter(sorted(self.root.glob("??/*.json")))

    def __len__(self) -> int:
        return sum(1 for _ in self.entry_paths())

    def clean(self) -> int:
        """Delete every entry (empty fan-out dirs included); return count."""
        removed = 0
        for path in self.entry_paths():
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                continue
        if self.root.is_dir():
            for shard in sorted(self.root.glob("??")):
                if shard.is_dir() and not any(shard.iterdir()):
                    shard.rmdir()
        return removed
