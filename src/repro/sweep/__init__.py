"""``repro.sweep`` — the parallel experiment farm with result caching.

ROADMAP item 2: every scaling claim needs hundreds of configuration
runs, so experiments are declared as a *grid* (:class:`SweepSpec`:
workload x method x engine x gamma-policy x fault-plan x iterations x
seed), expanded to a deterministic list of :class:`RunConfig` cells,
fanned out over a process pool (:func:`run_sweep`) and cached by content
hash (:class:`ResultCache`) so re-runs are incremental: unchanged cells
are cache hits, only new or changed cells execute.

>>> from repro.sweep import SweepSpec, run_sweep
>>> spec = SweepSpec(workloads=("micro", "base"), engines=(None, "vectorized"))
>>> result = run_sweep(spec, jobs=4)
>>> result.executed, result.hits
(4, 0)
>>> run_sweep(spec, jobs=4).hits        # immediate re-run: all cached
4

The CLI face is ``repro sweep run|show|clean`` (docs/sweep.md); results
aggregate into a :class:`SweepResult` table that renders as a report,
CSV/JSON, and a ``BENCH_sweep.json`` payload feeding
``repro bench snapshot|compare``.
"""

from repro.sweep.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    cache_salt,
    default_cache_dir,
)
from repro.sweep.farm import SweepCell, SweepResult, execute_run, plan_sweep, run_sweep
from repro.sweep.report import (
    bench_payload,
    render_sweep_comparison,
    render_sweep_plan,
    render_sweep_report,
    sweep_to_csv,
    sweep_to_json,
)
from repro.sweep.spec import RunConfig, SweepSpec, load_spec

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "RunConfig",
    "SweepCell",
    "SweepResult",
    "SweepSpec",
    "bench_payload",
    "cache_salt",
    "default_cache_dir",
    "execute_run",
    "load_spec",
    "plan_sweep",
    "render_sweep_comparison",
    "render_sweep_plan",
    "render_sweep_report",
    "run_sweep",
    "sweep_to_csv",
    "sweep_to_json",
]
