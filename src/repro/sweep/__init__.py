"""``repro.sweep`` — the parallel experiment farm with result caching.

ROADMAP item 2: every scaling claim needs hundreds of configuration
runs, so experiments are declared as a *grid* (:class:`SweepSpec`:
workload x method x engine x gamma-policy x fault-plan x iterations x
seed), expanded to a deterministic list of :class:`RunConfig` cells,
fanned out over a process pool (:func:`run_sweep`) and cached by content
hash (:class:`ResultCache`) so re-runs are incremental: unchanged cells
are cache hits, only new or changed cells execute.

>>> from repro.sweep import SweepSpec, run_sweep
>>> spec = SweepSpec(workloads=("micro", "base"), engines=(None, "vectorized"))
>>> result = run_sweep(spec, jobs=4)
>>> result.executed, result.hits
(4, 0)
>>> run_sweep(spec, jobs=4).hits        # immediate re-run: all cached
4

The CLI face is ``repro sweep run|show|clean`` (docs/sweep.md); results
aggregate into a :class:`SweepResult` table that renders as a report,
CSV/JSON, and a ``BENCH_sweep.json`` payload feeding
``repro bench snapshot|compare``.
"""

from repro.sweep.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    cache_salt,
    default_cache_dir,
)
from repro.sweep.farm import SweepCell, SweepResult, execute_run, plan_sweep, run_sweep
from repro.sweep.ledger import (
    LEDGER_FILENAME,
    LEDGER_VERSION,
    RunLedger,
    ledger_record,
    render_ledger,
)
from repro.sweep.live import (
    STRAGGLER_MIN_SAMPLES,
    JsonlEventWriter,
    SweepProgress,
    render_live_event,
)
from repro.sweep.report import (
    bench_payload,
    render_sweep_comparison,
    render_sweep_plan,
    render_sweep_report,
    sweep_to_csv,
    sweep_to_json,
)
from repro.sweep.spec import RunConfig, SweepSpec, load_spec
from repro.sweep.telemetry import (
    TELEMETRY_VERSION,
    FarmTelemetry,
    aggregate_sweep_telemetry,
    capture_bundle,
    cell_phase_report,
    telemetry_payload,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "LEDGER_FILENAME",
    "LEDGER_VERSION",
    "STRAGGLER_MIN_SAMPLES",
    "TELEMETRY_VERSION",
    "FarmTelemetry",
    "JsonlEventWriter",
    "ResultCache",
    "RunConfig",
    "RunLedger",
    "SweepCell",
    "SweepProgress",
    "SweepResult",
    "SweepSpec",
    "aggregate_sweep_telemetry",
    "bench_payload",
    "cache_salt",
    "capture_bundle",
    "cell_phase_report",
    "default_cache_dir",
    "execute_run",
    "ledger_record",
    "load_spec",
    "plan_sweep",
    "render_ledger",
    "render_live_event",
    "render_sweep_comparison",
    "render_sweep_plan",
    "render_sweep_report",
    "run_sweep",
    "sweep_to_csv",
    "sweep_to_json",
    "telemetry_payload",
]
