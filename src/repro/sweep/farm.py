"""The experiment farm: execute sweep cells, in-process or fanned out.

:func:`execute_run` is the one cell runner — a module-level function on
pure-data :class:`RunConfig` input so it pickles into
:class:`~concurrent.futures.ProcessPoolExecutor` workers unchanged.
Plain cells go through the :func:`repro.solve.solve` front door; cells
with a ``fault_plan`` instead drive the asynchronous runtime under a
seeded :class:`~repro.runtime.faults.FaultPlan` (the ``repro chaos``
protocol) and report fault-recovery metrics.

The produced payload separates *computed* content (``"result"``,
``"metrics"`` — bit-equal across re-executions for deterministic
methods) from *measured* content (``"timing"``), so a cached cell and a
fresh cell compare equal where equality is meaningful.  With
``capture=True`` a cell additionally runs under a fresh
:class:`~repro.obs.telemetry.Telemetry` bundle and ships the compact
telemetry payload (:mod:`repro.sweep.telemetry`) home under a third,
equally volatile ``"telemetry"`` section — ``"result"``/``"metrics"``
stay bit-identical with capture on or off.

:func:`run_sweep` is cache-first: expand the grid, look every cell up in
the :class:`~repro.sweep.cache.ResultCache`, execute only the misses
(``jobs<=1`` runs inline — no pool overhead, picklability not required),
and store fresh results before returning the grid-ordered
:class:`SweepResult`.  Parallel misses are collected with
:func:`~concurrent.futures.as_completed` and reassembled into grid
order, so progress is observable as it happens (``monitor=``, the
``repro sweep run --live`` stream) and one raising cell no longer
aborts the grid: it becomes a structured *failed cell* in the result
(uncached, so a re-run retries it) instead of an exception out of
``executor.map`` that discards every other cell's work.  Each
invocation is recorded in the cache's append-only run ledger
(:mod:`repro.sweep.ledger`) unless ``ledger=False``.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from typing import Any

from repro.core.gamma import FixedGamma
from repro.obs import Telemetry
from repro.solve import solve
from repro.sweep.cache import ResultCache
from repro.sweep.ledger import RunLedger, ledger_record
from repro.sweep.live import SweepProgress
from repro.sweep.spec import RunConfig, SweepSpec, parse_gamma_policy
from repro.sweep.telemetry import capture_bundle, telemetry_payload
from repro.workloads.registry import workload_from_spec

__all__ = [
    "SweepCell",
    "SweepResult",
    "execute_run",
    "plan_sweep",
    "run_sweep",
]

#: Methods whose ``seed=`` option reaches a stochastic optimizer; the
#: deterministic families ignore the seed axis (cells differing only in
#: seed still cache separately — the config is the identity).
_SEEDED_METHODS = frozenset({"annealing", "hill_climb", "random_search"})

#: Methods whose optimizer config carries a ``telemetry`` field the farm
#: can thread a capture bundle through.  ``multirate``'s config has no
#: telemetry slot and the search-based methods take no config at all —
#: those cells still profile the ``cell`` root phase, just without
#: optimizer-interior metrics.
_TELEMETRY_METHODS = frozenset({"lrgp", "two_stage"})


def _solve_options(
    config: RunConfig, telemetry: Telemetry | None = None
) -> dict[str, Any]:
    """Translate the cell's gamma policy / seed into ``solve`` options."""
    options: dict[str, Any] = {}
    kind, step = parse_gamma_policy(config.gamma)
    if kind == "fixed":
        assert step is not None
        if config.method == "multirate":
            from repro.core.multirate import MultirateConfig

            options["config"] = MultirateConfig(node_gamma=FixedGamma(step))
        else:
            from repro.core.lrgp import LRGPConfig

            options["config"] = LRGPConfig(node_gamma=FixedGamma(step))
    if telemetry is not None and config.method in _TELEMETRY_METHODS:
        from repro.core.lrgp import LRGPConfig

        lrgp_config = options.get("config")
        if lrgp_config is None:
            lrgp_config = LRGPConfig()
        options["config"] = replace(lrgp_config, telemetry=telemetry)
    if config.method in _SEEDED_METHODS:
        options["seed"] = config.seed
    return options


def _solve_payload(
    config: RunConfig, telemetry: Telemetry | None = None
) -> dict[str, Any]:
    problem = workload_from_spec(config.workload)
    result = solve(
        problem,
        method=config.method,
        engine=config.engine,
        iterations=config.iterations,
        **_solve_options(config, telemetry),
    )
    return {
        "kind": "solve",
        "result": result.canonical_dict(),
        "metrics": {
            "utility": result.utility,
            "iterations": result.iterations,
            "converged_at": result.converged_at,
            "engine": result.engine,
        },
        "timing": {"solve_seconds": result.wall_time_seconds},
    }


def _fault_payload(
    config: RunConfig, telemetry: Telemetry | None = None
) -> dict[str, Any]:
    """Run the cell under its fault plan (the ``repro chaos`` protocol).

    The faulted run and a fault-free baseline execute with the same seed;
    *retention* is faulted converged utility over baseline converged
    utility — the cell's headline fault-recovery metric.
    """
    from repro.events.reliability import RetryPolicy
    from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime
    from repro.runtime.faults import FaultPlan

    assert config.fault_plan is not None
    plan_params = dict(config.fault_plan)
    horizon = plan_params.pop("horizon", 400.0)
    problem = workload_from_spec(config.workload)
    plan = FaultPlan.random(
        problem, seed=config.seed, horizon=horizon, **plan_params
    )
    runtime = AsynchronousRuntime(
        problem,
        AsyncConfig(seed=config.seed),
        fault_plan=plan,
        retry=RetryPolicy(),
        # The faulted run is the cell's subject; the fault-free baseline
        # below runs untelemetered so capture measures one run, not two.
        **({} if telemetry is None else {"telemetry": telemetry}),
    )
    runtime.run_until(horizon)
    baseline = AsynchronousRuntime(problem, AsyncConfig(seed=config.seed))
    baseline.run_until(horizon)

    utility = runtime.converged_utility()
    reference = baseline.converged_utility()
    recovery_times = [record.recovery_time for record in runtime.recoveries]
    return {
        "kind": "fault",
        "result": {
            "horizon": horizon,
            "utility": utility,
            "baseline_utility": reference,
            "plan": {
                "crashes": len(plan.crashes),
                "partitions": len(plan.partitions),
                "storms": len(plan.storms),
                "checkpoint_interval": plan.checkpoint_interval,
            },
            "counters": {
                "messages_sent": runtime.messages_sent,
                "messages_lost": runtime.messages_lost,
                "messages_stale": runtime.messages_stale,
                "messages_to_down": runtime.messages_to_down,
                "messages_partitioned": runtime.messages_partitioned,
                "retransmissions": runtime.retransmissions,
                "retries_abandoned": runtime.retries_abandoned,
            },
        },
        "metrics": {
            "utility": utility,
            "retention": (utility / reference) if reference else None,
            "recoveries": len(recovery_times),
            "mean_recovery_time": (
                sum(recovery_times) / len(recovery_times)
                if recovery_times
                else None
            ),
        },
        "timing": {},
    }


def execute_run(config: RunConfig, capture: bool = False) -> dict[str, Any]:
    """Execute one cell; return its JSON-ready payload.

    Module-level and pure-data in/out: this is the function worker
    processes import and run.  Everything under ``"result"`` and
    ``"metrics"`` is deterministic for the config (given a deterministic
    method); ``"timing"`` is measured and varies run to run.

    ``capture=True`` runs the cell under a fresh telemetry bundle (every
    cell gets its own ``cell`` root phase, LRGP-family cells additionally
    thread the bundle into the optimizer) and attaches the compact
    telemetry payload under ``"telemetry"`` — a third volatile section
    next to ``"timing"``; ``"result"`` and ``"metrics"`` are bit-identical
    either way.
    """
    started = time.perf_counter()
    telemetry = capture_bundle() if capture else None
    if telemetry is None:
        payload = (
            _fault_payload(config)
            if config.fault_plan is not None
            else _solve_payload(config)
        )
    else:
        # One uniform root phase so farm-merged trees always stack under
        # ``cell`` regardless of method or fault plan.
        with telemetry.profiler.phase("cell"):
            payload = (
                _fault_payload(config, telemetry)
                if config.fault_plan is not None
                else _solve_payload(config, telemetry)
            )
        payload["telemetry"] = telemetry_payload(telemetry)
    payload["label"] = config.label()
    payload["timing"]["wall_time_seconds"] = time.perf_counter() - started
    return payload


def _failure_payload(
    config: RunConfig, error: BaseException, seconds: float
) -> dict[str, Any]:
    """The structured failed-cell payload (never cached)."""
    return {
        "kind": "error",
        "error": {"type": type(error).__name__, "message": str(error)},
        "result": None,
        "metrics": {},
        "timing": {"wall_time_seconds": seconds},
        "label": config.label(),
    }


def _run_cell(task: tuple[RunConfig, bool]) -> dict[str, Any]:
    """Pool-facing wrapper: a raising cell becomes a failed payload.

    An exception out of a worker would otherwise surface from the
    future and abort the sweep, discarding every completed cell's work;
    catching here keeps the grid going and the failure attributable.
    """
    config, capture = task
    started = time.perf_counter()
    try:
        return execute_run(config, capture=capture)
    except Exception as error:  # noqa: BLE001 — any cell failure is data
        return _failure_payload(
            config, error, time.perf_counter() - started
        )


@dataclass(frozen=True)
class SweepCell:
    """One grid cell's outcome: its config, cache key, and payload."""

    config: RunConfig
    key: str
    cached: bool
    payload: dict[str, Any]

    @property
    def label(self) -> str:
        return self.config.label()

    @property
    def metrics(self) -> dict[str, Any]:
        metrics = self.payload.get("metrics")
        return dict(metrics) if isinstance(metrics, dict) else {}

    @property
    def utility(self) -> float | None:
        value = self.metrics.get("utility")
        return float(value) if isinstance(value, (int, float)) else None

    @property
    def failed(self) -> bool:
        """True when the cell raised instead of producing a result."""
        return self.payload.get("kind") == "error"

    @property
    def error(self) -> dict[str, Any] | None:
        """The ``{"type", "message"}`` record of a failed cell."""
        error = self.payload.get("error")
        return dict(error) if isinstance(error, dict) else None

    @property
    def status(self) -> str:
        """``"failed"`` | ``"ok"`` — the report's status column."""
        return "failed" if self.failed else "ok"


@dataclass(frozen=True)
class SweepResult:
    """An executed sweep: cells in grid order plus farm bookkeeping."""

    cells: tuple[SweepCell, ...]
    jobs: int
    wall_time_seconds: float
    #: Corrupt cache entries encountered (each re-executed and repaired).
    corrupt_entries: int = 0
    #: Whether cells ran under per-cell telemetry capture.
    capture: bool = False

    @property
    def hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cached)

    @property
    def executed(self) -> int:
        return sum(1 for cell in self.cells if not cell.cached)

    @property
    def failed(self) -> int:
        return sum(1 for cell in self.cells if cell.failed)

    def __len__(self) -> int:
        return len(self.cells)


def _as_configs(
    spec: SweepSpec | Sequence[RunConfig],
) -> tuple[RunConfig, ...]:
    if isinstance(spec, SweepSpec):
        return spec.expand()
    return tuple(spec)


def plan_sweep(
    spec: SweepSpec | Sequence[RunConfig],
    cache: ResultCache | None = None,
    force: bool = False,
) -> tuple[tuple[RunConfig, str, str], ...]:
    """The ``--dry-run`` view: (config, key, status) per cell, in grid
    order, where status is ``"hit"``, ``"miss"`` or ``"forced"`` (cached
    but ``--force`` will re-execute it)."""
    cache = cache if cache is not None else ResultCache()
    plan: list[tuple[RunConfig, str, str]] = []
    for config in _as_configs(spec):
        key = cache.key_for(config)
        entry = cache.get(key)
        if entry is None:
            status = "miss"
        else:
            status = "forced" if force else "hit"
        plan.append((config, key, status))
    return tuple(plan)


def _cell_seconds(payload: dict[str, Any]) -> float:
    timing = payload.get("timing")
    seconds = (
        timing.get("wall_time_seconds") if isinstance(timing, dict) else None
    )
    return float(seconds) if isinstance(seconds, (int, float)) else 0.0


def run_sweep(
    spec: SweepSpec | Sequence[RunConfig],
    jobs: int = 1,
    cache: ResultCache | None = None,
    force: bool = False,
    capture: bool = False,
    monitor: Callable[[dict[str, Any]], None] | None = None,
    ledger: bool = True,
) -> SweepResult:
    """Run the grid, cache-first; return cells in grid order.

    ``jobs<=1`` executes misses inline in this process; ``jobs>1`` fans
    them out over a :class:`ProcessPoolExecutor`, collecting futures
    with :func:`as_completed` and reassembling by grid index — completion
    order drives the ``monitor`` event stream, grid order the result.
    ``force`` re-executes every cell, overwriting its cache entry.

    A cell that raises becomes a *failed cell* (``SweepCell.failed``)
    instead of aborting the sweep; failed cells are never cached, so the
    next run retries them.  ``capture=True`` runs every executed cell
    under per-cell telemetry (see :func:`execute_run`).  ``ledger=False``
    skips the append to the cache's run ledger.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    cache = cache if cache is not None else ResultCache()
    configs = _as_configs(spec)
    corrupt_before = cache.corrupt_hits
    started = time.perf_counter()

    cells: list[SweepCell | None] = [None] * len(configs)
    pending: list[tuple[int, RunConfig, str]] = []
    for index, config in enumerate(configs):
        key = cache.key_for(config)
        entry = None if force else cache.get(key)
        if entry is not None:
            cells[index] = SweepCell(
                config=config, key=key, cached=True, payload=entry["payload"]
            )
        else:
            pending.append((index, config, key))

    progress = (
        SweepProgress(total=len(configs), jobs=jobs, emit=monitor)
        if monitor is not None
        else None
    )
    if progress is not None:
        progress.sweep_started(pending=len(pending))
        for index, cell in enumerate(cells):
            if cell is not None:
                progress.cell_finished(
                    index=index,
                    label=cell.label,
                    key=cell.key,
                    cached=True,
                    failed=False,
                    seconds=0.0,
                )

    def finish(index: int, config: RunConfig, key: str, payload: dict[str, Any]) -> None:
        if payload.get("kind") != "error":
            cache.put(key, config, payload)
        cells[index] = SweepCell(
            config=config, key=key, cached=False, payload=payload
        )
        if progress is not None:
            progress.cell_finished(
                index=index,
                label=config.label(),
                key=key,
                cached=False,
                failed=payload.get("kind") == "error",
                seconds=_cell_seconds(payload),
            )

    if pending:
        if jobs == 1 or len(pending) == 1:
            for index, config, key in pending:
                finish(index, config, key, _run_cell((config, capture)))
        else:
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_run_cell, (config, capture)): (
                        index,
                        config,
                        key,
                    )
                    for index, config, key in pending
                }
                for future in as_completed(futures):
                    index, config, key = futures[future]
                    try:
                        payload = future.result()
                    except Exception as error:  # noqa: BLE001
                        # Pool-level failure (worker died, unpicklable
                        # return): same structured entry as an in-cell
                        # exception, just without a measured duration.
                        payload = _failure_payload(config, error, 0.0)
                    finish(index, config, key, payload)

    done = [cell for cell in cells if cell is not None]
    assert len(done) == len(configs)
    wall_time = time.perf_counter() - started
    result = SweepResult(
        cells=tuple(done),
        jobs=jobs,
        wall_time_seconds=wall_time,
        corrupt_entries=cache.corrupt_hits - corrupt_before,
        capture=capture,
    )
    if progress is not None:
        progress.sweep_finished(wall_time_seconds=wall_time)
    if ledger:
        RunLedger(cache.root).append(
            ledger_record(result, configs, capture=capture)
        )
    return result
