"""The experiment farm: execute sweep cells, in-process or fanned out.

:func:`execute_run` is the one cell runner — a module-level function on
pure-data :class:`RunConfig` input so it pickles into
:class:`~concurrent.futures.ProcessPoolExecutor` workers unchanged.
Plain cells go through the :func:`repro.solve.solve` front door; cells
with a ``fault_plan`` instead drive the asynchronous runtime under a
seeded :class:`~repro.runtime.faults.FaultPlan` (the ``repro chaos``
protocol) and report fault-recovery metrics.

The produced payload separates *computed* content (``"result"``,
``"metrics"`` — bit-equal across re-executions for deterministic
methods) from *measured* content (``"timing"``), so a cached cell and a
fresh cell compare equal where equality is meaningful.

:func:`run_sweep` is cache-first: expand the grid, look every cell up in
the :class:`~repro.sweep.cache.ResultCache`, execute only the misses
(``jobs<=1`` runs inline — no pool overhead, picklability not required),
and store fresh results before returning the order-preserving
:class:`SweepResult`.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.core.gamma import FixedGamma
from repro.solve import solve
from repro.sweep.cache import ResultCache
from repro.sweep.spec import RunConfig, SweepSpec, parse_gamma_policy
from repro.workloads.registry import workload_from_spec

__all__ = [
    "SweepCell",
    "SweepResult",
    "execute_run",
    "plan_sweep",
    "run_sweep",
]

#: Methods whose ``seed=`` option reaches a stochastic optimizer; the
#: deterministic families ignore the seed axis (cells differing only in
#: seed still cache separately — the config is the identity).
_SEEDED_METHODS = frozenset({"annealing", "hill_climb", "random_search"})


def _solve_options(config: RunConfig) -> dict[str, Any]:
    """Translate the cell's gamma policy / seed into ``solve`` options."""
    options: dict[str, Any] = {}
    kind, step = parse_gamma_policy(config.gamma)
    if kind == "fixed":
        assert step is not None
        if config.method == "multirate":
            from repro.core.multirate import MultirateConfig

            options["config"] = MultirateConfig(node_gamma=FixedGamma(step))
        else:
            from repro.core.lrgp import LRGPConfig

            options["config"] = LRGPConfig(node_gamma=FixedGamma(step))
    if config.method in _SEEDED_METHODS:
        options["seed"] = config.seed
    return options


def _solve_payload(config: RunConfig) -> dict[str, Any]:
    problem = workload_from_spec(config.workload)
    result = solve(
        problem,
        method=config.method,
        engine=config.engine,
        iterations=config.iterations,
        **_solve_options(config),
    )
    return {
        "kind": "solve",
        "result": result.canonical_dict(),
        "metrics": {
            "utility": result.utility,
            "iterations": result.iterations,
            "converged_at": result.converged_at,
            "engine": result.engine,
        },
        "timing": {"solve_seconds": result.wall_time_seconds},
    }


def _fault_payload(config: RunConfig) -> dict[str, Any]:
    """Run the cell under its fault plan (the ``repro chaos`` protocol).

    The faulted run and a fault-free baseline execute with the same seed;
    *retention* is faulted converged utility over baseline converged
    utility — the cell's headline fault-recovery metric.
    """
    from repro.events.reliability import RetryPolicy
    from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime
    from repro.runtime.faults import FaultPlan

    assert config.fault_plan is not None
    plan_params = dict(config.fault_plan)
    horizon = plan_params.pop("horizon", 400.0)
    problem = workload_from_spec(config.workload)
    plan = FaultPlan.random(
        problem, seed=config.seed, horizon=horizon, **plan_params
    )
    runtime = AsynchronousRuntime(
        problem,
        AsyncConfig(seed=config.seed),
        fault_plan=plan,
        retry=RetryPolicy(),
    )
    runtime.run_until(horizon)
    baseline = AsynchronousRuntime(problem, AsyncConfig(seed=config.seed))
    baseline.run_until(horizon)

    utility = runtime.converged_utility()
    reference = baseline.converged_utility()
    recovery_times = [record.recovery_time for record in runtime.recoveries]
    return {
        "kind": "fault",
        "result": {
            "horizon": horizon,
            "utility": utility,
            "baseline_utility": reference,
            "plan": {
                "crashes": len(plan.crashes),
                "partitions": len(plan.partitions),
                "storms": len(plan.storms),
                "checkpoint_interval": plan.checkpoint_interval,
            },
            "counters": {
                "messages_sent": runtime.messages_sent,
                "messages_lost": runtime.messages_lost,
                "messages_stale": runtime.messages_stale,
                "messages_to_down": runtime.messages_to_down,
                "messages_partitioned": runtime.messages_partitioned,
                "retransmissions": runtime.retransmissions,
                "retries_abandoned": runtime.retries_abandoned,
            },
        },
        "metrics": {
            "utility": utility,
            "retention": (utility / reference) if reference else None,
            "recoveries": len(recovery_times),
            "mean_recovery_time": (
                sum(recovery_times) / len(recovery_times)
                if recovery_times
                else None
            ),
        },
        "timing": {},
    }


def execute_run(config: RunConfig) -> dict[str, Any]:
    """Execute one cell; return its JSON-ready payload.

    Module-level and pure-data in/out: this is the function worker
    processes import and run.  Everything under ``"result"`` and
    ``"metrics"`` is deterministic for the config (given a deterministic
    method); ``"timing"`` is measured and varies run to run.
    """
    started = time.perf_counter()
    payload = (
        _fault_payload(config)
        if config.fault_plan is not None
        else _solve_payload(config)
    )
    payload["label"] = config.label()
    payload["timing"]["wall_time_seconds"] = time.perf_counter() - started
    return payload


@dataclass(frozen=True)
class SweepCell:
    """One grid cell's outcome: its config, cache key, and payload."""

    config: RunConfig
    key: str
    cached: bool
    payload: dict[str, Any]

    @property
    def label(self) -> str:
        return self.config.label()

    @property
    def metrics(self) -> dict[str, Any]:
        metrics = self.payload.get("metrics")
        return dict(metrics) if isinstance(metrics, dict) else {}

    @property
    def utility(self) -> float | None:
        value = self.metrics.get("utility")
        return float(value) if isinstance(value, (int, float)) else None


@dataclass(frozen=True)
class SweepResult:
    """An executed sweep: cells in grid order plus farm bookkeeping."""

    cells: tuple[SweepCell, ...]
    jobs: int
    wall_time_seconds: float
    #: Corrupt cache entries encountered (each re-executed and repaired).
    corrupt_entries: int = 0

    @property
    def hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cached)

    @property
    def executed(self) -> int:
        return sum(1 for cell in self.cells if not cell.cached)

    def __len__(self) -> int:
        return len(self.cells)


def _as_configs(
    spec: SweepSpec | Sequence[RunConfig],
) -> tuple[RunConfig, ...]:
    if isinstance(spec, SweepSpec):
        return spec.expand()
    return tuple(spec)


def plan_sweep(
    spec: SweepSpec | Sequence[RunConfig],
    cache: ResultCache | None = None,
    force: bool = False,
) -> tuple[tuple[RunConfig, str, str], ...]:
    """The ``--dry-run`` view: (config, key, status) per cell, in grid
    order, where status is ``"hit"``, ``"miss"`` or ``"forced"`` (cached
    but ``--force`` will re-execute it)."""
    cache = cache if cache is not None else ResultCache()
    plan: list[tuple[RunConfig, str, str]] = []
    for config in _as_configs(spec):
        key = cache.key_for(config)
        entry = cache.get(key)
        if entry is None:
            status = "miss"
        else:
            status = "forced" if force else "hit"
        plan.append((config, key, status))
    return tuple(plan)


def run_sweep(
    spec: SweepSpec | Sequence[RunConfig],
    jobs: int = 1,
    cache: ResultCache | None = None,
    force: bool = False,
) -> SweepResult:
    """Run the grid, cache-first; return cells in grid order.

    ``jobs<=1`` executes misses inline in this process;  ``jobs>1`` fans
    them out over a :class:`ProcessPoolExecutor` via ``executor.map``,
    which preserves submission (= grid) order.  ``force`` re-executes
    every cell, overwriting its cache entry.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    cache = cache if cache is not None else ResultCache()
    configs = _as_configs(spec)
    corrupt_before = cache.corrupt_hits
    started = time.perf_counter()

    cells: list[SweepCell | None] = [None] * len(configs)
    pending: list[tuple[int, RunConfig, str]] = []
    for index, config in enumerate(configs):
        key = cache.key_for(config)
        entry = None if force else cache.get(key)
        if entry is not None:
            cells[index] = SweepCell(
                config=config, key=key, cached=True, payload=entry["payload"]
            )
        else:
            pending.append((index, config, key))

    if pending:
        pending_configs = [config for _, config, _ in pending]
        if jobs == 1 or len(pending) == 1:
            payloads = [execute_run(config) for config in pending_configs]
        else:
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                payloads = list(pool.map(execute_run, pending_configs))
        for (index, config, key), payload in zip(pending, payloads):
            cache.put(key, config, payload)
            cells[index] = SweepCell(
                config=config, key=key, cached=False, payload=payload
            )

    done = [cell for cell in cells if cell is not None]
    assert len(done) == len(configs)
    return SweepResult(
        cells=tuple(done),
        jobs=jobs,
        wall_time_seconds=time.perf_counter() - started,
        corrupt_entries=cache.corrupt_hits - corrupt_before,
    )
