"""Unified one-shot solver API: ``repro.solve(problem, method=...)``.

Every optimizer family in the repository answers the same question — "given
this :class:`~repro.model.problem.Problem`, what allocation should the
system run?" — but historically each answered it through its own driver
class and ad-hoc result object (``LRGP`` + ``utilities``,
``MultirateLRGP``, ``TwoStageResult``, ``AnnealingResult`` ...).  This
module is the front door over all of them:

>>> import repro
>>> result = repro.solve(problem, method="lrgp", engine="vectorized")
>>> result.utility, result.converged_at, result.allocation

``method`` selects the algorithm family, ``engine`` the LRGP iteration
execution strategy (:mod:`repro.core.engines`; only meaningful for the
LRGP-based methods), ``iterations`` the per-method effort budget.  Extra
keyword options are forwarded to the underlying optimizer (``config=`` for
the LRGP family, ``seed=`` for the stochastic baselines, ...).

Methods:

* ``"lrgp"`` — the synchronous driver (section 3), default.
* ``"multirate"`` — the multirate extension (per-node flow thinning).
* ``"two_stage"`` — LRGP with path pruning (section 2.4).
* ``"annealing"`` — the paper's simulated-annealing comparison
  (best-of-start-temperatures protocol, section 4.4).
* ``"hill_climb"`` / ``"random_search"`` — calibration baselines.
* ``"coordinate"`` — alternating exact-rate / greedy-population stages.

Every method returns the same frozen :class:`SolveResult`.  The legacy
per-family attribute names (``best_utility``, ``best_allocation``,
``final_utility``) still resolve on it — with a :class:`DeprecationWarning`
— so call sites migrating from the old result objects keep working.

Method-specific imports happen lazily inside the runners so that
``import repro`` stays as light as the reference driver (in particular,
numpy only loads for ``engine="vectorized"`` or the numpy-backed
baselines).
"""

from __future__ import annotations

import time
import warnings
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.canonical import canonical_json, content_hash
from repro.core.convergence import iterations_until_convergence
from repro.core.lrgp import LRGP, LRGPConfig
from repro.model.allocation import Allocation, total_utility
from repro.model.problem import Problem

if TYPE_CHECKING:
    from repro.core.multirate import MultirateAllocation

#: Old result-object attribute names still resolvable on :class:`SolveResult`
#: (with a deprecation warning), mapped to their replacements.
_LEGACY_ALIASES: dict[str, str] = {
    "best_utility": "utility",
    "final_utility": "utility",
    "best_allocation": "allocation",
}

#: Methods for which the ``engine=`` selector is meaningful: the ones that
#: execute LRGP iterations through :mod:`repro.core.engines`.
ENGINE_METHODS = frozenset({"lrgp", "two_stage"})

#: Smallest flow count at which the vectorized engine pays for itself.
#: Measured crossover (benchmarks/results/BENCH_engines.json, "dispatch"
#: section): the micro workload (2 flows) runs at ~0.95x the reference
#: engine — numpy array setup dominates — while the base workload
#: (6 flows) reaches ~2.4x.  Below this floor :func:`solve` silently runs
#: the reference engine and records the substitution in
#: ``metadata["engine_fallback"]``.  Constructing :class:`LRGP` directly
#: with ``engine="vectorized"`` bypasses the dispatch: explicit driver
#: construction means the caller wants that engine, benchmark harnesses
#: included.
VECTORIZED_MIN_FLOWS = 4


def _dispatch_engine(
    problem: Problem, engine: str | None
) -> tuple[str | None, dict[str, Any] | None]:
    """Resolve the requested engine against the problem size.

    Returns the engine to actually run plus the ``engine_fallback``
    metadata entry (``None`` when the request is honored as-is).
    """
    if engine != "vectorized":
        return engine, None
    flows = len(problem.flows)
    if flows >= VECTORIZED_MIN_FLOWS:
        return engine, None
    return "reference", {
        "requested": "vectorized",
        "reason": (
            f"problem has {flows} flow(s), below the vectorized "
            f"crossover of {VECTORIZED_MIN_FLOWS}; reference engine is "
            "faster at this size"
        ),
    }


@dataclass(frozen=True)
class SolveResult:
    """Outcome of one :func:`solve` call, identical across methods.

    ``utilities`` is the per-iteration utility trajectory when the method
    produces one (the LRGP family); single-shot searches report a
    one-point trajectory.  ``converged_at`` is the 1-based iteration count
    until the paper's stability criterion first holds (``None`` when the
    trajectory never stabilizes or the method has no notion of it).
    ``metadata`` carries method-specific extras (stage utilities, node
    prices, acceptance rates, per-iteration records of a snapshot run...)
    without widening the common surface.
    """

    method: str
    engine: str | None
    allocation: "Allocation | MultirateAllocation"
    utility: float
    utilities: tuple[float, ...]
    iterations: int
    converged_at: int | None
    wall_time_seconds: float
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        alias = _LEGACY_ALIASES.get(name)
        if alias is not None:
            warnings.warn(
                f"SolveResult.{name} is deprecated; use SolveResult.{alias}",
                DeprecationWarning,
                stacklevel=2,
            )
            return getattr(self, alias)
        try:
            metadata = object.__getattribute__(self, "metadata")
        except AttributeError:  # mid-construction (copy/pickle protocols)
            metadata = {}
        if name in metadata:
            warnings.warn(
                f"SolveResult.{name} is deprecated; read "
                f"SolveResult.metadata[{name!r}] instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return metadata[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the ``repro optimize --json`` payload).

        Metadata entries that are not JSON-representable — e.g. the
        :class:`~repro.core.lrgp.IterationRecord` tuple of a snapshot run
        — are dropped rather than coerced.
        """
        return {
            "method": self.method,
            "engine": self.engine,
            "utility": self.utility,
            "iterations": self.iterations,
            "converged_at": self.converged_at,
            "wall_time_seconds": self.wall_time_seconds,
            "utilities": list(self.utilities),
            "allocation": _allocation_payload(self.allocation),
            "metadata": {
                key: value
                for key, value in sorted(self.metadata.items())
                if _json_safe(value)
            },
        }

    def canonical_dict(self) -> dict[str, Any]:
        """:meth:`to_dict` minus the volatile measurement fields.

        ``wall_time_seconds`` changes run to run even when the trajectory
        is bit-identical, so the canonical form — the one the sweep cache
        compares and hashes — excludes it.  Everything the optimizer
        *computed* (utility trajectory, allocation, prices, convergence)
        stays in.
        """
        payload = self.to_dict()
        del payload["wall_time_seconds"]
        return payload

    def canonical_json(self) -> str:
        """Sorted-key canonical JSON of :meth:`canonical_dict`.

        Deterministic solves (the LRGP family, seeded baselines) produce
        byte-equal strings across repeated executions, processes and
        ``PYTHONHASHSEED`` values — the bit-equality contract the sweep
        cache relies on (``allow_nan=False``, like the trace sinks).
        """
        return canonical_json(self.canonical_dict())

    def config_hash(self) -> str:
        """SHA-256 content hash of :meth:`canonical_json`."""
        return content_hash(self.canonical_dict())


def _json_safe(value: Any) -> bool:
    """True when ``value`` serializes losslessly with ``json.dumps``."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, (list, tuple)):
        return all(_json_safe(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and _json_safe(item)
            for key, item in value.items()
        )
    return False


def _allocation_payload(
    allocation: "Allocation | MultirateAllocation",
) -> dict[str, Any]:
    """Flatten either allocation shape into JSON-friendly mappings."""
    if isinstance(allocation, Allocation):
        return {
            "rates": dict(allocation.rates),
            "populations": dict(allocation.populations),
        }
    return {
        "source_rates": dict(allocation.source_rates),
        "local_rates": {
            f"{node_id}:{flow_id}": local_rate
            for (node_id, flow_id), local_rate in sorted(
                allocation.local_rates.items()
            )
        },
        "populations": dict(allocation.populations),
    }


def _take_config(options: dict[str, Any], method: str) -> Any:
    """Pop the ``config=`` option; reject anything else left over."""
    config = options.pop("config", None)
    if options:
        unexpected = ", ".join(sorted(options))
        raise TypeError(
            f"solve(method={method!r}) got unexpected options: {unexpected}"
        )
    return config


def _solve_lrgp(
    problem: Problem,
    engine: str | None,
    iterations: int | None,
    options: dict[str, Any],
) -> SolveResult:
    config: LRGPConfig | None = _take_config(options, "lrgp")
    budget = 250 if iterations is None else iterations
    engine, fallback = _dispatch_engine(problem, engine)
    started = time.perf_counter()
    optimizer = LRGP(problem, config, engine=engine)
    optimizer.run(budget)
    wall = time.perf_counter() - started

    allocation = optimizer.allocation()
    utilities = tuple(optimizer.utilities)
    metadata: dict[str, Any] = {
        "node_prices": optimizer.node_prices(),
        "link_prices": optimizer.link_prices(),
    }
    if fallback is not None:
        metadata["engine_fallback"] = fallback
    if optimizer.records and optimizer.records[0].rates is not None:
        metadata["records"] = tuple(optimizer.records)
    return SolveResult(
        method="lrgp",
        engine=optimizer.engine_name,
        allocation=allocation,
        utility=utilities[-1] if utilities else total_utility(problem, allocation),
        utilities=utilities,
        iterations=optimizer.iteration,
        converged_at=optimizer.convergence_iteration(),
        wall_time_seconds=wall,
        metadata=metadata,
    )


def _solve_multirate(
    problem: Problem,
    engine: str | None,
    iterations: int | None,
    options: dict[str, Any],
) -> SolveResult:
    from repro.core.multirate import MultirateLRGP, multirate_total_utility

    config = _take_config(options, "multirate")
    budget = 250 if iterations is None else iterations
    started = time.perf_counter()
    optimizer = (
        MultirateLRGP(problem)
        if config is None
        else MultirateLRGP(problem, config)
    )
    optimizer.run(budget)
    wall = time.perf_counter() - started

    allocation = optimizer.allocation()
    utilities = tuple(optimizer.utilities)
    return SolveResult(
        method="multirate",
        engine=None,
        allocation=allocation,
        utility=multirate_total_utility(problem, allocation),
        utilities=utilities,
        iterations=len(utilities),
        converged_at=iterations_until_convergence(utilities),
        wall_time_seconds=wall,
        metadata={"node_prices": optimizer.node_prices()},
    )


def _solve_two_stage(
    problem: Problem,
    engine: str | None,
    iterations: int | None,
    options: dict[str, Any],
) -> SolveResult:
    from repro.core.two_stage import two_stage_optimize

    config: LRGPConfig | None = _take_config(options, "two_stage")
    budget = 250 if iterations is None else iterations
    engine, fallback = _dispatch_engine(problem, engine)
    started = time.perf_counter()
    result = two_stage_optimize(problem, config, budget, engine=engine)
    wall = time.perf_counter() - started

    engine_name = engine if engine is not None else (
        config.engine if config is not None else LRGPConfig().engine
    )
    utilities = result.stage1_utilities + result.stage2_utilities
    metadata: dict[str, Any] = {
        "stage1_utility": result.stage1_utility,
        "stage2_utility": result.stage2_utility,
        "improvement": result.improvement,
        "pruned_flow_nodes": len(result.prune_set.flow_nodes),
        "pruned_flow_links": len(result.prune_set.flow_links),
    }
    if fallback is not None:
        metadata["engine_fallback"] = fallback
    return SolveResult(
        method="two_stage",
        engine=engine_name,
        allocation=result.stage2_allocation,
        utility=result.stage2_utility,
        utilities=utilities,
        iterations=len(utilities),
        converged_at=iterations_until_convergence(result.stage2_utilities),
        wall_time_seconds=wall,
        metadata=metadata,
    )


def _solve_annealing(
    problem: Problem,
    engine: str | None,
    iterations: int | None,
    options: dict[str, Any],
) -> SolveResult:
    from repro.baselines import best_of_temperatures

    if iterations is not None:
        options.setdefault("max_steps", iterations)
    started = time.perf_counter()
    result = best_of_temperatures(problem, **options)
    wall = time.perf_counter() - started
    return SolveResult(
        method="annealing",
        engine=None,
        allocation=result.best_allocation,
        utility=result.best_utility,
        utilities=(result.best_utility,),
        iterations=result.steps,
        converged_at=None,
        wall_time_seconds=wall,
        metadata={
            "final_step_utility": result.final_utility,
            "accepted": result.accepted,
            "acceptance_rate": result.acceptance_rate,
            "start_temperature": result.start_temperature,
        },
    )


def _solve_hill_climb(
    problem: Problem,
    engine: str | None,
    iterations: int | None,
    options: dict[str, Any],
) -> SolveResult:
    from repro.baselines import hill_climb

    if iterations is not None:
        options.setdefault("max_steps", iterations)
    started = time.perf_counter()
    result = hill_climb(problem, **options)
    wall = time.perf_counter() - started
    return SolveResult(
        method="hill_climb",
        engine=None,
        allocation=result.best_allocation,
        utility=result.best_utility,
        utilities=(result.best_utility,),
        iterations=result.steps,
        converged_at=None,
        wall_time_seconds=wall,
        metadata={},
    )


def _solve_random_search(
    problem: Problem,
    engine: str | None,
    iterations: int | None,
    options: dict[str, Any],
) -> SolveResult:
    from repro.baselines import random_search

    if iterations is not None:
        options.setdefault("samples", iterations)
    started = time.perf_counter()
    result = random_search(problem, **options)
    wall = time.perf_counter() - started
    return SolveResult(
        method="random_search",
        engine=None,
        allocation=result.best_allocation,
        utility=result.best_utility,
        utilities=(result.best_utility,),
        iterations=result.steps,
        converged_at=None,
        wall_time_seconds=wall,
        metadata={},
    )


def _solve_coordinate(
    problem: Problem,
    engine: str | None,
    iterations: int | None,
    options: dict[str, Any],
) -> SolveResult:
    from repro.baselines import alternating_optimization

    if iterations is not None:
        options.setdefault("max_stages", iterations)
    started = time.perf_counter()
    result = alternating_optimization(problem, **options)
    wall = time.perf_counter() - started
    return SolveResult(
        method="coordinate",
        engine=None,
        allocation=result.best_allocation,
        utility=result.best_utility,
        utilities=(result.best_utility,),
        iterations=result.stages,
        converged_at=result.stages if result.converged else None,
        wall_time_seconds=wall,
        metadata={"converged": result.converged},
    )


_RUNNERS: dict[
    str,
    Callable[[Problem, str | None, int | None, dict[str, Any]], SolveResult],
] = {
    "lrgp": _solve_lrgp,
    "multirate": _solve_multirate,
    "two_stage": _solve_two_stage,
    "annealing": _solve_annealing,
    "hill_climb": _solve_hill_climb,
    "random_search": _solve_random_search,
    "coordinate": _solve_coordinate,
}


def available_methods() -> tuple[str, ...]:
    """Registered :func:`solve` method names, sorted."""
    return tuple(sorted(_RUNNERS))


def solve(
    problem: Problem,
    method: str = "lrgp",
    *,
    engine: str | None = None,
    iterations: int | None = None,
    **options: Any,
) -> SolveResult:
    """Optimize ``problem`` with the chosen method; return a :class:`SolveResult`.

    ``engine`` selects the LRGP iteration-execution strategy
    (``"reference"`` | ``"vectorized"``) and is only accepted for the
    LRGP-based methods (:data:`ENGINE_METHODS`).  For problems below the
    measured vectorized crossover (:data:`VECTORIZED_MIN_FLOWS` flows)
    ``engine="vectorized"`` transparently runs the reference engine
    instead — numpy setup costs exceed the per-iteration win there — and
    notes the substitution in ``metadata["engine_fallback"]``.
    ``iterations`` maps to
    the method's natural effort knob (LRGP iterations, annealing /
    hill-climb steps, random-search samples, coordinate stages); ``None``
    keeps each method's own default.  Remaining keyword ``options`` are
    forwarded to the underlying optimizer (``config=`` for the LRGP
    family, ``seed=`` for the stochastic baselines, ...).
    """
    runner = _RUNNERS.get(method)
    if runner is None:
        raise ValueError(
            f"unknown method {method!r}; available: "
            f"{', '.join(available_methods())}"
        )
    if engine is not None and method not in ENGINE_METHODS:
        raise ValueError(
            f"method {method!r} does not execute LRGP iterations, so "
            f"engine={engine!r} is not applicable (engines apply to: "
            f"{', '.join(sorted(ENGINE_METHODS))})"
        )
    if iterations is not None and iterations < 0:
        raise ValueError(f"iterations must be non-negative, got {iterations}")
    return runner(problem, engine, iterations, dict(options))
