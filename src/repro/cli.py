"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``optimize``  — run an optimizer (``repro.solve``) on a workload
  (built-in name or a problem JSON file), print the allocation summary —
  or the full SolveResult as JSON — and optionally write the allocation
  and/or a full iteration trace.  ``--method`` picks the algorithm
  family, ``--engine`` the LRGP execution strategy.
* ``workload``  — materialize a built-in workload as problem JSON.
* ``figure``    — regenerate one of the paper's figures (1-4) as an ASCII
  chart plus data rows.
* ``table``     — regenerate one of the paper's tables (1-3).
* ``extension`` — run one of the extension experiments (E1-E3).
* ``stats``     — run a workload with full telemetry and print the metrics
  snapshot (human/Prometheus/JSON) plus convergence diagnostics.
* ``profile``   — run a workload under the hierarchical phase profiler
  and print the phase tree (wall/CPU/self time per phase), with
  flamegraph collapsed-stack, speedscope-JSON and report-JSON export.
* ``trace run`` — capture the structured event stream of a run as JSONL
  (lossless, ``event_from_dict`` round-trips it; ``--gzip`` compresses)
  or flat CSV.  Bare ``repro trace <workload>`` still works (implied
  ``run``).
* ``trace show``   — pretty-print a capture with ``--type``/``--since``
  filters, ``--follow`` tailing and a ``--dashboard`` live summary.
* ``trace causal`` — reconstruct the causal graph of a capture: critical
  path to convergence plus per-resource blame attribution.
* ``replay``    — deterministically re-materialize the deployed state
  (rates/populations/prices) at any event index of a capture.
* ``bench``     — consolidate ``BENCH_*.json`` artifacts into a trajectory
  snapshot (``bench snapshot``) and diff two snapshots flagging >10%
  regressions (``bench compare``).
* ``chaos``     — run the asynchronous deployment under a seeded fault plan
  (crashes + checkpoint restarts, partitions, delay storms) and report
  recovery times and utility retention vs the fault-free run.
* ``sweep``     — declarative experiment grids (``repro.sweep``): expand
  workload x method x engine x gamma x fault-plan x iterations x seed
  axes into cells, execute them over a process-pool farm with a
  content-addressed result cache (``sweep run``, with ``--capture``
  per-cell telemetry, ``--live``/``--events`` progress streaming and
  ``--flame``/``--speedscope`` farm-wide merged profiles), inspect the
  cache (``sweep show``), empty it (``sweep clean``), audit past
  invocations (``sweep ledger``) and diff two cells' phase trees as a
  differential flamegraph (``sweep diff-flame``).
* ``lint``      — run the domain-aware static analyzer (docs/analysis.md)
  over source trees, with JSON output, baselines and strict exit codes.

Workloads are addressed everywhere by *registry spec* —
``NAME[:k=v,...]`` (``base``, ``tree:depth=4``, ``flows:factor=4``) or a
problem JSON path — either positionally or via ``--workload``; see
``repro workload --list``.

Examples::

    python -m repro optimize base --iterations 250
    python -m repro optimize flows-x4 --engine vectorized --json
    python -m repro optimize base --method two_stage
    python -m repro optimize path/to/problem.json --trace trace.csv
    python -m repro workload base -o base.json
    python -m repro figure 1
    python -m repro table 2 --sa-steps 200000
    python -m repro extension e2
    python -m repro stats micro --iterations 100
    python -m repro stats base --format prometheus -o metrics.prom
    python -m repro stats --from-json archived_metrics.json
    python -m repro profile flows-x4 --engine vectorized --flame flame.txt
    python -m repro profile base --speedscope profile.speedscope.json
    python -m repro trace micro --format jsonl -o trace.jsonl
    python -m repro trace run base --engine async --gzip -o run.jsonl.gz
    python -m repro trace show run.jsonl.gz --type message --since 50
    python -m repro trace causal run.jsonl.gz
    python -m repro replay run.jsonl.gz --at 500
    python -m repro bench snapshot
    python -m repro bench compare old.json new.json --strict
    python -m repro chaos base --horizon 400 --crash-rate 0.02
    python -m repro chaos micro --no-checkpoint --json
    python -m repro optimize --workload tree:depth=4,branching=3
    python -m repro workload --list
    python -m repro sweep run --workload micro --workload base \
        --engine none --engine vectorized --jobs 4 --dry-run
    python -m repro sweep run --workload base --method lrgp \
        --gamma adaptive --gamma fixed:0.05 --bench BENCH_sweep.json
    python -m repro sweep run --workload base --seed 0 --seed 1 \
        --jobs 4 --capture --live --events events.jsonl --flame farm.folded
    python -m repro sweep show
    python -m repro sweep ledger --limit 5
    python -m repro sweep diff-flame base/lrgp/s0 base/lrgp/s1 -o diff.folded
    python -m repro sweep clean
    python -m repro lint --strict src
    python -m repro lint --format json --rules R2,R5 src
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from typing import Callable, Iterator

    from repro.obs import ProfileReport, Telemetry, TraceEvent
    from repro.sweep import ResultCache, SweepSpec

from repro.core.engines import available_engines
from repro.core.lrgp import LRGP, LRGPConfig
from repro.experiments.extensions import (
    extension_capacity_churn,
    extension_communication,
    extension_coordinate,
    extension_fault_recovery,
    extension_link_pricing,
    extension_multirate,
    extension_queueing_latency,
    extension_two_stage,
)
from repro.experiments.figures import (
    figure1_damping,
    figure2_adaptive_gamma,
    figure3_recovery,
    figure4_power_utility,
)
from repro.experiments.reporting import (
    render_ascii_chart,
    render_series_rows,
    render_table,
)
from repro.experiments.tables import (
    table1_workload,
    table2_scalability,
    table3_utility_shapes,
)
from repro.model.allocation import is_feasible
from repro.model.problem import Problem
from repro.model.serialization import (
    allocation_to_json,
    problem_from_json,
    problem_to_json,
)
from repro.solve import SolveResult, available_methods, solve
from repro.workloads.registry import (
    list_aliases,
    list_workloads,
    workload_from_spec,
)

#: The historical CLI workload table, kept as a compatibility view onto
#: the registry (every name here is a registered workload or alias; the
#: pre-registry spellings warn on use).  New code should call
#: :func:`repro.workloads.get_workload` / pass registry specs instead.
BUILTIN_WORKLOADS = {
    name: (lambda name=name: workload_from_spec(name))
    for name in (
        "base",
        "base-pow25",
        "base-pow50",
        "base-pow75",
        "flows-x2",
        "flows-x4",
        "cnodes-x2",
        "cnodes-x4",
        "cnodes-x8",
        "trade-data",
        "latest-price",
        "link-bottleneck",
        "tree",
        "micro",
    )
}


def load_problem(spec: str) -> Problem:
    """Resolve a workload spec: ``NAME[:k=v,...]`` (registry name or
    alias, with factory parameters) or a problem JSON path."""
    try:
        return workload_from_spec(spec)
    except KeyError:
        pass  # not a registered name: fall through to the path form
    except (TypeError, ValueError) as error:
        raise SystemExit(str(error)) from error
    path = Path(spec)
    if path.exists():
        return problem_from_json(path.read_text())
    raise SystemExit(
        f"unknown workload {spec!r}: not a registered workload "
        f"({', '.join(list_workloads())}), not an alias "
        f"({', '.join(sorted(list_aliases()))}), and no such file"
    )


def _print_multirate_summary(problem: Problem, result: SolveResult) -> None:
    allocation = result.allocation
    print(f"workload:   {problem.describe()} (multirate)")
    print(f"iterations: {result.iterations} (stable by {result.converged_at})")
    print(f"utility:    {result.utility:,.2f}")
    print("source rate caps:")
    for flow_id in sorted(allocation.source_rates):
        print(f"  {flow_id}: {allocation.source_rates[flow_id]:.2f}")
    print("local delivery rates (node, flow):")
    for (node_id, flow_id), rate in sorted(allocation.local_rates.items()):
        cap = allocation.source_rates[flow_id]
        marker = "  (thinned)" if rate < cap - 1e-9 else ""
        print(f"  {node_id} <- {flow_id}: {rate:.2f}{marker}")


def _print_summary(
    problem: Problem, result: SolveResult, verbose: bool
) -> None:
    allocation = result.allocation
    method_tag = "" if result.method == "lrgp" else f" ({result.method})"
    print(f"workload:   {problem.describe()}{method_tag}")
    print(f"iterations: {result.iterations} (stable by {result.converged_at})")
    print(f"utility:    {result.utility:,.2f}")
    print(f"feasible:   {is_feasible(problem, allocation)}")
    print("rates:")
    for flow_id in sorted(allocation.rates):
        print(f"  {flow_id}: {allocation.rates[flow_id]:.2f}")
    print("populations (admitted/connected):")
    for class_id in sorted(allocation.populations):
        admitted = allocation.populations[class_id]
        connected = problem.classes[class_id].max_consumers
        if admitted or verbose:
            print(f"  {class_id}: {admitted}/{connected}")
    node_prices = result.metadata.get("node_prices")
    link_prices = result.metadata.get("link_prices")
    if node_prices is not None or link_prices is not None:
        print("node prices:")
        for node_id, price in sorted((node_prices or {}).items()):
            print(f"  {node_id}: {price:.6f}")
        for link_id, price in sorted((link_prices or {}).items()):
            print(f"  link {link_id}: {price:.6f}")


def cmd_optimize(args: argparse.Namespace) -> int:
    problem = load_problem(args.workload)
    method = "multirate" if args.multirate else args.method
    if args.trace is not None and method != "lrgp":
        raise SystemExit(
            "--trace needs per-iteration records; only --method lrgp has them"
        )
    options: dict[str, object] = {}
    if method in ("lrgp", "two_stage"):
        options["config"] = LRGPConfig(
            node_gamma=(
                LRGPConfig.fixed(args.gamma).node_gamma
                if args.gamma is not None
                else LRGPConfig.adaptive().node_gamma
            ),
            link_gamma=args.link_gamma,
            record_snapshots=args.trace is not None,
        )
    try:
        result = solve(
            problem,
            method,
            engine=args.engine,
            iterations=args.iterations,
            **options,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from error

    if args.json:
        import json as _json

        print(_json.dumps(result.to_dict(), indent=2, sort_keys=True))
    elif method == "multirate":
        _print_multirate_summary(problem, result)
    else:
        _print_summary(problem, result, args.verbose)

    if args.output is not None:
        if method == "multirate":
            raise SystemExit(
                "--output writes single-rate allocation JSON; "
                "not supported with --method multirate"
            )
        Path(args.output).write_text(allocation_to_json(result.allocation))
        print(f"allocation written to {args.output}")
    if args.trace is not None:
        from repro.core.trace import trace_to_csv

        Path(args.trace).write_text(trace_to_csv(result.metadata["records"]))
        print(f"trace written to {args.trace}")
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    if args.list_workloads:
        from repro.workloads.registry import entry_for

        print("workloads:")
        for name in list_workloads():
            entry = entry_for(name)
            print(f"  {name:<14} {entry.summary}")
        aliases = list_aliases()
        if aliases:
            print("aliases:")
            for alias in sorted(aliases):
                print(f"  {alias:<14} -> {aliases[alias]}")
        return 0
    if args.name is None:
        raise SystemExit("a workload name is required (or --list)")
    problem = load_problem(args.name)
    text = problem_to_json(problem)
    if args.output is not None:
        Path(args.output).write_text(text)
        print(f"{problem.describe()} written to {args.output}")
    else:
        print(text)
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    figures = {
        "1": figure1_damping,
        "2": figure2_adaptive_gamma,
        "3": figure3_recovery,
        "4": figure4_power_utility,
    }
    figure = figures[args.number]()
    print(render_ascii_chart(figure))
    print()
    print(render_series_rows(figure, every=args.every))
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    if args.number == "1":
        print(render_table(table1_workload()))
    elif args.number == "2":
        print(render_table(table2_scalability(sa_steps=args.sa_steps)))
    else:
        print(render_table(table3_utility_shapes(sa_steps=args.sa_steps)))
    return 0


def cmd_extension(args: argparse.Namespace) -> int:
    tables = {
        "e1": extension_link_pricing,
        "e2": extension_multirate,
        "e3": extension_two_stage,
        "e4": extension_queueing_latency,
        "e6": extension_coordinate,
        "e7": extension_communication,
        "e8": extension_fault_recovery,
    }
    if args.name == "e5":
        figure = extension_capacity_churn()
        print(render_ascii_chart(figure))
        print()
        print(render_series_rows(figure, every=10))
    else:
        print(render_table(tables[args.name]()))
    return 0


def _telemetry_run(
    args: argparse.Namespace,
    problem: Problem,
    telemetry: "Telemetry | None" = None,
) -> "Telemetry":
    """Run the selected engine with an in-memory telemetry capture."""
    from repro.obs import Telemetry

    if telemetry is None:
        telemetry = Telemetry()
    if args.engine == "sync":
        from repro.runtime.synchronous import SynchronousRuntime

        SynchronousRuntime(
            problem, telemetry=telemetry, trace_id=f"sync-{args.workload}"
        ).run(args.iterations)
    elif args.engine == "async":
        from repro.runtime.asynchronous import AsynchronousRuntime

        AsynchronousRuntime(
            problem, telemetry=telemetry, trace_id=f"async-{args.workload}"
        ).run_until(float(args.iterations))
    else:
        config = LRGPConfig(
            record_snapshots=args.snapshots,
            telemetry=telemetry,
            engine=args.engine if args.engine == "vectorized" else "reference",
        )
        LRGP(problem, config).run(args.iterations)
    return telemetry


def _stats_from_json(args: argparse.Namespace) -> int:
    """``repro stats --from-json``: re-render an archived snapshot.

    Accepts any artifact carrying a ``snapshot_to_dict`` payload — a raw
    snapshot object, the ``repro stats --format json`` wrapper (snapshot
    under ``"metrics"``), or a sweep cell's shipped telemetry section —
    and pushes it through the same renderers as a live run.
    """
    import json as _json

    from repro.obs import (
        MetricsError,
        render_metrics,
        snapshot_from_dict,
        to_json,
        to_prometheus_text,
    )

    try:
        payload = _json.loads(Path(args.from_json).read_text(encoding="utf-8"))
    except OSError as error:
        raise SystemExit(f"cannot read {args.from_json}: {error}") from error
    except ValueError as error:
        raise SystemExit(
            f"{args.from_json} is not valid JSON: {error}"
        ) from error
    if isinstance(payload, dict) and isinstance(payload.get("metrics"), dict):
        # `repro stats --format json` wrapper or a sweep telemetry section.
        payload = payload["metrics"]
    if isinstance(payload, dict) and not any(
        key in payload for key in ("counters", "gauges", "histograms")
    ):
        raise SystemExit(
            f"{args.from_json} does not contain a metrics snapshot "
            "(no counters/gauges/histograms sections)"
        )
    try:
        snapshot = snapshot_from_dict(payload)
    except MetricsError as error:
        raise SystemExit(
            f"{args.from_json} does not contain a metrics snapshot: {error}"
        ) from error

    if args.format == "json":
        rendered = to_json(snapshot)
    elif args.format == "prometheus":
        rendered = to_prometheus_text(snapshot).rstrip("\n")
    else:
        rendered = f"source:     {args.from_json}\n" + render_metrics(snapshot)
    print(rendered)
    if args.output is not None:
        payload_text = (
            to_json(snapshot) if args.format == "human" else rendered + "\n"
        )
        Path(args.output).write_text(payload_text)
        print(f"metrics snapshot written to {args.output}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    if args.from_json is not None:
        if args.workload is not None:
            raise SystemExit(
                "--from-json renders an archived snapshot; combining it "
                "with a workload is ambiguous"
            )
        return _stats_from_json(args)
    from repro.baselines.bounds import utility_upper_bound
    from repro.obs import (
        ConvergenceDiagnostics,
        MemorySink,
        diagnostics_to_dict,
        render_diagnostics,
        render_metrics,
        snapshot_to_dict,
        to_json,
        to_prometheus_text,
    )

    problem = load_problem(args.workload)
    args.snapshots = False  # stats never needs per-iteration state
    telemetry = _telemetry_run(args, problem)
    snapshot = telemetry.registry.snapshot()
    sink = telemetry.sink
    assert isinstance(sink, MemorySink)
    report = ConvergenceDiagnostics(
        utility_bound=utility_upper_bound(problem)
    ).analyze(sink.events)

    if args.format == "json":
        import json as _json

        rendered = _json.dumps(
            {
                "workload": args.workload,
                "description": problem.describe(),
                "engine": args.engine,
                "metrics": snapshot_to_dict(snapshot),
                "diagnostics": diagnostics_to_dict(report),
            },
            indent=2,
            sort_keys=True,
        )
    elif args.format == "prometheus":
        rendered = to_prometheus_text(snapshot).rstrip("\n")
    else:
        rendered = (
            f"workload:   {problem.describe()}\n"
            f"engine:     {args.engine}\n"
            + render_metrics(snapshot)
            + "\n"
            + render_diagnostics(report)
        )
    print(rendered)
    if args.output is not None:
        # json / prometheus files mirror stdout; human runs get the JSON
        # snapshot so there is always a machine-readable artifact.
        if args.format == "human":
            payload = to_json(snapshot)
        else:
            payload = rendered + "\n"
        Path(args.output).write_text(payload)
        print(f"metrics snapshot written to {args.output}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import (
        PhaseProfiler,
        Telemetry,
        register_phase_metrics,
        render_report,
        to_collapsed,
        to_speedscope,
    )

    problem = load_problem(args.workload)
    profiler = PhaseProfiler(track_allocations=args.allocations)
    args.snapshots = False  # profiling never needs per-iteration state
    telemetry = Telemetry(profiler=profiler)
    _telemetry_run(args, problem, telemetry=telemetry)
    report = profiler.report()
    # Phase gauges/counters join the run's registry so any exporter
    # (Prometheus text, JSON snapshot) sees them alongside the timers.
    register_phase_metrics(report, telemetry.registry)

    print(f"workload:   {problem.describe()}")
    print(f"engine:     {args.engine}")
    print(render_report(report))
    if args.flame is not None:
        Path(args.flame).write_text(to_collapsed(report))
        print(f"collapsed stacks written to {args.flame}")
    if args.speedscope is not None:
        Path(args.speedscope).write_text(
            to_speedscope(report, name=f"repro profile {args.workload}")
        )
        print(f"speedscope profile written to {args.speedscope}")
    if args.json is not None:
        import json as _json

        Path(args.json).write_text(
            _json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"profile JSON written to {args.json}")
    return 0


def _parse_kinds(spec: str | None) -> set[str] | None:
    """Validate a comma-separated event-kind filter against EVENT_TYPES."""
    if spec is None:
        return None
    from repro.obs import EVENT_TYPES

    kinds = {part.strip() for part in spec.split(",") if part.strip()}
    unknown = kinds - set(EVENT_TYPES)
    if unknown:
        raise SystemExit(
            f"unknown event kind(s) {', '.join(sorted(unknown))}; "
            f"choose from {', '.join(sorted(EVENT_TYPES))}"
        )
    return kinds


def cmd_trace_run(args: argparse.Namespace) -> int:
    from repro.obs import CsvSink, JsonlSink, MemorySink

    kinds = _parse_kinds(args.events)
    if args.gzip and args.output is None:
        raise SystemExit("--gzip writes binary output; it requires -o FILE")
    if args.gzip and args.format != "jsonl":
        raise SystemExit("--gzip applies to JSONL captures only")

    problem = load_problem(args.workload)
    telemetry = _telemetry_run(args, problem)
    sink = telemetry.sink
    assert isinstance(sink, MemorySink)
    events = [
        event
        for event in sink.events
        if kinds is None or event.kind in kinds
    ]

    if args.gzip:
        import gzip as _gzip

        with _gzip.open(args.output, "wt", encoding="utf-8") as stream:
            out = JsonlSink(stream)
            for event in events:
                out.emit(event)
            out.close()
    else:
        target = args.output if args.output is not None else sys.stdout
        out = JsonlSink(target) if args.format == "jsonl" else CsvSink(target)
        for event in events:
            out.emit(event)
        out.close()
    if args.output is not None:
        print(f"{len(events)} event(s) written to {args.output}")
    return 0


def _event_time(event: object) -> float | None:
    """Simulated time of an event, if it carries one (v2 captures)."""
    at = getattr(event, "at", None)
    if at is not None:
        return float(at)
    stamp = getattr(event, "stamp", None)
    return float(stamp) if stamp is not None else None


def _render_event_line(event: object) -> str:
    """One compact human line per event (the ``trace show`` format)."""
    kind = getattr(event, "kind", "?")
    at = _event_time(event)
    clock = f"{at:10.3f}" if at is not None else " " * 10
    from repro.obs import (
        AgentExchangeEvent,
        AgentRestartedEvent,
        FaultInjectedEvent,
        IterationEvent,
        MessageEvent,
        PriceUpdateEvent,
    )

    if isinstance(event, IterationEvent):
        detail = f"#{event.iteration} utility={event.utility:,.2f}"
    elif isinstance(event, MessageEvent):
        detail = f"{event.sender} -> {event.recipient} {event.payload}"
        if event.latency is not None:
            detail += f" latency={event.latency:.3f}"
        if event.span_id is not None:
            detail += f" span={event.span_id}"
    elif isinstance(event, AgentExchangeEvent):
        detail = f"{event.agent} sent={event.sent}"
        if event.span_id is not None:
            detail += f" span={event.span_id}"
    elif isinstance(event, PriceUpdateEvent):
        detail = (
            f"{event.resource_kind}:{event.resource} "
            f"{event.old_price:.6f} -> {event.new_price:.6f} [{event.branch}]"
        )
    elif isinstance(event, FaultInjectedEvent):
        detail = f"{event.fault} {event.target}"
    elif isinstance(event, AgentRestartedEvent):
        mode = "checkpoint" if event.from_checkpoint else "cold"
        detail = f"{event.agent} down={event.downtime:.2f} ({mode})"
    else:
        flat = {
            key: value
            for key, value in event.flatten().items()  # type: ignore[attr-defined]
            if key not in ("type", "t_ns")
        }
        detail = " ".join(f"{key}={value}" for key, value in flat.items())
    return f"{clock}  {kind:<15} {detail}"


def _is_gzip_file(path: str) -> bool:
    """True when the file starts with the gzip magic bytes."""
    with open(path, "rb") as stream:
        return stream.read(2) == b"\x1f\x8b"


def _follow_lines(path: str, idle_timeout: float) -> "Iterator[str]":
    """Tail a capture file: yield complete lines as they are appended.

    Stops after ``idle_timeout`` seconds with no new data — a capture
    that stopped growing is finished, and the CLI should exit rather
    than hang forever.
    """
    import time as _time

    from repro.obs import open_trace

    poll = 0.1
    with open_trace(path) as stream:
        buffer = ""
        idle = 0.0
        while True:
            chunk = stream.readline()
            if chunk:
                buffer += chunk
                if buffer.endswith("\n"):
                    yield buffer
                    buffer = ""
                idle = 0.0
                continue
            if idle >= idle_timeout:
                if buffer.strip():
                    yield buffer
                return
            _time.sleep(poll)
            idle += poll


def cmd_trace_show(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import event_from_dict, open_trace

    kinds = _parse_kinds(args.type)
    if not Path(args.file).is_file():
        raise SystemExit(f"no such capture: {args.file}")
    if args.follow and _is_gzip_file(args.file):
        raise SystemExit(
            f"cannot --follow gzip capture {args.file}: a gzip stream only "
            "decodes once the writer closes it; capture without --gzip, or "
            "decompress first (gunzip) and tail the plain JSONL"
        )

    def matches(event: object) -> bool:
        if kinds is not None and getattr(event, "kind", None) not in kinds:
            return False
        if args.since is not None:
            at = _event_time(event)
            # --since filters on simulated time; untimed events (v1
            # captures, reference driver) carry none and are dropped.
            if at is None or at < args.since:
                return False
        return True

    if args.follow:
        lines: "Iterator[str]" = _follow_lines(args.file, args.idle_timeout)
    else:
        with open_trace(args.file) as stream:
            lines = iter(stream.readlines())

    shown = 0
    dashboard = _DashboardAggregator() if args.dashboard else None
    for line in lines:
        text = line.strip()
        if not text:
            continue
        event = event_from_dict(_json.loads(text))
        if not matches(event):
            continue
        shown += 1
        if dashboard is not None:
            dashboard.add(event)
            if shown % args.refresh_every == 0:
                _render_dashboard_frame(dashboard)
        else:
            print(_render_event_line(event))
    if dashboard is not None:
        _render_dashboard_frame(dashboard, final=True)
    elif shown == 0:
        print("(no matching events)")
    return 0


#: Recent events the dashboard keeps for context; everything older is
#: already folded into the aggregates and can be dropped.
_DASHBOARD_WINDOW = 1000


class _DashboardAggregator:
    """Bounded-memory state behind ``trace show --dashboard``.

    Every event is folded exactly once into a streaming
    :class:`~repro.obs.ReplayEngine` plus per-kind counters; only a
    rolling window of the most recent events is retained.  Memory stays
    constant however long a ``--follow`` stream runs (the previous
    implementation kept the whole event list and re-folded it per
    frame).
    """

    def __init__(self, window: int = _DASHBOARD_WINDOW) -> None:
        from collections import deque

        from repro.obs import ReplayEngine

        self.engine = ReplayEngine()
        self.total = 0
        self.kind_counts: dict[str, int] = {}
        self.recent: "deque[TraceEvent]" = deque(maxlen=window)

    def add(self, event: "TraceEvent") -> None:
        self.engine.ingest(event)
        self.total += 1
        kind = getattr(event, "kind", "?")
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        self.recent.append(event)


def _render_dashboard_frame(
    dashboard: _DashboardAggregator, final: bool = False
) -> None:
    """One frame of the live summary (clears screen on a real TTY)."""
    from repro.obs import render_state

    state = dashboard.engine.state()
    if sys.stdout.isatty():
        print("\x1b[2J\x1b[H", end="")
    header = "final" if final else "live"
    print(f"--- trace dashboard ({header}, {dashboard.total} event(s)) ---")
    print(render_state(state, total_events=dashboard.total))
    if dashboard.kind_counts:
        counts = ", ".join(
            f"{kind}={dashboard.kind_counts[kind]}"
            for kind in sorted(dashboard.kind_counts)
        )
        print(f"by kind:     {counts}")
    sys.stdout.flush()


def cmd_trace_causal(args: argparse.Namespace) -> int:
    from repro.obs import CausalGraph, read_jsonl, render_causal_report

    if not Path(args.file).is_file():
        raise SystemExit(f"no such capture: {args.file}")
    graph = CausalGraph(read_jsonl(args.file))
    if args.json:
        import json as _json

        print(_json.dumps(graph.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_causal_report(graph, max_hops=args.max_hops))
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.obs import ReplayEngine, ReplayError, read_jsonl, render_state

    if not Path(args.file).is_file():
        raise SystemExit(f"no such capture: {args.file}")
    engine = ReplayEngine(read_jsonl(args.file))
    try:
        state = engine.final() if args.at is None else engine.seek(args.at)
    except ReplayError as error:
        raise SystemExit(str(error)) from error
    if args.json:
        import json as _json

        print(_json.dumps(state.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_state(state, total_events=len(engine)))
    return 0


def cmd_bench_snapshot(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.bench import consolidate

    directory = Path(args.results_dir)
    if not directory.is_dir():
        raise SystemExit(f"no such results directory: {args.results_dir}")
    snapshot = consolidate(directory)
    output = Path(args.output) if args.output else directory / "BENCH_trajectory.json"
    output.write_text(_json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(
        f"trajectory snapshot: {len(snapshot['metrics'])} metric(s) from "
        f"suite(s) {', '.join(snapshot['suites']) or '(none)'} "
        f"written to {output}"
    )
    if snapshot["skipped"]:
        print(f"skipped unparseable: {', '.join(snapshot['skipped'])}")
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.bench import compare_snapshots, render_comparison

    payloads = []
    for path in (args.old, args.new):
        if not Path(path).is_file():
            raise SystemExit(f"no such snapshot: {path}")
        try:
            payloads.append(_json.loads(Path(path).read_text(encoding="utf-8")))
        except ValueError as error:
            raise SystemExit(f"unparseable snapshot {path}: {error}") from error
    try:
        comparison = compare_snapshots(
            payloads[0], payloads[1], threshold=args.threshold
        )
    except ValueError as error:
        raise SystemExit(str(error)) from error
    if args.json:
        print(_json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_comparison(comparison))
    if args.strict and comparison.regressions:
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.events.reliability import RetryPolicy
    from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime
    from repro.runtime.faults import FaultPlan

    problem = load_problem(args.workload)
    checkpoint_interval = None if args.no_checkpoint else args.checkpoint_interval
    plan = FaultPlan.random(
        problem,
        seed=args.seed,
        horizon=args.horizon,
        crash_rate=args.crash_rate,
        mean_downtime=args.mean_downtime,
        cold_probability=args.cold_probability,
        partition_rate=args.partition_rate,
        storm_rate=args.storm_rate,
        warmup=args.warmup,
        checkpoint_interval=checkpoint_interval,
    )
    runtime = AsynchronousRuntime(
        problem,
        AsyncConfig(seed=args.seed),
        fault_plan=plan,
        retry=RetryPolicy(),
    )
    runtime.run_until(args.horizon)
    baseline = AsynchronousRuntime(problem, AsyncConfig(seed=args.seed))
    baseline.run_until(args.horizon)
    utility = runtime.converged_utility()
    reference = baseline.converged_utility()
    retention = utility / reference if reference else float("nan")

    if args.json:
        import json as _json

        payload = {
            "workload": args.workload,
            "horizon": args.horizon,
            "seed": args.seed,
            "plan": {
                "crashes": len(plan.crashes),
                "partitions": len(plan.partitions),
                "storms": len(plan.storms),
                "checkpoint_interval": plan.checkpoint_interval,
            },
            "utility": utility,
            "baseline_utility": reference,
            "retention": retention,
            "counters": {
                "messages_sent": runtime.messages_sent,
                "messages_lost": runtime.messages_lost,
                "messages_stale": runtime.messages_stale,
                "messages_to_down": runtime.messages_to_down,
                "messages_partitioned": runtime.messages_partitioned,
                "retransmissions": runtime.retransmissions,
                "retries_abandoned": runtime.retries_abandoned,
            },
            "recoveries": [
                {
                    "address": record.address,
                    "crashed_at": record.crashed_at,
                    "downtime": record.downtime,
                    "recovery_time": record.recovery_time,
                    "from_checkpoint": record.from_checkpoint,
                }
                for record in runtime.recoveries
            ],
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(f"workload:   {problem.describe()}")
    print(
        f"fault plan: {len(plan.crashes)} crash(es), "
        f"{len(plan.partitions)} partition(s), {len(plan.storms)} storm(s) "
        f"over horizon {args.horizon:g} (seed {args.seed})"
    )
    checkpointing = (
        f"every {plan.checkpoint_interval:g}"
        if plan.checkpoint_interval is not None
        else "disabled (cold restarts)"
    )
    print(f"checkpoints: {checkpointing}")
    print(
        "messages:   "
        f"{runtime.messages_sent} sent, {runtime.messages_lost} lost, "
        f"{runtime.messages_stale} stale-rejected, "
        f"{runtime.messages_to_down} to-down, "
        f"{runtime.messages_partitioned} partitioned, "
        f"{runtime.retransmissions} retransmitted"
    )
    print(f"utility:    {utility:,.2f} ({retention:.2%} of fault-free run)")
    if runtime.recoveries:
        print("recoveries:")
        for record in runtime.recoveries:
            kind = "checkpoint" if record.from_checkpoint else "cold"
            print(
                f"  {record.address}: crashed t={record.crashed_at:.1f}, "
                f"down {record.downtime:.1f}, recovered in "
                f"{record.recovery_time:.1f} ({kind})"
            )
    unresolved = runtime.down_agents
    if unresolved:
        print(f"still down: {', '.join(sorted(unresolved))}")
    return 0


def _parse_fault_plan_value(text: str) -> dict[str, float] | None:
    """One ``--fault-plan`` axis value: ``none`` or ``k=v[,k=v...]``."""
    if text.strip().lower() == "none":
        return None
    plan: dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep or not key.strip():
            raise SystemExit(
                f"malformed fault-plan parameter {part!r} in {text!r}; "
                "expected k=v"
            )
        try:
            plan[key.strip()] = float(value)
        except ValueError:
            raise SystemExit(
                f"fault-plan parameter {key.strip()!r} has non-numeric "
                f"value {value!r}"
            ) from None
    if not plan:
        raise SystemExit(f"empty fault plan {text!r}; use 'none' for fault-free")
    return plan


def _sweep_spec_from_args(args: argparse.Namespace) -> "SweepSpec":
    from repro.sweep import SweepSpec, load_spec

    axis_flags = (
        args.workloads or args.methods or args.engines or args.gammas
        or args.fault_plans or args.iterations or args.seeds
        or args.repeats != 1
    )
    if args.spec is not None:
        if axis_flags:
            raise SystemExit(
                "--spec carries the whole grid; combining it with axis "
                "flags (--workload/--method/...) is ambiguous"
            )
        try:
            return load_spec(args.spec)
        except ValueError as error:
            raise SystemExit(str(error)) from error
    try:
        return SweepSpec(
            workloads=tuple(args.workloads or ["base"]),
            methods=tuple(args.methods or ["lrgp"]),
            engines=tuple(
                None if engine == "none" else engine
                for engine in (args.engines or ["none"])
            ),
            gammas=tuple(args.gammas or ["adaptive"]),
            fault_plans=tuple(
                _parse_fault_plan_value(value)
                for value in (args.fault_plans or ["none"])
            ),
            iterations=tuple(args.iterations or [250]),
            seeds=tuple(args.seeds or [0]),
            repeats=args.repeats,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from error


def _sweep_monitor(
    args: argparse.Namespace, stack: "contextlib.ExitStack"
) -> "Callable[[dict[str, object]], None] | None":
    """Compose the ``--live`` stderr renderer and ``--events`` JSONL
    stream into one monitor callable (``None`` when neither is on)."""
    from repro.sweep import JsonlEventWriter, render_live_event

    sinks: list[Callable[[dict[str, object]], None]] = []
    if args.events is not None:
        stream = stack.enter_context(
            open(args.events, "w", encoding="utf-8")
        )
        sinks.append(JsonlEventWriter(stream))
    if args.live:

        def render(event: dict[str, object]) -> None:
            line = render_live_event(event)
            if line is not None:
                print(line, file=sys.stderr, flush=True)

        sinks.append(render)
    if not sinks:
        return None
    if len(sinks) == 1:
        return sinks[0]

    def fanout(event: dict[str, object]) -> None:
        for sink in sinks:
            sink(event)

    return fanout


def _export_farm_telemetry(args: argparse.Namespace, result: object) -> None:
    """Write the aggregated farm flamegraph/speedscope artifacts."""
    from repro.obs import to_collapsed, to_speedscope
    from repro.sweep import aggregate_sweep_telemetry

    farm = aggregate_sweep_telemetry(result)  # type: ignore[arg-type]
    if farm.empty:
        raise SystemExit(
            "--flame/--speedscope need per-cell telemetry and no cell "
            "carries any; run with --capture (cached entries written by "
            "a captured run keep their telemetry)"
        )
    if farm.cells_with_telemetry < farm.cells_total:
        print(
            f"note: {farm.cells_with_telemetry}/{farm.cells_total} cell(s) "
            "carry telemetry; the farm aggregate covers those only"
        )
    if args.flame is not None:
        Path(args.flame).write_text(to_collapsed(farm.phases))
        print(f"farm collapsed stacks written to {args.flame}")
    if args.speedscope is not None:
        Path(args.speedscope).write_text(
            to_speedscope(farm.phases, name="repro sweep farm")
        )
        print(f"farm speedscope profile written to {args.speedscope}")


def cmd_sweep_run(args: argparse.Namespace) -> int:
    from repro.canonical import canonical_json
    from repro.sweep import (
        ResultCache,
        bench_payload,
        plan_sweep,
        render_sweep_plan,
        render_sweep_report,
        run_sweep,
        sweep_to_csv,
        sweep_to_json,
    )

    spec = _sweep_spec_from_args(args)
    try:
        cells = spec.expand()
    except KeyError as error:
        raise SystemExit(str(error.args[0])) from error
    except ValueError as error:
        raise SystemExit(str(error)) from error
    cache = ResultCache(args.cache_dir)
    if args.dry_run:
        print(render_sweep_plan(plan_sweep(cells, cache, force=args.force)))
        return 0
    with contextlib.ExitStack() as stack:
        monitor = _sweep_monitor(args, stack)
        try:
            result = run_sweep(
                cells,
                jobs=args.jobs,
                cache=cache,
                force=args.force,
                capture=args.capture,
                monitor=monitor,
                ledger=args.ledger,
            )
        except ValueError as error:
            raise SystemExit(str(error)) from error
    print(render_sweep_report(result))
    if args.events is not None:
        print(f"event stream written to {args.events}")
    if args.csv is not None:
        Path(args.csv).write_text(sweep_to_csv(result), encoding="utf-8")
        print(f"CSV written to {args.csv}")
    if args.json is not None:
        Path(args.json).write_text(
            canonical_json(sweep_to_json(result)) + "\n", encoding="utf-8"
        )
        print(f"JSON written to {args.json}")
    if args.bench is not None:
        import json as _json

        Path(args.bench).write_text(
            _json.dumps(bench_payload(result), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"bench payload written to {args.bench}")
    if args.flame is not None or args.speedscope is not None:
        _export_farm_telemetry(args, result)
    # --keep-going semantics are built in (failed cells never abort the
    # grid); the exit code still reports that something failed.
    return 1 if result.failed else 0


def cmd_sweep_ledger(args: argparse.Namespace) -> int:
    from repro.sweep import ResultCache, RunLedger, render_ledger

    cache = ResultCache(args.cache_dir)
    ledger = RunLedger(cache.root)
    records = ledger.records()
    if args.json:
        import json as _json

        shown = records if args.limit is None else records[-args.limit:]
        print(_json.dumps(shown, indent=2, sort_keys=True))
    else:
        print(f"ledger: {ledger.path}")
        print(render_ledger(records, limit=args.limit))
    if ledger.corrupt_lines:
        print(
            f"({ledger.corrupt_lines} corrupt line(s) skipped)",
            file=sys.stderr,
        )
    return 0


def _resolve_flame_cell(
    cache: "ResultCache", selector: str
) -> "ProfileReport":
    """Find the one cached cell matching ``selector`` (label or key
    prefix) and return its shipped phase tree."""
    import json as _json

    from repro.obs import report_from_dict
    from repro.sweep import RunConfig

    matches: list[tuple[str, str, dict]] = []
    for path in cache.entry_paths():
        try:
            entry = _json.loads(path.read_text(encoding="utf-8"))
            label = RunConfig.from_dict(entry["config"]).label()
        except (OSError, ValueError, KeyError, TypeError):
            continue
        key = entry.get("key", path.stem)
        if label == selector or key.startswith(selector):
            matches.append((label, key, entry.get("payload", {})))
    if not matches:
        raise SystemExit(
            f"no cached cell matches {selector!r} (label or key prefix); "
            "see repro sweep show"
        )
    if len(matches) > 1:
        listed = ", ".join(f"{label} ({key[:12]})" for label, key, _ in matches)
        raise SystemExit(
            f"{selector!r} is ambiguous: matches {listed}; use a longer "
            "key prefix"
        )
    label, key, payload = matches[0]
    telemetry = payload.get("telemetry")
    if not isinstance(telemetry, dict) or "phases" not in telemetry:
        raise SystemExit(
            f"cell {label} ({key[:12]}) has no telemetry; re-run the "
            "sweep with --capture --force to record its phase tree"
        )
    return report_from_dict(telemetry["phases"])


def cmd_sweep_diff_flame(args: argparse.Namespace) -> int:
    from repro.obs import to_collapsed_diff
    from repro.sweep import ResultCache

    cache = ResultCache(args.cache_dir)
    base = _resolve_flame_cell(cache, args.base)
    other = _resolve_flame_cell(cache, args.other)
    diff = to_collapsed_diff(base, other)
    if args.output is not None:
        Path(args.output).write_text(diff)
        print(f"differential folded stacks written to {args.output}")
    else:
        print(diff, end="")
    return 0


def cmd_sweep_show(args: argparse.Namespace) -> int:
    import json as _json

    from repro.sweep import ResultCache, RunConfig

    cache = ResultCache(args.cache_dir)
    paths = list(cache.entry_paths())
    print(f"cache: {cache.root} ({len(paths)} entr{'y' if len(paths) == 1 else 'ies'})")
    for path in paths:
        try:
            entry = _json.loads(path.read_text(encoding="utf-8"))
            label = RunConfig.from_dict(entry["config"]).label()
        except (OSError, ValueError, KeyError, TypeError):
            label = "<corrupt entry>"
        print(f"  {path.stem[:12]}  {label}")
    return 0


def cmd_sweep_clean(args: argparse.Namespace) -> int:
    from repro.sweep import ResultCache

    cache = ResultCache(args.cache_dir)
    removed = cache.clean()
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} from {cache.root}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the analyzer is pure stdlib but irrelevant to the
    # optimization commands, and keeping it out of module import keeps
    # `python -m repro optimize` startup unchanged.
    from repro.analysis import (
        Severity,
        analyze_paths,
        apply_baseline,
        load_baseline,
        render_human,
        render_json,
        rules_for,
        write_baseline,
    )
    from repro.analysis.baseline import stale_entries
    from repro.analysis.fixes import apply_fixes, fixable
    from repro.analysis.sarif import render_sarif

    if args.list_rules:
        for rule in rules_for(None):
            print(f"{rule.rule_id}  {rule.severity}  {rule.title}")
        return 0

    if args.rules:
        requested = [part.strip().upper() for part in args.rules.split(",") if part.strip()]
        if not requested:
            raise SystemExit(f"--rules got no rule ids: {args.rules!r}")
    else:
        requested = None
    try:
        rules = rules_for(requested)
    except KeyError as error:
        raise SystemExit(str(error.args[0])) from error

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        raise SystemExit(f"no such file or directory: {', '.join(missing)}")
    findings = analyze_paths(paths, rules, project=args.project)

    if args.fix:
        applied = apply_fixes(findings)
        total = sum(applied.values())
        for path, count in sorted(applied.items()):
            print(f"fixed {count} finding(s) in {path}")
        print(f"{total} finding(s) auto-fixed; re-running analysis")
        findings = analyze_paths(paths, rules, project=args.project)

    if args.write_baseline is not None:
        count = write_baseline(findings, Path(args.write_baseline))
        print(f"baseline with {count} finding(s) written to {args.write_baseline}")
        return 0
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            raise SystemExit(f"baseline file not found: {args.baseline}")
        baseline = load_baseline(baseline_path)
        stale = stale_entries(findings, baseline)
        if stale:
            print(
                f"note: {sum(stale.values())} stale baseline entr"
                f"{'y' if sum(stale.values()) == 1 else 'ies'} in "
                f"{args.baseline} (violations since fixed); prune with "
                "repro.analysis.baseline.prune_baseline",
                file=sys.stderr,
            )
        findings = apply_baseline(findings, baseline)

    if args.sarif is not None:
        Path(args.sarif).write_text(
            render_sarif(findings, rules) + "\n", encoding="utf-8"
        )

    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings, rules))
    else:
        print(render_human(findings))

    if args.fix_dry_run:
        outstanding = fixable(findings)
        if outstanding:
            print(
                f"{len(outstanding)} finding(s) are mechanically fixable; "
                "run `repro lint --fix`",
                file=sys.stderr,
            )
            return 1
    if args.strict:
        return 1 if findings else 0
    return 1 if any(f.severity is Severity.ERROR for f in findings) else 0


def _add_workload_arg(parser: argparse.ArgumentParser) -> None:
    """The one workload convention: positional spec (historical) or the
    ``--workload NAME[:k=v,...]`` flag — both reach the registry."""
    parser.add_argument(
        "workload", nargs="?", default=None,
        help="workload spec NAME[:k=v,...] or problem JSON path",
    )
    parser.add_argument(
        "--workload", dest="workload_opt", default=None,
        metavar="NAME[:k=v,...]",
        help="workload spec (flag form of the positional argument)",
    )


def _resolve_workload(args: argparse.Namespace) -> None:
    """Merge the positional and ``--workload`` spellings into
    ``args.workload``; exactly one must be given."""
    if args.workload_opt is not None:
        if args.workload is not None and args.workload != args.workload_opt:
            raise SystemExit(
                f"workload given twice: positionally ({args.workload!r}) "
                f"and via --workload ({args.workload_opt!r}); pick one"
            )
        args.workload = args.workload_opt
    if args.workload is None and getattr(args, "from_json", None) is None:
        raise SystemExit(
            "a workload is required: pass it positionally or via "
            "--workload NAME[:k=v,...]"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LRGP: utility optimization for event-driven "
        "distributed infrastructures (ICDCS 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    optimize = sub.add_parser("optimize", help="run an optimizer on a workload")
    _add_workload_arg(optimize)
    optimize.add_argument("--iterations", type=int, default=250)
    optimize.add_argument(
        "--method", choices=available_methods(), default="lrgp",
        help="optimizer family (default: lrgp); see repro.solve",
    )
    optimize.add_argument(
        "--engine", choices=available_engines(), default=None,
        help="LRGP iteration engine (lrgp/two_stage methods only; "
        "default: reference)",
    )
    optimize.add_argument(
        "--json", action="store_true",
        help="print the SolveResult as JSON instead of the summary",
    )
    optimize.add_argument(
        "--gamma", type=float, default=None,
        help="fixed node-price step size (default: adaptive)",
    )
    optimize.add_argument("--link-gamma", type=float, default=1e-4)
    optimize.add_argument("-o", "--output", help="write allocation JSON here")
    optimize.add_argument("--trace", help="write per-iteration CSV trace here")
    optimize.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list classes with zero admissions",
    )
    optimize.add_argument(
        "--multirate", action="store_true",
        help="alias for --method multirate (per-node flow thinning)",
    )
    optimize.set_defaults(func=cmd_optimize)

    workload = sub.add_parser(
        "workload", help="materialize a registered workload as problem JSON"
    )
    workload.add_argument(
        "name", nargs="?", default=None,
        help="workload spec NAME[:k=v,...] (see --list)",
    )
    workload.add_argument(
        "--list", action="store_true", dest="list_workloads",
        help="list registered workloads and aliases, then exit",
    )
    workload.add_argument("-o", "--output", help="write problem JSON here")
    workload.set_defaults(func=cmd_workload)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", choices=["1", "2", "3", "4"])
    figure.add_argument("--every", type=int, default=10,
                        help="row sampling stride for the data dump")
    figure.set_defaults(func=cmd_figure)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", choices=["1", "2", "3"])
    table.add_argument("--sa-steps", type=int, default=200_000,
                       help="simulated-annealing step budget per run")
    table.set_defaults(func=cmd_table)

    extension = sub.add_parser("extension", help="run an extension experiment")
    extension.add_argument(
        "name", choices=["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"]
    )
    extension.set_defaults(func=cmd_extension)

    stats = sub.add_parser(
        "stats",
        help="run a workload with telemetry; print metrics + diagnostics",
    )
    _add_workload_arg(stats)
    stats.add_argument("--iterations", type=int, default=250,
                       help="iterations (reference/sync) or time units (async)")
    stats.add_argument(
        "--engine", choices=["reference", "sync", "async"], default="reference",
        help="which engine to instrument (default: reference driver)",
    )
    stats.add_argument(
        "--format", choices=["human", "prometheus", "json"], default="human",
        help="snapshot format (default: human)",
    )
    stats.add_argument(
        "-o", "--output", metavar="FILE",
        help="also write the metrics snapshot here "
        "(Prometheus text, or JSON with --format json)",
    )
    stats.add_argument(
        "--from-json", metavar="FILE", default=None,
        help="render an archived metrics snapshot (stats --format json "
        "output, or any dict with a 'metrics' section) instead of "
        "running a workload",
    )
    stats.set_defaults(func=cmd_stats)

    profile = sub.add_parser(
        "profile",
        help="run a workload under the phase profiler; print the phase "
        "tree and export flamegraph / speedscope artifacts",
    )
    _add_workload_arg(profile)
    profile.add_argument(
        "--iterations", type=int, default=250,
        help="iterations (reference/vectorized/sync) or time units (async)",
    )
    profile.add_argument(
        "--engine",
        choices=["reference", "vectorized", "sync", "async"],
        default="reference",
        help="which engine to profile (default: reference driver)",
    )
    profile.add_argument(
        "--flame", metavar="FILE", default=None,
        help="write collapsed stacks here (flamegraph.pl / speedscope "
        "compatible, one 'a;b;c self_wall_ns' line per phase)",
    )
    profile.add_argument(
        "--speedscope", metavar="FILE", default=None,
        help="write a speedscope JSON profile here (open at "
        "https://www.speedscope.app)",
    )
    profile.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the aggregated phase report as JSON here",
    )
    profile.add_argument(
        "--allocations", action="store_true",
        help="also record per-phase allocation growth via tracemalloc "
        "(slows the run; wall/CPU splits stay exact)",
    )
    profile.set_defaults(func=cmd_profile)

    trace = sub.add_parser(
        "trace",
        help="capture, inspect and causally analyze event streams",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_run = trace_sub.add_parser(
        "run", help="capture the structured event stream of a run"
    )
    _add_workload_arg(trace_run)
    trace_run.add_argument(
        "--iterations", type=int, default=100,
        help="iterations (reference/sync) or time units (async)",
    )
    trace_run.add_argument(
        "--engine", choices=["reference", "sync", "async"], default="reference",
        help="which engine to instrument (default: reference driver)",
    )
    trace_run.add_argument(
        "--format", choices=["jsonl", "csv"], default="jsonl",
        help="jsonl is lossless; csv flattens to columns (default: jsonl)",
    )
    trace_run.add_argument(
        "--events", metavar="KINDS", default=None,
        help="comma-separated event kinds to keep (default: all)",
    )
    trace_run.add_argument(
        "--snapshots", action="store_true",
        help="include full per-iteration state in iteration events "
        "(reference engine only)",
    )
    trace_run.add_argument(
        "--gzip", action="store_true",
        help="gzip-compress the JSONL capture (requires -o; readers "
        "detect compression by content, any filename works)",
    )
    trace_run.add_argument("-o", "--output", metavar="FILE",
                           help="write here instead of stdout")
    trace_run.set_defaults(func=cmd_trace_run)

    trace_show = trace_sub.add_parser(
        "show", help="pretty-print a JSONL capture (plain or gzipped)"
    )
    trace_show.add_argument("file", help="JSONL capture path")
    trace_show.add_argument(
        "--type", metavar="KINDS", default=None,
        help="comma-separated event kinds to show (default: all)",
    )
    trace_show.add_argument(
        "--since", type=float, default=None, metavar="T",
        help="only events with simulated time >= T (untimed events are "
        "dropped when set)",
    )
    trace_show.add_argument(
        "--follow", action="store_true",
        help="keep tailing the file as it grows (exits after "
        "--idle-timeout seconds without new events)",
    )
    trace_show.add_argument(
        "--idle-timeout", type=float, default=2.0, metavar="SECONDS",
        help="--follow exit condition (default: 2.0)",
    )
    trace_show.add_argument(
        "--dashboard", action="store_true",
        help="live-updating replay summary instead of per-event lines",
    )
    trace_show.add_argument(
        "--refresh-every", type=int, default=200, metavar="N",
        help="dashboard refresh interval in events (default: 200)",
    )
    trace_show.set_defaults(func=cmd_trace_show)

    trace_causal = trace_sub.add_parser(
        "causal",
        help="causal graph of a capture: critical path + blame attribution",
    )
    trace_causal.add_argument("file", help="JSONL capture path")
    trace_causal.add_argument(
        "--json", action="store_true",
        help="print the machine-readable causal report",
    )
    trace_causal.add_argument(
        "--max-hops", type=int, default=20, metavar="N",
        help="critical-path hops to print (default: last 20)",
    )
    trace_causal.set_defaults(func=cmd_trace_causal)

    replay = sub.add_parser(
        "replay",
        help="re-materialize the deployed state at any event index "
        "of a capture",
    )
    replay.add_argument("file", help="JSONL capture path (plain or gzipped)")
    replay.add_argument(
        "--at", type=int, default=None, metavar="INDEX",
        help="stop after the first INDEX events (negative counts from "
        "the end; default: apply the whole capture)",
    )
    replay.add_argument(
        "--json", action="store_true",
        help="print the state as JSON",
    )
    replay.set_defaults(func=cmd_replay)

    bench = sub.add_parser(
        "bench", help="benchmark trajectory snapshots and regression diffs"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_snapshot = bench_sub.add_parser(
        "snapshot",
        help="consolidate BENCH_*.json artifacts into one trajectory "
        "snapshot",
    )
    bench_snapshot.add_argument(
        "--results-dir", default="benchmarks/results", metavar="DIR",
        help="directory holding BENCH_*.json (default: benchmarks/results)",
    )
    bench_snapshot.add_argument(
        "-o", "--output", metavar="FILE", default=None,
        help="snapshot path (default: DIR/BENCH_trajectory.json)",
    )
    bench_snapshot.set_defaults(func=cmd_bench_snapshot)

    bench_compare = bench_sub.add_parser(
        "compare", help="diff two snapshots, flagging metric regressions"
    )
    bench_compare.add_argument("old", help="baseline snapshot JSON")
    bench_compare.add_argument("new", help="candidate snapshot JSON")
    bench_compare.add_argument(
        "--threshold", type=float, default=0.10, metavar="FRACTION",
        help="relative movement flagged as a change (default: 0.10)",
    )
    bench_compare.add_argument(
        "--json", action="store_true", help="machine-readable diff"
    )
    bench_compare.add_argument(
        "--strict", action="store_true",
        help="exit 1 when any regression is flagged (CI runs without "
        "this: the watchdog reports, humans decide)",
    )
    bench_compare.set_defaults(func=cmd_bench_compare)

    chaos = sub.add_parser(
        "chaos",
        help="run the async deployment under a seeded fault plan",
    )
    _add_workload_arg(chaos)
    chaos.add_argument("--horizon", type=float, default=400.0,
                       help="simulated time to run (default: 400)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed for both the fault plan and the runtime")
    chaos.add_argument("--crash-rate", type=float, default=0.02,
                       help="expected agent crashes per time unit")
    chaos.add_argument("--mean-downtime", type=float, default=5.0,
                       help="mean downtime before restart")
    chaos.add_argument("--cold-probability", type=float, default=0.0,
                       help="fraction of restarts forced cold (no checkpoint)")
    chaos.add_argument("--partition-rate", type=float, default=0.0,
                       help="expected partitions per time unit")
    chaos.add_argument("--storm-rate", type=float, default=0.0,
                       help="expected delay storms per time unit")
    chaos.add_argument("--warmup", type=float, default=60.0,
                       help="fault-free convergence window before injection")
    chaos.add_argument("--checkpoint-interval", type=float, default=5.0,
                       help="agent checkpoint period (default: 5)")
    chaos.add_argument("--no-checkpoint", action="store_true",
                       help="disable checkpointing; every restart is cold")
    chaos.add_argument("--json", action="store_true",
                       help="print a machine-readable report")
    chaos.set_defaults(func=cmd_chaos)

    sweep = sub.add_parser(
        "sweep",
        help="declarative experiment grids over a parallel, cached farm",
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    sweep_run = sweep_sub.add_parser(
        "run", help="expand a grid and execute it, cache-first"
    )
    sweep_run.add_argument(
        "--spec", metavar="FILE", default=None,
        help="JSON SweepSpec file (replaces the axis flags)",
    )
    sweep_run.add_argument(
        "--workload", dest="workloads", action="append",
        metavar="NAME[:k=v,...]",
        help="workload axis value (repeatable; default: base)",
    )
    sweep_run.add_argument(
        "--method", dest="methods", action="append",
        choices=available_methods(),
        help="method axis value (repeatable; default: lrgp)",
    )
    sweep_run.add_argument(
        "--engine", dest="engines", action="append",
        choices=[*available_engines(), "none"],
        help="engine axis value; 'none' = method default (repeatable)",
    )
    sweep_run.add_argument(
        "--gamma", dest="gammas", action="append", metavar="POLICY",
        help="gamma-policy axis value: adaptive | fixed:<step> (repeatable)",
    )
    sweep_run.add_argument(
        "--fault-plan", dest="fault_plans", action="append",
        metavar="k=v[,k=v...]",
        help="fault-plan axis value; 'none' = fault-free (repeatable)",
    )
    sweep_run.add_argument(
        "--iterations", dest="iterations", action="append", type=int,
        metavar="N",
        help="iteration-budget axis value (repeatable; default: 250)",
    )
    sweep_run.add_argument(
        "--seed", dest="seeds", action="append", type=int, metavar="S",
        help="seed axis value (repeatable; default: 0)",
    )
    sweep_run.add_argument(
        "--repeats", type=int, default=1, metavar="K",
        help="replicate every cell K times (distinct cache entries)",
    )
    sweep_run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for cache misses (1 = run inline)",
    )
    sweep_run.add_argument(
        "--dry-run", action="store_true",
        help="print the grid and its cache hit/miss plan; execute nothing",
    )
    sweep_run.add_argument(
        "--force", action="store_true",
        help="re-execute cached cells, overwriting their entries",
    )
    sweep_run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/sweep)",
    )
    sweep_run.add_argument(
        "--csv", metavar="FILE", default=None,
        help="write the per-cell CSV table here",
    )
    sweep_run.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the full sweep JSON export here (canonical JSON)",
    )
    sweep_run.add_argument(
        "--bench", metavar="FILE", default=None,
        help="write the BENCH_sweep payload here (for repro bench snapshot)",
    )
    sweep_run.add_argument(
        "--capture", action="store_true",
        help="run executed cells under a telemetry bundle and ship "
        "metrics/phases/diagnostics back with each result",
    )
    sweep_run.add_argument(
        "--live", action="store_true",
        help="print live per-cell progress (done/total, ETA, stragglers) "
        "to stderr as cells finish",
    )
    sweep_run.add_argument(
        "--events", metavar="FILE", default=None,
        help="write the live progress event stream here as JSONL",
    )
    sweep_run.add_argument(
        "--flame", metavar="FILE", default=None,
        help="write the farm-wide merged collapsed-stack flamegraph here "
        "(needs --capture, or cached telemetry)",
    )
    sweep_run.add_argument(
        "--speedscope", metavar="FILE", default=None,
        help="write the farm-wide merged speedscope profile here "
        "(needs --capture, or cached telemetry)",
    )
    sweep_run.add_argument(
        "--no-ledger", dest="ledger", action="store_false", default=True,
        help="do not append this invocation to the run ledger",
    )
    sweep_run.set_defaults(func=cmd_sweep_run)

    sweep_show = sweep_sub.add_parser(
        "show", help="list cached sweep entries"
    )
    sweep_show.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/sweep)",
    )
    sweep_show.set_defaults(func=cmd_sweep_show)

    sweep_clean = sweep_sub.add_parser(
        "clean", help="delete every cached sweep entry"
    )
    sweep_clean.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/sweep)",
    )
    sweep_clean.set_defaults(func=cmd_sweep_clean)

    sweep_ledger = sweep_sub.add_parser(
        "ledger", help="show the append-only run ledger for a cache root"
    )
    sweep_ledger.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/sweep)",
    )
    sweep_ledger.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="show only the newest N runs",
    )
    sweep_ledger.add_argument(
        "--json", action="store_true",
        help="print the raw ledger records as a JSON array",
    )
    sweep_ledger.set_defaults(func=cmd_sweep_ledger)

    sweep_diff = sweep_sub.add_parser(
        "diff-flame",
        help="differential collapsed-stack flamegraph between two cached "
        "cells' phase trees (flamegraph.pl --diff format)",
    )
    sweep_diff.add_argument(
        "base", metavar="CELL",
        help="baseline cell: a cell label or cache-key prefix",
    )
    sweep_diff.add_argument(
        "other", metavar="CELL",
        help="comparison cell: a cell label or cache-key prefix",
    )
    sweep_diff.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/sweep)",
    )
    sweep_diff.add_argument(
        "-o", "--output", metavar="FILE", default=None,
        help="write the two-column folded output here (default: stdout)",
    )
    sweep_diff.set_defaults(func=cmd_sweep_diff_flame)

    lint = sub.add_parser(
        "lint", help="run the domain-aware static analyzer (docs/analysis.md)"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: src/ if present)",
    )
    lint.add_argument(
        "--format", choices=["human", "json", "sarif"], default="human",
        help="report format (default: human)",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on any finding, warnings included",
    )
    lint.add_argument(
        "--project", dest="project", action="store_true", default=True,
        help="whole-project analysis: call graph + interprocedural rules "
        "R9-R11 (default: on)",
    )
    lint.add_argument(
        "--no-project", dest="project", action="store_false",
        help="per-file analysis only (pre-PR-6 behaviour)",
    )
    lint.add_argument(
        "--sarif", default=None, metavar="FILE",
        help="additionally write a SARIF 2.1.0 report to FILE "
        "(for GitHub code-scanning upload)",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="apply mechanical fixes (e.g. R11 sorted() wraps), then "
        "re-analyze",
    )
    lint.add_argument(
        "--fix-dry-run", action="store_true",
        help="exit non-zero if mechanically fixable findings are present "
        "(CI gate; applies nothing)",
    )
    lint.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="subtract a findings snapshot; only new findings are reported",
    )
    lint.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="snapshot current findings to FILE and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    lint.set_defaults(func=cmd_lint)

    return parser


#: ``trace`` grew subcommands in PR 5; the bare historical form
#: ``repro trace <workload> ...`` still works via this shim.
_TRACE_SUBCOMMANDS = frozenset({"run", "show", "causal"})


def _normalize_argv(argv: list[str]) -> list[str]:
    """Insert the implied ``run`` into pre-PR-5 ``trace`` invocations."""
    if (
        len(argv) >= 2
        and argv[0] == "trace"
        and argv[1] not in _TRACE_SUBCOMMANDS
        and not argv[1].startswith("-")
    ):
        return [argv[0], "run", *argv[1:]]
    return argv


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    args = build_parser().parse_args(_normalize_argv(list(argv)))
    if hasattr(args, "workload_opt"):
        _resolve_workload(args)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
