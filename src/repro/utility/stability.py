"""Shared constants for the paper's stability criterion (section 4.3).

Convergence is declared when the peak-to-peak amplitude of the utility
over a trailing window drops below 0.1% of the window mean.  Both the
optimizer-side detector (:mod:`repro.core.convergence`) and the
event-stream diagnostics (:mod:`repro.obs.diagnostics`) implement that
rule; they must agree on its parameters, so the numbers live here — in
:mod:`repro.utility`, the one layer both are allowed to import (the obs
layer deliberately never imports ``repro.core``).
"""

from __future__ import annotations

#: Trailing-window length (iterations) for the amplitude test.
CONVERGENCE_WINDOW = 10

#: The paper's 0.1% relative-amplitude threshold.
CONVERGENCE_REL_AMPLITUDE = 1e-3
