"""Utility-function library: strictly concave class utilities (section 2.2).

Public surface:

* :class:`UtilityFunction` — the protocol every class utility implements.
* :class:`LogUtility`, :class:`PowerUtility`, :class:`ScaledUtility`,
  :class:`ExponentialSaturationUtility` — concrete shapes.
* :func:`rank_log`, :func:`rank_power`, :data:`UTILITY_SHAPES` — the paper's
  ``rank_j * f(r)`` families (section 4).
* :func:`solve_rate` — the single-flow Lagrangian maximizer used by
  Algorithm 1.
"""

from repro.utility.base import UtilityFunction, validate_rate, validate_slope
from repro.utility.calculus import (
    numeric_derivative,
    solve_rate,
    weighted_derivative,
    weighted_value,
)
from repro.utility.functions import (
    UTILITY_SHAPES,
    ExponentialSaturationUtility,
    LogUtility,
    PowerUtility,
    ScaledUtility,
    rank_log,
    rank_power,
)

__all__ = [
    "UTILITY_SHAPES",
    "ExponentialSaturationUtility",
    "LogUtility",
    "PowerUtility",
    "ScaledUtility",
    "UtilityFunction",
    "numeric_derivative",
    "rank_log",
    "rank_power",
    "solve_rate",
    "validate_rate",
    "validate_slope",
    "weighted_derivative",
    "weighted_value",
]
