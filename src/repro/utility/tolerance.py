"""Float comparison helpers (the tolerance discipline behind lint rule R2).

Rates, prices and utilities are fixed-point iterates; comparing them with
a naked ``==`` either hides an "exactly clamped" assumption or is a bug.
These helpers centralize the raw comparisons so intent is explicit at the
call site and the tolerances live in one place:

* :func:`is_zero` — sentinel test for quantities that are *projected to
  exactly 0.0* by ``max(x, 0.0)`` clamps (node/link prices, eq. 12-13) or
  initialized to literal zero.  The default tolerance is therefore exact.
* :func:`close_enough` — approximate equality for quantities that are
  *computed* (utilities, rates, capacities read back from configs).

This module is the single place allowed to spell the raw comparisons.
"""

from __future__ import annotations

import math

#: Absolute slack used by :func:`close_enough` so magnitudes near zero
#: still compare equal (plain ``math.isclose`` has ``abs_tol=0``).
ABS_TOL = 1e-12

#: Maximum per-iteration relative utility deviation an alternative LRGP
#: engine may show against the reference trajectory
#: (``tests/core/test_engines.py``).  The vectorized engine reorders some
#: floating-point reductions (matrix products, dot-product objective), so
#: bit equality is not guaranteed — but measured deviations are ~1e-15,
#: leaving six orders of magnitude of headroom under this bound.
ENGINE_EQUIVALENCE_RTOL = 1e-9


def is_zero(value: float, tol: float = 0.0) -> bool:
    """True when ``value`` is within ``tol`` of zero.

    With the default ``tol=0.0`` this is an *exact* sentinel test: prices
    are projected onto the non-negative orthant with ``max(x, 0.0)``, so
    "this resource is unconstrained" is represented by exactly ``0.0``.
    NaN is never zero.
    """
    if tol < 0.0:
        raise ValueError(f"tol must be non-negative, got {tol}")
    return abs(value) <= tol


def close_enough(
    a: float, b: float, rel_tol: float = 1e-9, abs_tol: float = ABS_TOL
) -> bool:
    """Approximate float equality with a non-zero absolute floor."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
