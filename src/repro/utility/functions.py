"""Concrete utility functions used throughout the paper.

The evaluation (section 4) builds every class utility as ``rank_j * f(r)``
with ``f`` drawn from ``log(1 + r)`` and ``r**k`` for ``k`` in
``{0.25, 0.5, 0.75}``.  This module provides those families plus a generic
affine rescaling wrapper, all hashable and immutable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utility.base import UtilityFunction, validate_rate, validate_slope
from repro.utility.tolerance import is_zero


@dataclass(frozen=True)
class LogUtility(UtilityFunction):
    """``U(r) = scale * log(offset + r)``.

    With the defaults this is the paper's ``log(1 + r)``; ``scale`` carries
    the class rank.  Strictly concave and increasing for ``scale > 0`` and
    ``offset > 0``.
    """

    scale: float = 1.0
    offset: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.offset <= 0.0:
            raise ValueError(f"offset must be positive, got {self.offset}")

    def value(self, rate: float) -> float:
        validate_rate(rate)
        return self.scale * math.log(self.offset + rate)

    def derivative(self, rate: float) -> float:
        validate_rate(rate)
        return self.scale / (self.offset + rate)

    def inverse_derivative(self, slope: float) -> float:
        validate_slope(slope)
        return self.scale / slope - self.offset


@dataclass(frozen=True)
class PowerUtility(UtilityFunction):
    """``U(r) = scale * r ** exponent`` with ``0 < exponent < 1``.

    The paper's ``rank_j * r**k`` family; the exponent controls elasticity
    (section 4.5: convergence slows as the exponent approaches 1).
    """

    scale: float = 1.0
    exponent: float = 0.5

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if not 0.0 < self.exponent < 1.0:
            raise ValueError(
                f"exponent must lie strictly in (0, 1) for strict concavity, "
                f"got {self.exponent}"
            )

    def value(self, rate: float) -> float:
        validate_rate(rate)
        return self.scale * rate**self.exponent

    def derivative(self, rate: float) -> float:
        validate_rate(rate)
        if is_zero(rate):
            return math.inf
        return self.scale * self.exponent * rate ** (self.exponent - 1.0)

    def inverse_derivative(self, slope: float) -> float:
        validate_slope(slope)
        # scale * k * r**(k-1) = slope  =>  r = (slope / (scale*k)) ** (1/(k-1))
        return (slope / (self.scale * self.exponent)) ** (1.0 / (self.exponent - 1.0))


@dataclass(frozen=True)
class ScaledUtility(UtilityFunction):
    """``U(r) = factor * base(r)`` for an arbitrary base utility.

    Used to apply a class rank to a shared shape function without
    re-deriving closed forms: scaling preserves strict concavity and the
    inverse derivative is ``base.inverse_derivative(slope / factor)``.
    """

    base: UtilityFunction
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.factor <= 0.0:
            raise ValueError(f"factor must be positive, got {self.factor}")

    def value(self, rate: float) -> float:
        return self.factor * self.base.value(rate)

    def derivative(self, rate: float) -> float:
        return self.factor * self.base.derivative(rate)

    def inverse_derivative(self, slope: float) -> float:
        validate_slope(slope)
        return self.base.inverse_derivative(slope / self.factor)


@dataclass(frozen=True)
class ExponentialSaturationUtility(UtilityFunction):
    """``U(r) = scale * (1 - exp(-r / knee))``.

    Not used by the paper's evaluation but a common shape for near-inelastic
    consumers (utility saturates past the knee); exercised by the trade-data
    example's gold consumers and by property tests of the generic rate
    solver, since its inverse derivative is closed-form too.
    """

    scale: float = 1.0
    knee: float = 100.0

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.knee <= 0.0:
            raise ValueError(f"knee must be positive, got {self.knee}")

    def value(self, rate: float) -> float:
        validate_rate(rate)
        return self.scale * (1.0 - math.exp(-rate / self.knee))

    def derivative(self, rate: float) -> float:
        validate_rate(rate)
        return (self.scale / self.knee) * math.exp(-rate / self.knee)

    def inverse_derivative(self, slope: float) -> float:
        validate_slope(slope)
        max_slope = self.scale / self.knee
        if slope >= max_slope:
            return 0.0
        return -self.knee * math.log(slope * self.knee / self.scale)


def rank_log(rank: float, offset: float = 1.0) -> LogUtility:
    """The paper's ``rank * log(1 + r)`` class utility."""
    return LogUtility(scale=rank, offset=offset)


def rank_power(rank: float, exponent: float) -> PowerUtility:
    """The paper's ``rank * r**k`` class utility (section 4.5)."""
    return PowerUtility(scale=rank, exponent=exponent)


#: Shape names accepted by the workload builders, mapping to factories that
#: take a rank and return a utility.  Mirrors Table 3's first column.
UTILITY_SHAPES = {
    "log": rank_log,
    "pow25": lambda rank: rank_power(rank, 0.25),
    "pow50": lambda rank: rank_power(rank, 0.50),
    "pow75": lambda rank: rank_power(rank, 0.75),
}
