"""Abstract interface for consumer-class utility functions.

The paper (section 2.2) assumes every consumer class ``j`` has a utility
``U_j(r_i)`` that is increasing, strictly concave and continuously
differentiable in the rate ``r_i`` of the flow the class consumes, within the
rate bounds ``[r_min, r_max]``.

Concrete utilities live in :mod:`repro.utility.functions`.  Every utility
exposes its value and derivative; closed-form inverses of the derivative are
provided where they exist so the Lagrangian rate subproblem (Algorithm 1) can
be solved without numeric root finding.  A generic numeric fallback is in
:mod:`repro.utility.calculus`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class UtilityFunction(ABC):
    """A strictly concave, increasing, differentiable function of rate.

    Implementations must be immutable and hashable so they can be shared
    between consumer classes and stored in frozen dataclasses.
    """

    @abstractmethod
    def value(self, rate: float) -> float:
        """Return ``U(rate)``.  ``rate`` must be non-negative."""

    @abstractmethod
    def derivative(self, rate: float) -> float:
        """Return ``U'(rate)``.  Strictly positive and strictly decreasing."""

    def inverse_derivative(self, slope: float) -> float:
        """Return the rate ``r`` such that ``U'(r) == slope``.

        Only available for utilities with a closed-form inverse; others raise
        :class:`NotImplementedError` and callers fall back to numeric root
        finding (:func:`repro.utility.calculus.solve_rate`).

        ``slope`` must be strictly positive.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no closed-form inverse derivative"
        )

    def __call__(self, rate: float) -> float:
        return self.value(rate)


def validate_rate(rate: float) -> float:
    """Validate that ``rate`` is a finite, non-negative number.

    Returns the rate so the check can be used inline.
    """
    if not rate >= 0.0:  # also rejects NaN
        raise ValueError(f"rate must be non-negative, got {rate!r}")
    if math.isinf(rate):
        raise ValueError("rate must be finite")
    return rate


def validate_slope(slope: float) -> float:
    """Validate that ``slope`` is a finite, strictly positive number."""
    if not slope > 0.0:  # also rejects NaN
        raise ValueError(f"slope must be strictly positive, got {slope!r}")
    if math.isinf(slope):
        raise ValueError("slope must be finite")
    return slope
