"""Numeric machinery for the Lagrangian rate subproblem.

Algorithm 1 maximizes, for a single flow ``i`` with fixed populations and
prices,

    h(r) = sum_j n_j * U_j(r)  -  r * price        (equation 7)

over ``r in [r_min, r_max]``.  Because every ``U_j`` is strictly concave,
``h`` is strictly concave, so its derivative

    h'(r) = sum_j n_j * U_j'(r)  -  price

is strictly decreasing and the maximizer is unique:

* ``h'(r_min) <= 0``  ->  ``r_min``
* ``h'(r_max) >= 0``  ->  ``r_max``
* otherwise the root of ``h'`` in ``(r_min, r_max)``.

This module provides the generic bracketed root finder plus fast paths for
single-term objectives with closed-form inverse derivatives (which cover the
paper's workloads: every class on a flow shares a shape, so the weighted sum
collapses to one scaled utility).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from scipy.optimize import brentq

from repro.utility.base import UtilityFunction
from repro.utility.functions import LogUtility, PowerUtility

#: Relative tolerance for the bracketed root search.
_BRENTQ_XTOL = 1e-10
_BRENTQ_RTOL = 1e-12


def weighted_value(
    terms: Sequence[tuple[float, UtilityFunction]], rate: float
) -> float:
    """Return ``sum_j weight_j * U_j(rate)``."""
    return sum(weight * utility.value(rate) for weight, utility in terms)


def weighted_derivative(
    terms: Sequence[tuple[float, UtilityFunction]], rate: float
) -> float:
    """Return ``sum_j weight_j * U_j'(rate)``."""
    return sum(weight * utility.derivative(rate) for weight, utility in terms)


def _closed_form_rate(
    terms: Sequence[tuple[float, UtilityFunction]], price: float
) -> float | None:
    """Closed-form unconstrained maximizer, or ``None`` if unavailable.

    Two collapsible cases, which together cover all the paper's workloads:

    * every term is a :class:`LogUtility` with the same offset:
      ``sum(w*s) / (o + r) = price``;
    * every term is a :class:`PowerUtility` with the same exponent:
      ``sum(w*s) * k * r**(k-1) = price``.

    Single-term objectives with any closed-form ``inverse_derivative`` are
    also handled.
    """
    if len(terms) == 1:
        weight, utility = terms[0]
        try:
            return utility.inverse_derivative(price / weight)
        except NotImplementedError:
            return None

    first = terms[0][1]
    if isinstance(first, LogUtility) and all(
        isinstance(u, LogUtility) and u.offset == first.offset for _, u in terms
    ):
        total_scale = sum(w * u.scale for w, u in terms)
        return total_scale / price - first.offset
    if isinstance(first, PowerUtility) and all(
        isinstance(u, PowerUtility) and u.exponent == first.exponent
        for _, u in terms
    ):
        total_scale = sum(w * u.scale for w, u in terms)
        collapsed = PowerUtility(scale=total_scale, exponent=first.exponent)
        return collapsed.inverse_derivative(price)
    return None


def solve_rate(
    terms: Sequence[tuple[float, UtilityFunction]],
    price: float,
    rate_min: float,
    rate_max: float,
) -> float:
    """Maximize ``sum_j w_j U_j(r) - r * price`` over ``[rate_min, rate_max]``.

    ``terms`` pairs each utility with its weight (the admitted population
    ``n_j`` in LRGP).  Terms with zero weight are ignored; if all weights are
    zero, or ``price`` is zero or negative, the objective is maximized at a
    boundary.

    This is the single-flow Lagrangian subproblem of Algorithm 1, step 2.
    """
    if rate_min > rate_max:
        raise ValueError(f"rate_min {rate_min} exceeds rate_max {rate_max}")
    if rate_min < 0.0:
        raise ValueError(f"rate_min must be non-negative, got {rate_min}")
    if math.isnan(price):
        raise ValueError("price must not be NaN")

    active = [(w, u) for w, u in terms if w > 0.0]
    if not active:
        # No admitted consumers: utility term vanishes, objective is
        # -r * price.  Send the minimum unless rate is effectively free.
        return rate_min if price > 0.0 else rate_max
    if price <= 0.0:
        # Utilities are increasing, so with no (or negative) price pressure
        # the unconstrained maximizer is unbounded; clamp to the cap.
        return rate_max

    # Resolve boundary optima first: besides being cheap, this guarantees
    # the closed forms below only see *interior* solutions, where ratios
    # like ``price / weight`` cannot underflow or overflow (a denormal
    # price, for instance, always lands on ``rate_max`` here).
    if weighted_derivative(active, rate_max) >= price:
        return rate_max
    if weighted_derivative(active, rate_min) <= price:
        return rate_min

    closed = _closed_form_rate(active, price)
    if closed is not None:
        return min(max(closed, rate_min), rate_max)

    def slope(rate: float) -> float:
        return weighted_derivative(active, rate) - price

    return float(
        brentq(slope, rate_min, rate_max, xtol=_BRENTQ_XTOL, rtol=_BRENTQ_RTOL)
    )


def numeric_derivative(
    utility: UtilityFunction, rate: float, step: float = 1e-6
) -> float:
    """Central-difference derivative, used by tests to cross-check
    closed-form derivatives."""
    low = max(rate - step, 0.0)
    high = rate + step
    return (utility.value(high) - utility.value(low)) / (high - low)
