"""``repro.obs.profile`` — deterministic hierarchical phase profiling.

The registry's timers answer "how long does one iteration take"; this
module answers "where inside the iteration the time goes".  A
:class:`PhaseProfiler` maintains a stack of nested *phase spans* — the
solver opens ``solve -> iteration -> argmax / admission / price_update``,
the runtimes ``runtime -> activation / delivery / retransmit /
checkpoint`` — and accumulates per-phase wall time
(``time.perf_counter_ns``), CPU time (``time.process_time_ns``), call
counts and, optionally, allocation deltas (``tracemalloc``).  The tree
is keyed purely by phase names in call order, so two runs of the same
workload produce the same tree shape — reports are diffable.

Design constraints mirror :mod:`repro.obs.registry`:

1. **The disabled path is allocation-free.**  :data:`NULL_PROFILER` (the
   default on every :class:`~repro.obs.telemetry.Telemetry`) hands out
   one shared no-op span, so an uninstrumented hot loop pays a couple of
   attribute lookups per phase and nothing else — the <5% no-op guard in
   ``benchmarks/test_perf_observability.py`` covers these operations.
2. **Pure stdlib, no locks.**  The instrumented paths are single
   threaded; so is the profiler.
3. **Self time is exact by construction.**  Child spans are disjoint
   subintervals of their parent's span on a monotonic clock, so
   ``self = total - sum(children)`` is never negative.

One deliberate folding: the adaptive γ observation (section 4.2) runs
inside the price controllers' ``update()`` and is therefore accounted to
the ``price_update`` phase rather than a separate ``gamma_step`` span —
threading the profiler into the controllers would break their
"controllers never learn about registries" isolation for a sub-phase
that is a handful of float ops.

Reports export three ways: :func:`to_collapsed` (Brendan Gregg's
collapsed-stack format, one ``a;b;c <self_wall_ns>`` line per phase, fed
straight to ``flamegraph.pl``), :func:`to_speedscope` (a speedscope.app
"evented" profile laid out depth-first on a synthetic nanosecond
timeline), and :func:`register_phase_metrics` (gauges/counters into a
:class:`~repro.obs.registry.MetricsRegistry` so phase timings flow
through the existing Prometheus/JSON exporters unchanged).
"""

from __future__ import annotations

import json
import time
import tracemalloc
from dataclasses import dataclass
from typing import Any

from repro.obs.registry import MetricsRegistry

__all__ = [
    "NULL_PROFILER",
    "NullProfiler",
    "PhaseProfiler",
    "PhaseStat",
    "ProfileReport",
    "merge_reports",
    "register_phase_metrics",
    "render_report",
    "report_from_dict",
    "to_collapsed",
    "to_collapsed_diff",
    "to_speedscope",
]


class _PhaseNode:
    """One node of the phase tree: accumulated cost of a phase *path*.

    Children keep insertion order (first-entered first), which is
    deterministic for a deterministic program — the report inherits it.
    """

    __slots__ = ("name", "children", "calls", "wall_ns", "cpu_ns", "alloc_bytes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.children: dict[str, _PhaseNode] = {}
        self.calls = 0
        self.wall_ns = 0
        self.cpu_ns = 0
        self.alloc_bytes = 0


class _Span:
    """Context manager for one phase entry (enabled profiler only)."""

    __slots__ = ("_profiler", "_name", "_node", "_wall0", "_cpu0", "_alloc0")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        profiler = self._profiler
        parent = profiler._stack[-1]
        node = parent.children.get(self._name)
        if node is None:
            node = parent.children[self._name] = _PhaseNode(self._name)
        profiler._stack.append(node)
        self._node = node
        if profiler._track_allocations:
            self._alloc0 = tracemalloc.get_traced_memory()[0]
        # Clocks start last so child bookkeeping stays inside the parent's
        # window, never inside this span's own.
        self._cpu0 = time.process_time_ns()
        self._wall0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall_ns = time.perf_counter_ns() - self._wall0
        cpu_ns = time.process_time_ns() - self._cpu0
        node = self._node
        node.wall_ns += wall_ns
        node.cpu_ns += cpu_ns
        node.calls += 1
        profiler = self._profiler
        if profiler._track_allocations:
            grown = tracemalloc.get_traced_memory()[0] - self._alloc0
            if grown > 0:
                node.alloc_bytes += grown
        profiler._stack.pop()


class _NullSpan:
    """The shared no-op span :data:`NULL_PROFILER` hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


@dataclass(frozen=True)
class PhaseStat:
    """Aggregated cost of one phase path (``("solve", "iteration", ...)``).

    ``self_*`` is total minus the children's totals — the time spent in
    the phase itself, the quantity flame graphs stack and regression
    blame ranks.
    """

    path: tuple[str, ...]
    calls: int
    wall_ns: int
    cpu_ns: int
    self_wall_ns: int
    self_cpu_ns: int
    alloc_bytes: int

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    @property
    def dotted(self) -> str:
        """The path as a registry-style dotted name."""
        return ".".join(self.path)


@dataclass(frozen=True)
class ProfileReport:
    """Immutable snapshot of a profiler's phase tree.

    ``stats`` is in depth-first pre-order (parents before children,
    siblings in first-entered order), so a simple indent-by-depth walk
    renders the tree.
    """

    stats: tuple[PhaseStat, ...]
    track_allocations: bool = False

    @property
    def empty(self) -> bool:
        return not self.stats

    @property
    def total_wall_ns(self) -> int:
        """Wall time across the root phases (disjoint by construction)."""
        return sum(stat.wall_ns for stat in self.stats if stat.depth == 0)

    @property
    def total_self_wall_ns(self) -> int:
        """Sum of self times — equals :attr:`total_wall_ns` exactly."""
        return sum(stat.self_wall_ns for stat in self.stats)

    def find(self, dotted: str) -> PhaseStat | None:
        """The stat at a dotted path (``"solve.iteration.argmax"``)."""
        for stat in self.stats:
            if stat.dotted == dotted:
                return stat
        return None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (stable schema, version-tagged)."""
        return {
            "version": 1,
            "track_allocations": self.track_allocations,
            "total_wall_ns": self.total_wall_ns,
            "phases": {
                stat.dotted: {
                    "calls": stat.calls,
                    "wall_ns": stat.wall_ns,
                    "cpu_ns": stat.cpu_ns,
                    "self_wall_ns": stat.self_wall_ns,
                    "self_cpu_ns": stat.self_cpu_ns,
                    "alloc_bytes": stat.alloc_bytes,
                }
                for stat in self.stats
            },
        }


class PhaseProfiler:
    """Hierarchical phase profiler with an explicit span stack.

    ``with profiler.phase("iteration"):`` opens a span nested under
    whatever span is currently innermost; cost accumulates per *path*,
    so ``admission`` under ``iteration`` is a different bucket from an
    ``admission`` phase at top level.  Phases may be entered repeatedly
    (the per-node loops do); calls and durations accumulate.

    ``track_allocations=True`` additionally records net allocation growth
    per span via ``tracemalloc`` (started on demand); expect it to slow
    the profiled run — wall times remain comparable only to other
    allocation-tracking runs.
    """

    enabled = True

    def __init__(self, track_allocations: bool = False) -> None:
        self._track_allocations = track_allocations
        if track_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
        self._root = _PhaseNode("")
        self._stack: list[_PhaseNode] = [self._root]

    def phase(self, name: str) -> Any:
        """A context manager timing one entry of phase ``name``."""
        return _Span(self, name)

    @property
    def depth(self) -> int:
        """Open spans right now (0 = at top level)."""
        return len(self._stack) - 1

    def reset(self) -> None:
        """Drop all accumulated phases (open spans must be closed)."""
        if len(self._stack) != 1:
            raise RuntimeError(
                f"cannot reset with {len(self._stack) - 1} span(s) open"
            )
        self._root = _PhaseNode("")
        self._stack = [self._root]

    def report(self) -> ProfileReport:
        """Aggregate the tree (closed spans only) into a report."""
        stats: list[PhaseStat] = []

        def walk(node: _PhaseNode, path: tuple[str, ...]) -> None:
            for child in node.children.values():
                child_path = path + (child.name,)
                nested_wall = sum(g.wall_ns for g in child.children.values())
                nested_cpu = sum(g.cpu_ns for g in child.children.values())
                stats.append(
                    PhaseStat(
                        path=child_path,
                        calls=child.calls,
                        wall_ns=child.wall_ns,
                        cpu_ns=child.cpu_ns,
                        self_wall_ns=child.wall_ns - nested_wall,
                        self_cpu_ns=child.cpu_ns - nested_cpu,
                        alloc_bytes=child.alloc_bytes,
                    )
                )
                walk(child, child_path)

        walk(self._root, ())
        return ProfileReport(
            stats=tuple(stats), track_allocations=self._track_allocations
        )


class NullProfiler(PhaseProfiler):
    """The disabled default: ``phase()`` returns one shared no-op span."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(track_allocations=False)

    def phase(self, name: str) -> Any:
        return _NULL_SPAN


NULL_PROFILER: PhaseProfiler = NullProfiler()


# -- aggregation -------------------------------------------------------------


def merge_reports(*reports: ProfileReport) -> ProfileReport:
    """Merge phase trees keyed by name path (farm-wide aggregation).

    Calls, wall, CPU and allocation totals sum per path; sibling order is
    first-seen across the reports in argument order, so merging a report
    with itself (or with same-shaped peers — the sweep-farm case) keeps
    the original tree shape.  Because every child of a merged node was a
    child in some input, ``self = total - sum(children)`` distributes
    over the sum: the merged self time of a path is exactly the sum of
    its per-report self times, and ``total_self_wall_ns`` still equals
    ``total_wall_ns`` to the nanosecond.
    """
    merged = _PhaseNode("")
    for report in reports:
        for stat in report.stats:
            node = merged
            for name in stat.path:
                child = node.children.get(name)
                if child is None:
                    child = node.children[name] = _PhaseNode(name)
                node = child
            node.calls += stat.calls
            node.wall_ns += stat.wall_ns
            node.cpu_ns += stat.cpu_ns
            node.alloc_bytes += stat.alloc_bytes

    stats: list[PhaseStat] = []

    def walk(node: _PhaseNode, path: tuple[str, ...]) -> None:
        for child in node.children.values():
            child_path = path + (child.name,)
            nested_wall = sum(g.wall_ns for g in child.children.values())
            nested_cpu = sum(g.cpu_ns for g in child.children.values())
            stats.append(
                PhaseStat(
                    path=child_path,
                    calls=child.calls,
                    wall_ns=child.wall_ns,
                    cpu_ns=child.cpu_ns,
                    self_wall_ns=child.wall_ns - nested_wall,
                    self_cpu_ns=child.cpu_ns - nested_cpu,
                    alloc_bytes=child.alloc_bytes,
                )
            )
            walk(child, child_path)

    walk(merged, ())
    return ProfileReport(
        stats=tuple(stats),
        track_allocations=any(r.track_allocations for r in reports),
    )


def report_from_dict(payload: Any) -> ProfileReport:
    """Rebuild a :class:`ProfileReport` from :meth:`ProfileReport.to_dict`
    output (an archived ``repro profile --json`` / sweep-telemetry
    artifact).

    Dotted keys split on ``.`` (phase names never contain dots); entries
    are ordered by path so parents precede children — a valid pre-order,
    with siblings lexicographic after a canonical-JSON round trip.
    """
    if not isinstance(payload, dict) or not isinstance(
        payload.get("phases"), dict
    ):
        raise ValueError("profile payload must be an object with 'phases'")
    stats = []
    for dotted, entry in sorted(
        payload["phases"].items(), key=lambda item: item[0].split(".")
    ):
        if not isinstance(entry, dict):
            raise ValueError(f"profile phase {dotted!r} is malformed")
        stats.append(
            PhaseStat(
                path=tuple(dotted.split(".")),
                calls=int(entry.get("calls", 0)),
                wall_ns=int(entry.get("wall_ns", 0)),
                cpu_ns=int(entry.get("cpu_ns", 0)),
                self_wall_ns=int(entry.get("self_wall_ns", 0)),
                self_cpu_ns=int(entry.get("self_cpu_ns", 0)),
                alloc_bytes=int(entry.get("alloc_bytes", 0)),
            )
        )
    return ProfileReport(
        stats=tuple(stats),
        track_allocations=bool(payload.get("track_allocations", False)),
    )


# -- exports -----------------------------------------------------------------


def to_collapsed(report: ProfileReport) -> str:
    """Collapsed-stack flamegraph lines (``solve;iteration;argmax 1234``).

    One line per phase path with positive *self* wall time, in report
    order; values are nanoseconds, the stack separator is ``;`` — the
    exact input ``flamegraph.pl`` and speedscope's importer expect.
    """
    lines = [
        f"{';'.join(stat.path)} {stat.self_wall_ns}"
        for stat in report.stats
        if stat.self_wall_ns > 0
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def to_collapsed_diff(base: ProfileReport, other: ProfileReport) -> str:
    """Differential folded stacks: ``a;b;c <base_self> <other_self>``.

    The two-column folded format ``flamegraph.pl --diff`` (and
    ``difffolded.pl``) consumes: one line per phase path present in
    either report, base self-wall first, other second, missing side 0.
    Paths keep ``base``'s order with ``other``-only paths appended in
    ``other``'s order, so the diff of a report against itself is its own
    collapsed output with a duplicated column.
    """
    base_self = {stat.path: stat.self_wall_ns for stat in base.stats}
    other_self = {stat.path: stat.self_wall_ns for stat in other.stats}
    paths = [stat.path for stat in base.stats]
    paths.extend(
        stat.path for stat in other.stats if stat.path not in base_self
    )
    lines = []
    for path in paths:
        before = base_self.get(path, 0)
        after = other_self.get(path, 0)
        if before > 0 or after > 0:
            lines.append(f"{';'.join(path)} {before} {after}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_speedscope(report: ProfileReport, name: str = "repro profile") -> str:
    """The report as a speedscope.app "evented" profile (JSON text).

    Aggregated phases have no real timeline, so one is synthesized: the
    tree is laid out depth-first on a nanosecond axis, every node
    occupying a contiguous ``wall_ns`` window with its children packed
    left-to-right inside it (self time is the remainder on the right).
    Frame identity is the phase *name*, so recurring phases merge in
    speedscope's left-heavy and sandwich views.
    """
    frames: list[dict[str, str]] = []
    frame_index: dict[str, int] = {}

    def frame_of(phase: str) -> int:
        index = frame_index.get(phase)
        if index is None:
            index = frame_index[phase] = len(frames)
            frames.append({"name": phase})
        return index

    children: dict[tuple[str, ...], list[PhaseStat]] = {}
    for stat in report.stats:
        children.setdefault(stat.path[:-1], []).append(stat)

    events: list[dict[str, Any]] = []

    def emit(stat: PhaseStat, start: int) -> int:
        events.append({"type": "O", "frame": frame_of(stat.name), "at": start})
        cursor = start
        for child in children.get(stat.path, ()):
            cursor = emit(child, cursor)
        end = start + stat.wall_ns
        events.append({"type": "C", "frame": frame_of(stat.name), "at": end})
        return end

    cursor = 0
    for root in children.get((), ()):
        cursor = emit(root, cursor)

    payload = {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "evented",
                "name": name,
                "unit": "nanoseconds",
                "startValue": 0,
                "endValue": cursor,
                "events": events,
            }
        ],
        "exporter": "repro.obs.profile",
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: Registry prefix for phase metrics (see docs/observability.md).
PHASE_METRIC_PREFIX = "profile.phase"


def register_phase_metrics(
    report: ProfileReport,
    registry: MetricsRegistry,
    prefix: str = PHASE_METRIC_PREFIX,
) -> int:
    """Mirror a report into a registry; returns the phase count.

    Per phase path three metrics are registered — ``<prefix>.<path>.calls``
    (counter), ``.self_seconds`` and ``.total_seconds`` (gauges) — so
    phase timings ride the existing Prometheus/JSON exporters.  The
    ``*_seconds`` leaves are deliberately outside the bench watchdog's
    direction vocabulary: raw phase timings shift with machine load, and
    only the *blame* ranking (:func:`repro.obs.bench.compare_snapshots`)
    should interpret their movement, not the generic regression scan.
    """
    for stat in report.stats:
        base = f"{prefix}.{stat.dotted}"
        counter = registry.counter(f"{base}.calls")
        counter.inc(stat.calls - counter.value)  # idempotent re-register
        registry.gauge(f"{base}.self_seconds").set(stat.self_wall_ns / 1e9)
        registry.gauge(f"{base}.total_seconds").set(stat.wall_ns / 1e9)
    return len(report.stats)


def render_report(report: ProfileReport) -> str:
    """Human-readable phase table (the ``repro profile`` stdout body)."""
    if report.empty:
        return "profile: (no phases recorded)"
    header = f"{'phase':<40} {'calls':>8} {'total':>10} {'self':>10} {'cpu':>10}"
    if report.track_allocations:
        header += f" {'alloc':>10}"
    lines = [header]
    for stat in report.stats:
        label = "  " * stat.depth + stat.name
        row = (
            f"{label:<40} {stat.calls:>8} "
            f"{stat.wall_ns / 1e6:>8.2f}ms {stat.self_wall_ns / 1e6:>8.2f}ms "
            f"{stat.cpu_ns / 1e6:>8.2f}ms"
        )
        if report.track_allocations:
            row += f" {stat.alloc_bytes / 1024:>8.1f}kB"
        lines.append(row)
    lines.append(
        f"total {report.total_wall_ns / 1e6:.2f}ms across "
        f"{len(report.stats)} phase(s)"
    )
    return "\n".join(lines)
