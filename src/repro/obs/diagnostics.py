"""Convergence diagnostics computed from a captured event stream.

Answers the questions the paper's evaluation keeps asking of a run:

* **Did it converge, and how fast?**  Iterations (and wall time) until
  the trailing-window utility amplitude drops below the paper's 0.1%
  criterion (section 4.3) — the same sliding-window rule as
  ``repro.core.convergence``, recomputed here from ``iteration`` events
  so the diagnostics work on *any* emitter (reference driver, sync or
  async runtime) without importing the optimizer.
* **Is it oscillating?**  Per-resource price oscillation counts — sign
  reversals between consecutive price deltas, the very signal the
  adaptive γ heuristic damps (section 4.2, figure 2).
* **Is it feasible?**  Final per-constraint residual/slack from the
  ``usage``/``capacity`` operands carried by ``price_update`` events
  (eq. 4/5 left-hand sides vs capacities).
* **How good is it?**  Utility gap to a caller-supplied upper bound
  (e.g. ``repro.baselines.bounds.utility_upper_bound``).

This module deliberately imports nothing from ``repro.core`` — the obs
layer sits below every engine and must not cycle back into them.
Raw float comparisons on price deltas are intentional here (oscillation
detection *is* a sign test on exact iterates) and exempt from lint R2.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Iterable

from repro.obs.events import IterationEvent, PriceUpdateEvent, TraceEvent
from repro.utility.stability import (
    CONVERGENCE_REL_AMPLITUDE,
    CONVERGENCE_WINDOW,
)

#: The paper's convergence criterion (section 4.3): amplitude of the
#: utility oscillation over the trailing window below 0.1% of its mean.
#: Shared with the optimizer-side detector via
#: :mod:`repro.utility.stability` so the two can never drift apart.
DEFAULT_WINDOW = CONVERGENCE_WINDOW
DEFAULT_REL_AMPLITUDE = CONVERGENCE_REL_AMPLITUDE


@dataclass(frozen=True)
class ResourceDiagnostics:
    """Price/constraint health of one node or link at end of run."""

    resource: str  # "node:S0" | "link:uplink"
    updates: int
    oscillations: int  # sign reversals in the price delta sequence
    final_price: float
    usage: float | None  # eq. 4/5 LHS at the last update, if carried
    capacity: float | None
    #: max(0, usage - capacity): positive = the constraint is violated.
    residual: float | None
    #: max(0, capacity - usage): headroom left under the constraint.
    slack: float | None


@dataclass(frozen=True)
class DiagnosticsReport:
    """Everything the analyzer extracted from one event stream."""

    iterations: int
    final_utility: float | None
    iterations_to_tolerance: int | None
    time_to_tolerance_ns: int | None
    window: int
    rel_amplitude: float
    #: Peak-to-peak utility amplitude over the trailing window / |mean|.
    trailing_amplitude: float | None
    utility_bound: float | None
    utility_gap: float | None  # bound - final (absolute)
    relative_gap: float | None  # gap / bound
    resources: dict[str, ResourceDiagnostics]

    @property
    def converged(self) -> bool:
        return self.iterations_to_tolerance is not None

    @property
    def total_oscillations(self) -> int:
        return sum(r.oscillations for r in self.resources.values())

    @property
    def violated_resources(self) -> list[str]:
        return [
            name
            for name, r in sorted(self.resources.items())
            if r.residual is not None and r.residual > 0.0
        ]


def _window_amplitude(values: list[float], window: int) -> float | None:
    """Peak-to-peak amplitude of the trailing window relative to |mean|."""
    if len(values) < window:
        return None
    tail = values[-window:]
    mean = sum(tail) / len(tail)
    spread = max(tail) - min(tail)
    if abs(mean) <= 0.0:
        return 0.0 if spread <= 0.0 else float("inf")
    return spread / abs(mean)


def _first_stable_index(
    values: list[float], window: int, rel_amplitude: float
) -> int | None:
    """0-based index of the first observation closing a stable window."""
    for end in range(window, len(values) + 1):
        amplitude = _window_amplitude(values[:end], window)
        if amplitude is not None and amplitude <= rel_amplitude:
            return end - 1
    return None


def count_oscillations(series: Iterable[float]) -> int:
    """Sign reversals between consecutive non-zero deltas of a series.

    This is exactly the fluctuation test of the adaptive γ heuristic
    (section 4.2): the price moved up then down (or vice versa).  Zero
    deltas neither count nor reset the last direction.
    """
    last_delta = 0.0
    previous: float | None = None
    reversals = 0
    for value in series:
        if previous is not None:
            delta = value - previous
            if delta * last_delta < 0.0:
                reversals += 1
            if delta != 0.0:  # exact: prices are projected iterates
                last_delta = delta
        previous = value
    return reversals


class ConvergenceDiagnostics:
    """Analyzer turning an event stream into a :class:`DiagnosticsReport`.

    ``utility_bound`` is optional; when given, the report includes the
    utility-gap-to-bound figures.
    """

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        rel_amplitude: float = DEFAULT_REL_AMPLITUDE,
        utility_bound: float | None = None,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        if rel_amplitude <= 0.0:
            raise ValueError(
                f"rel_amplitude must be positive, got {rel_amplitude}"
            )
        self._window = window
        self._rel_amplitude = rel_amplitude
        self._utility_bound = utility_bound

    def analyze(self, events: Iterable[TraceEvent]) -> DiagnosticsReport:
        utilities: list[float] = []
        stamps: list[int] = []
        price_series: dict[str, list[float]] = {}
        last_update: dict[str, PriceUpdateEvent] = {}

        for event in events:
            if isinstance(event, IterationEvent):
                utilities.append(event.utility)
                stamps.append(event.t_ns)
            elif isinstance(event, PriceUpdateEvent):
                key = f"{event.resource_kind}:{event.resource}"
                series = price_series.setdefault(key, [])
                if not series:
                    series.append(event.old_price)
                series.append(event.new_price)
                last_update[key] = event

        stable_index = _first_stable_index(
            utilities, self._window, self._rel_amplitude
        )
        resources = {
            key: self._resource_diagnostics(key, series, last_update[key])
            for key, series in sorted(price_series.items())
        }

        final_utility = utilities[-1] if utilities else None
        gap: float | None = None
        relative_gap: float | None = None
        if self._utility_bound is not None and final_utility is not None:
            gap = self._utility_bound - final_utility
            if abs(self._utility_bound) > 0.0:
                relative_gap = gap / abs(self._utility_bound)

        return DiagnosticsReport(
            iterations=len(utilities),
            final_utility=final_utility,
            iterations_to_tolerance=(
                None if stable_index is None else stable_index + 1
            ),
            time_to_tolerance_ns=(
                None
                if stable_index is None or not stamps
                else stamps[stable_index] - stamps[0]
            ),
            window=self._window,
            rel_amplitude=self._rel_amplitude,
            trailing_amplitude=_window_amplitude(utilities, self._window),
            utility_bound=self._utility_bound,
            utility_gap=gap,
            relative_gap=relative_gap,
            resources=resources,
        )

    @staticmethod
    def _resource_diagnostics(
        key: str, series: list[float], last: PriceUpdateEvent
    ) -> ResourceDiagnostics:
        usage = last.usage
        capacity = last.capacity
        residual: float | None = None
        slack: float | None = None
        if usage is not None and capacity is not None:
            residual = max(0.0, usage - capacity)
            slack = max(0.0, capacity - usage)
        return ResourceDiagnostics(
            resource=key,
            updates=len(series) - 1,
            oscillations=count_oscillations(series),
            final_price=series[-1],
            usage=usage,
            capacity=capacity,
            residual=residual,
            slack=slack,
        )


def diagnostics_to_dict(report: DiagnosticsReport) -> dict[str, Any]:
    """JSON-ready form of a report (``repro stats --format json``).

    Includes the derived ``converged`` / ``total_oscillations`` /
    ``violated_resources`` fields so downstream tooling does not have to
    re-derive them.
    """
    payload = asdict(report)
    payload["converged"] = report.converged
    payload["total_oscillations"] = report.total_oscillations
    payload["violated_resources"] = report.violated_resources
    return payload


def render_diagnostics(report: DiagnosticsReport) -> str:
    """Human-readable diagnostics block (the ``repro stats`` footer)."""
    lines = ["convergence diagnostics:"]
    lines.append(f"  iterations observed:   {report.iterations}")
    if report.final_utility is not None:
        lines.append(f"  final utility:         {report.final_utility:,.2f}")
    if report.iterations_to_tolerance is not None:
        lines.append(
            f"  stable by iteration:   {report.iterations_to_tolerance} "
            f"(window={report.window}, "
            f"amplitude<={report.rel_amplitude:g})"
        )
        if report.time_to_tolerance_ns is not None:
            lines.append(
                f"  time to tolerance:     "
                f"{report.time_to_tolerance_ns / 1e6:.2f} ms"
            )
    else:
        amplitude = report.trailing_amplitude
        shown = "n/a" if amplitude is None else f"{amplitude:.3%}"
        lines.append(
            f"  NOT converged (trailing amplitude {shown}, "
            f"needs <= {report.rel_amplitude:.3%})"
        )
    if report.utility_bound is not None and report.utility_gap is not None:
        relative = (
            "" if report.relative_gap is None else f" ({report.relative_gap:.3%})"
        )
        lines.append(
            f"  gap to upper bound:    {report.utility_gap:,.2f}{relative}"
        )
    if report.resources:
        lines.append(
            f"  price oscillations:    {report.total_oscillations} total"
        )
        for name, resource in sorted(report.resources.items()):
            slack = (
                "slack n/a"
                if resource.slack is None
                else f"slack {resource.slack:,.1f}"
            )
            violated = (
                ""
                if not resource.residual
                else f"  VIOLATED by {resource.residual:,.1f}"
            )
            lines.append(
                f"    {name}: {resource.oscillations} oscillations over "
                f"{resource.updates} updates, final price "
                f"{resource.final_price:.6f}, {slack}{violated}"
            )
    if report.violated_resources:
        lines.append(
            "  constraint violations: "
            + ", ".join(report.violated_resources)
        )
    return "\n".join(lines)
