"""``repro.obs.causal`` — span-based causal tracing for the LRGP runtimes.

LRGP converges through *chains* of messages: a link price update changes
a source's rate, the new rate changes a node's admission and price, and
so on until the utility trajectory stabilizes (section 4.3).  The flat
event stream of :mod:`repro.obs` records each hop but not the chain;
this module adds the chain.

Two halves:

* **Context propagation** (:class:`CausalContext`, :class:`ActivationSpan`)
  — a deterministic span-id allocator the runtimes thread through agents
  and messages.  Every agent activation opens a span whose parent is the
  span of the last message that fed the agent's state; every emitted
  message gets its own span parented on the emitting activation.  The
  ids are sequential, so a seeded run produces a bit-identical capture
  (no entropy — lint rule R1 applies here as everywhere).
* **Reconstruction** (:class:`CausalGraph`) — rebuilds the event DAG
  from any recorded stream (``MemorySink`` buffer, JSONL capture) and
  answers the two §4.3 questions the flat stream cannot:

  - :meth:`CausalGraph.critical_path` — the chain of activations and
    message deliveries that carried the run from its first event to the
    first stable iteration, with per-hop elapsed time.  The total is, by
    construction, exactly the measured time-to-stability: the path
    decomposes *where* that time went (which agent waited, which message
    crawled through a delay storm).
  - :meth:`CausalGraph.blame` — per-resource attribution of utility
    regressions to price oscillations: every utility *drop* between
    consecutive iteration samples is split over the resources whose
    prices reversed direction in that interval, weighted by the
    magnitude of the reversing step (the §4.2 fluctuation signal).

Like the rest of the obs layer this module imports nothing from
``repro.core`` / ``repro.runtime`` — the runtimes import *it*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.obs.events import (
    AgentExchangeEvent,
    IterationEvent,
    MessageEvent,
    PriceUpdateEvent,
    TraceEvent,
)
from repro.utility.stability import (
    CONVERGENCE_REL_AMPLITUDE,
    CONVERGENCE_WINDOW,
)

__all__ = [
    "ActivationSpan",
    "CausalContext",
    "CausalGraph",
    "CriticalHop",
    "CriticalPath",
    "ResourceBlame",
    "Span",
    "render_causal_report",
]


# ---------------------------------------------------------------------------
# context propagation (used live by the runtimes)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ActivationSpan:
    """Causal context of one agent activation.

    Runtimes attach one to the agent (``agent.causal``) immediately
    before calling ``act()``; the agent copies it into the
    ``agent_exchange`` event it emits.
    """

    trace_id: str
    span_id: str
    parent_span_id: str | None


class CausalContext:
    """Deterministic span allocator + per-agent causal bookkeeping.

    One instance per traced run.  Span ids are sequential
    (``s00000001``, ``s00000002``, ...) in allocation order, so a seeded
    run reproduces the same ids — determinism the replay engine and the
    regression tests rely on.
    """

    __slots__ = ("trace_id", "_counter", "_last_cause", "_active")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self._counter = 0
        #: address -> span id of the last message delivered to the agent.
        self._last_cause: dict[str, str] = {}
        #: address -> span id of the agent's current/most recent activation.
        self._active: dict[str, str] = {}

    def allocate(self) -> str:
        """Next sequential span id."""
        self._counter += 1
        return f"s{self._counter:08d}"

    def begin_activation(self, address: str) -> ActivationSpan:
        """Open the span for one activation of ``address``.

        The parent is the span of the last message delivered to the
        agent — the most recent write into the state ``act()`` is about
        to consume.  ``None`` for a cold agent (root span).
        """
        span = ActivationSpan(
            trace_id=self.trace_id,
            span_id=self.allocate(),
            parent_span_id=self._last_cause.get(address),
        )
        self._active[address] = span.span_id
        return span

    def message_context(self, sender: str) -> tuple[str, str | None]:
        """``(span_id, parent_span_id)`` for one outgoing message.

        Each message gets its own span, parented on the sender's current
        activation span.
        """
        return self.allocate(), self._active.get(sender)

    def record_delivery(self, recipient: str, span_id: str | None) -> None:
        """Note that a message span just landed at ``recipient``."""
        if span_id:
            self._last_cause[recipient] = span_id


# ---------------------------------------------------------------------------
# reconstruction (offline, from any recorded stream)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Span:
    """One node of the reconstructed causal DAG."""

    span_id: str
    kind: str  # "activation" | "message"
    #: Acting agent (activations) or recipient (messages).
    agent: str
    parent_span_id: str | None
    #: Simulated-time end of the span: activation stamp, or delivery time.
    at: float
    #: Position of the backing event in the capture (a topological order:
    #: parents are always recorded before their children).
    index: int
    sender: str | None = None  # message spans only
    payload: str | None = None  # message spans only
    latency: float = 0.0  # message spans: simulated transit time

    def describe(self) -> str:
        if self.kind == "message":
            return f"{self.payload or 'message'} {self.sender} -> {self.agent}"
        return f"activation {self.agent}"


@dataclass(frozen=True)
class CriticalHop:
    """One step of the critical path with the elapsed time it explains."""

    span: Span
    #: Simulated time elapsed between the previous hop's end and this
    #: span's end (the wait this hop is responsible for).
    wait: float


@dataclass(frozen=True)
class CriticalPath:
    """The latency chain ending at the first stable iteration.

    ``total_latency`` = sum of hop waits + ``closing_wait`` (the gap
    between the last span on the path and the stable sample).  By
    construction it equals ``time_to_stability`` exactly — the path is a
    lossless decomposition of the time the run took to stabilize.
    """

    hops: tuple[CriticalHop, ...]
    #: Simulated time of the iteration sample that closed the first
    #: stable window (§4.3 criterion).
    stable_at: float
    #: 1-based index of that iteration sample.
    stable_iteration: int
    #: Simulated time of the first span in the capture.
    start: float
    #: Gap between the last hop and the stable sample.
    closing_wait: float

    @property
    def total_latency(self) -> float:
        return sum(hop.wait for hop in self.hops) + self.closing_wait

    @property
    def time_to_stability(self) -> float:
        return self.stable_at - self.start

    def by_agent(self) -> dict[str, float]:
        """Path wait aggregated per agent address, descending."""
        totals: dict[str, float] = {}
        for hop in self.hops:
            totals[hop.span.agent] = totals.get(hop.span.agent, 0.0) + hop.wait
        return dict(
            sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        )


@dataclass(frozen=True)
class ResourceBlame:
    """Utility loss attributed to one resource's price oscillations."""

    resource: str  # "node:S0" | "link:uplink"
    #: Price-delta sign reversals observed for this resource (§4.2).
    oscillations: int
    #: Total price updates observed for this resource.
    updates: int
    #: Sum of utility drops attributed to this resource's reversals.
    blame: float
    #: ``blame`` as a fraction of all attributed utility loss.
    share: float


class CausalGraph:
    """The event DAG reconstructed from a recorded trace.

    Nodes are spans (agent activations and message deliveries); edges
    are the recorded parent links plus the *join* edges recovered from
    delivery order: every message delivered to an agent between two of
    its activations is a causal input of the later activation (the
    event carries only the last one — the others are implied by the
    per-agent delivery sequence, which the capture preserves).
    """

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        self._spans: dict[str, Span] = {}
        self._parents: dict[str, tuple[str, ...]] = {}
        self._utilities: list[float] = []
        self._iteration_times: list[float] = []
        #: (interval index, resource key, price delta) per price update,
        #: where the interval index is the number of iteration samples
        #: already seen — the attribution bucket for :meth:`blame`.
        self._price_deltas: list[tuple[int, str, float]] = []
        self._events = 0
        pending: dict[str, list[str]] = {}

        for index, event in enumerate(events):
            self._events += 1
            if isinstance(event, AgentExchangeEvent):
                if event.span_id is None:
                    continue
                joins = pending.pop(event.agent, [])
                parents = tuple(
                    dict.fromkeys(
                        ([event.parent_span_id] if event.parent_span_id else [])
                        + joins
                    )
                )
                self._add_span(
                    Span(
                        span_id=event.span_id,
                        kind="activation",
                        agent=event.agent,
                        parent_span_id=event.parent_span_id,
                        at=event.stamp,
                        index=index,
                    ),
                    parents,
                )
            elif isinstance(event, MessageEvent):
                if event.span_id is None:
                    continue
                at = event.at if event.at is not None else 0.0
                parents = (
                    (event.parent_span_id,) if event.parent_span_id else ()
                )
                self._add_span(
                    Span(
                        span_id=event.span_id,
                        kind="message",
                        agent=event.recipient,
                        parent_span_id=event.parent_span_id,
                        at=at,
                        index=index,
                        sender=event.sender,
                        payload=event.payload,
                        latency=event.latency or 0.0,
                    ),
                    parents,
                )
                pending.setdefault(event.recipient, []).append(event.span_id)
            elif isinstance(event, IterationEvent):
                self._utilities.append(event.utility)
                self._iteration_times.append(
                    event.at if event.at is not None else float(event.iteration)
                )
            elif isinstance(event, PriceUpdateEvent):
                key = f"{event.resource_kind}:{event.resource}"
                self._price_deltas.append(
                    (len(self._utilities), key, event.new_price - event.old_price)
                )

    def _add_span(self, span: Span, parents: tuple[str, ...]) -> None:
        self._spans[span.span_id] = span
        # Drop dangling parent references (e.g. a capture that was
        # filtered or truncated at the front) instead of KeyError-ing
        # every downstream query.
        self._parents[span.span_id] = tuple(
            parent for parent in parents if parent in self._spans
        )

    # -- structure ----------------------------------------------------------

    @property
    def spans(self) -> dict[str, Span]:
        """All spans, keyed by span id (insertion = capture order)."""
        return dict(self._spans)

    @property
    def events_seen(self) -> int:
        """Total events consumed (spans or not)."""
        return self._events

    @property
    def iterations(self) -> int:
        """Iteration samples observed."""
        return len(self._utilities)

    def parents(self, span_id: str) -> tuple[Span, ...]:
        """Causal inputs of one span (recorded parent + joins)."""
        return tuple(
            self._spans[parent] for parent in self._parents.get(span_id, ())
        )

    def roots(self) -> list[Span]:
        """Spans with no causal input (cold activations)."""
        return [
            span
            for span_id, span in self._spans.items()
            if not self._parents.get(span_id)
        ]

    def span_of_event(self, index: int) -> Span | None:
        """The span backed by the event at ``index``, if any."""
        for span in self._spans.values():
            if span.index == index:
                return span
        return None

    # -- critical path ------------------------------------------------------

    def stable_iteration(
        self,
        window: int = CONVERGENCE_WINDOW,
        rel_amplitude: float = CONVERGENCE_REL_AMPLITUDE,
    ) -> int | None:
        """1-based iteration sample closing the first stable window.

        The same sliding-window criterion as the optimizer and the
        diagnostics (§4.3): peak-to-peak utility amplitude over the
        trailing ``window`` samples at most ``rel_amplitude`` of the
        window mean.
        """
        values = self._utilities
        for end in range(window, len(values) + 1):
            tail = values[end - window : end]
            mean = sum(tail) / window
            spread = max(tail) - min(tail)
            if abs(mean) <= 0.0:
                if spread <= 0.0:
                    return end
                continue
            if spread / abs(mean) <= rel_amplitude:
                return end
        return None

    def critical_path(
        self,
        window: int = CONVERGENCE_WINDOW,
        rel_amplitude: float = CONVERGENCE_REL_AMPLITUDE,
    ) -> CriticalPath | None:
        """Longest-latency chain ending at the first stable iteration.

        Walks backwards from the last span that ends at or before the
        stable sample, always stepping to the *latest-arriving* causal
        input — the classic critical-path rule: the input that arrived
        last is the one the span actually waited for.  Ties break on the
        recorded (primary) parent, then on capture order, so the path is
        deterministic.

        Returns ``None`` when the utility never stabilizes or the
        capture carries no causal spans (a v1 trace).
        """
        stable = self.stable_iteration(window, rel_amplitude)
        if stable is None or not self._spans:
            return None
        stable_at = self._iteration_times[stable - 1]
        eligible = [span for span in self._spans.values() if span.at <= stable_at]
        if not eligible:
            return None
        start = min(span.at for span in self._spans.values())
        # The span the stable sample observed last: latest end, then
        # latest capture position.
        tail = max(eligible, key=lambda span: (span.at, span.index))

        chain: list[Span] = [tail]
        seen = {tail.span_id}
        current = tail
        while True:
            inputs = self.parents(current.span_id)
            candidates = [span for span in inputs if span.span_id not in seen]
            if not candidates:
                break
            current = max(
                candidates,
                key=lambda span: (
                    span.at,
                    span.span_id == chain[-1].parent_span_id,
                    span.index,
                ),
            )
            chain.append(current)
            seen.add(current.span_id)
        chain.reverse()

        hops: list[CriticalHop] = []
        previous_end = start
        for span in chain:
            hops.append(CriticalHop(span=span, wait=span.at - previous_end))
            previous_end = span.at
        return CriticalPath(
            hops=tuple(hops),
            stable_at=stable_at,
            stable_iteration=stable,
            start=start,
            closing_wait=stable_at - tail.at,
        )

    # -- blame attribution --------------------------------------------------

    def blame(self) -> tuple[list[ResourceBlame], float]:
        """Split utility drops over oscillating resources.

        For every pair of consecutive iteration samples with a utility
        *drop*, the lost utility is attributed to the resources whose
        price reversed direction in that interval (a §4.2 fluctuation),
        proportionally to the magnitude of the reversing step.  Returns
        the per-resource attribution (descending by blame) plus the
        utility loss in intervals where *no* price reversed — drops the
        price signal cannot explain (admission flips, faults).
        """
        reversals: dict[int, dict[str, float]] = {}
        oscillations: dict[str, int] = {}
        updates: dict[str, int] = {}
        last_delta: dict[str, float] = {}
        for interval, key, delta in self._price_deltas:
            updates[key] = updates.get(key, 0) + 1
            previous = last_delta.get(key, 0.0)
            if delta * previous < 0.0:
                oscillations[key] = oscillations.get(key, 0) + 1
                bucket = reversals.setdefault(interval, {})
                bucket[key] = bucket.get(key, 0.0) + abs(delta)
            if delta != 0.0:  # exact: prices are projected iterates
                last_delta[key] = delta

        blame: dict[str, float] = {}
        unattributed = 0.0
        for sample in range(1, len(self._utilities)):
            drop = self._utilities[sample - 1] - self._utilities[sample]
            if drop <= 0.0:
                continue
            bucket = reversals.get(sample, {})
            weight = sum(bucket.values())
            if weight <= 0.0:
                unattributed += drop
                continue
            for key, magnitude in bucket.items():
                blame[key] = blame.get(key, 0.0) + drop * magnitude / weight

        total = sum(blame.values())
        report = [
            ResourceBlame(
                resource=key,
                oscillations=oscillations.get(key, 0),
                updates=updates.get(key, 0),
                blame=blame.get(key, 0.0),
                share=(blame.get(key, 0.0) / total) if total > 0.0 else 0.0,
            )
            for key in sorted(
                updates, key=lambda key: (-blame.get(key, 0.0), key)
            )
        ]
        return report, unattributed

    # -- reporting ----------------------------------------------------------

    def to_dict(
        self,
        window: int = CONVERGENCE_WINDOW,
        rel_amplitude: float = CONVERGENCE_REL_AMPLITUDE,
    ) -> dict[str, Any]:
        """JSON-ready causal report (``repro trace causal --json``)."""
        path = self.critical_path(window, rel_amplitude)
        blames, unattributed = self.blame()
        payload: dict[str, Any] = {
            "events": self._events,
            "spans": len(self._spans),
            "roots": len(self.roots()),
            "iterations": len(self._utilities),
            "unattributed_loss": unattributed,
            "blame": [
                {
                    "resource": entry.resource,
                    "oscillations": entry.oscillations,
                    "updates": entry.updates,
                    "blame": entry.blame,
                    "share": entry.share,
                }
                for entry in blames
            ],
        }
        if path is None:
            payload["critical_path"] = None
        else:
            payload["critical_path"] = {
                "stable_iteration": path.stable_iteration,
                "stable_at": path.stable_at,
                "start": path.start,
                "time_to_stability": path.time_to_stability,
                "total_latency": path.total_latency,
                "closing_wait": path.closing_wait,
                "by_agent": path.by_agent(),
                "hops": [
                    {
                        "span_id": hop.span.span_id,
                        "kind": hop.span.kind,
                        "agent": hop.span.agent,
                        "sender": hop.span.sender,
                        "payload": hop.span.payload,
                        "at": hop.span.at,
                        "wait": hop.wait,
                    }
                    for hop in path.hops
                ],
            }
        return payload


def render_causal_report(
    graph: CausalGraph,
    window: int = CONVERGENCE_WINDOW,
    rel_amplitude: float = CONVERGENCE_REL_AMPLITUDE,
    max_hops: int = 20,
) -> str:
    """Human-readable causal report (the ``repro trace causal`` output)."""
    lines = [
        f"causal graph: {len(graph.spans)} span(s) over "
        f"{graph.events_seen} event(s), {len(graph.roots())} root(s), "
        f"{graph.iterations} iteration sample(s)"
    ]
    path = graph.critical_path(window, rel_amplitude)
    if path is None:
        lines.append(
            "critical path: n/a (utility not stable, or capture has no "
            "causal spans — re-record with a PR-5 runtime)"
        )
    else:
        lines.append(
            f"critical path: {len(path.hops)} hop(s), total latency "
            f"{path.total_latency:g} = time-to-stability "
            f"{path.time_to_stability:g} (stable at iteration "
            f"{path.stable_iteration}, t={path.stable_at:g})"
        )
        shown = path.hops[-max_hops:]
        if len(path.hops) > len(shown):
            lines.append(f"  ... {len(path.hops) - len(shown)} earlier hop(s)")
        for hop in shown:
            lines.append(
                f"  +{hop.wait:8.3f}  t={hop.span.at:10.3f}  "
                f"{hop.span.describe()}"
            )
        lines.append(f"  +{path.closing_wait:8.3f}  stable sample")
        top = list(path.by_agent().items())[:5]
        if top:
            lines.append(
                "  path time by agent: "
                + ", ".join(f"{agent} {wait:g}" for agent, wait in top)
            )
    blames, unattributed = graph.blame()
    if blames:
        lines.append("blame attribution (utility loss from price oscillations):")
        for entry in blames:
            lines.append(
                f"  {entry.resource}: {entry.blame:,.2f} ({entry.share:.1%}) "
                f"over {entry.oscillations} oscillation(s) / "
                f"{entry.updates} update(s)"
            )
        lines.append(f"  unattributed (no price reversal): {unattributed:,.2f}")
    else:
        lines.append("blame attribution: no price updates in capture")
    return "\n".join(lines)
