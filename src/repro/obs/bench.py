"""``repro.obs.bench`` — benchmark trajectory artifact + regression watchdog.

The perf suites under ``benchmarks/`` each archive a ``BENCH_*.json``
with their raw numbers (engine speedups, telemetry overhead, fault
recovery).  This module consolidates those per-suite artifacts into one
flat *trajectory* snapshot — ``{"metrics": {"engines.workloads.3.speedup":
3.72, ...}}`` — and diffs two snapshots, flagging metric movements past a
threshold as regressions or improvements.

Direction is inferred from the metric name: latencies/overheads
(``*_ns``, ``*overhead*``, ``*time*``...) regress when they go *up*,
speedups/retention regress when they go *down*, and metrics with no
recognizable direction are reported as neutral ``changes`` (never
regressions — a watchdog that cries wolf on renamed counters gets
deleted from CI within a month).

When a latency-like metric regresses and both snapshots carry profiler
phase metrics (``*.self_seconds``, from ``repro profile`` /
``BENCH_profile.json``), the comparison also ranks the phases whose
exclusive time grew the most — *regression blame* — so the report names
the slow phase, not just the slow total.

CLI surface: ``repro bench snapshot`` writes the trajectory artifact,
``repro bench compare <old> <new>`` reports the diff (CI runs it as a
non-blocking step; ``--strict`` turns regressions into a failing exit).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.utility.tolerance import is_zero

__all__ = [
    "BenchComparison",
    "MetricDelta",
    "PhaseBlame",
    "collect_metrics",
    "compare_snapshots",
    "consolidate",
    "metric_direction",
    "render_comparison",
]

#: Default movement (relative) past which a metric is flagged.
DEFAULT_THRESHOLD = 0.10

#: Tags marking a metric where *up is worse* (latency/deficit-like;
#: ``loss``/``drop`` cover deficit metrics such as ``utility_loss`` and
#: ``retention_drop``)...
_LOWER_IS_BETTER = (
    "_ns",
    "overhead",
    "time",
    "lost",
    "stale",
    "downtime",
    "misses",
    "loss",
    "drop",
)
#: ...and where *down is worse* (throughput-like; ``hit_rate``/``hits``
#: cover the sweep farm's cache effectiveness).
_HIGHER_IS_BETTER = ("speedup", "retention", "utility", "throughput", "hit_rate", "hits")


def _match_strength(leaf: str, tags: tuple[str, ...]) -> int:
    """How strongly ``leaf`` matches a tag family.

    3 = exact leaf match, 2 = suffix match (the trailing word), 1 = bare
    substring, 0 = no match.  Stronger match kinds always outrank weaker
    ones so the family whose tag *ends* the name wins over one merely
    mentioned inside it.
    """
    best = 0
    for tag in tags:
        bare = tag.lstrip("_")
        if leaf == bare:
            return 3
        if leaf.endswith(tag) or leaf.endswith(f"_{bare}"):
            best = max(best, 2)
        elif bare in leaf:
            best = max(best, 1)
    return best


def metric_direction(name: str) -> str:
    """``"lower"`` | ``"higher"`` (is better) | ``"neutral"``.

    The last path segment decides, so ``faults.single_crash.cold.
    recovery_time`` is latency-like even though the prefix is not.
    Exact and suffix tag matches take precedence over substring hits —
    ``utility_loss`` is a deficit (lower is better) even though it
    mentions ``utility`` — and an unresolvable tie between the families
    is reported neutral rather than guessed.
    """
    leaf = name.rsplit(".", 1)[-1].lower()
    lower = _match_strength(leaf, _LOWER_IS_BETTER)
    higher = _match_strength(leaf, _HIGHER_IS_BETTER)
    if lower > higher:
        return "lower"
    if higher > lower:
        return "higher"
    return "neutral"


def collect_metrics(payload: Any, prefix: str = "") -> dict[str, float]:
    """Flatten every finite numeric leaf of a JSON payload.

    Keys join with ``.``; list elements use their index.  Booleans and
    non-finite floats are skipped — they are flags and sentinels, not
    performance metrics.
    """
    metrics: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            metrics.update(collect_metrics(value, path))
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            path = f"{prefix}.{index}" if prefix else str(index)
            metrics.update(collect_metrics(value, path))
    elif isinstance(payload, bool):
        pass
    elif isinstance(payload, (int, float)):
        value = float(payload)
        if math.isfinite(value):
            metrics[prefix] = value
    return metrics


def consolidate(results_dir: str | Path) -> dict[str, Any]:
    """Merge every ``BENCH_*.json`` under ``results_dir`` into one snapshot.

    Metric names are prefixed with the suite name (``BENCH_engines.json``
    -> ``engines.``).  Unparseable artifacts are reported in ``skipped``
    instead of aborting the snapshot — one corrupt suite must not cost
    the trajectory of the others.
    """
    directory = Path(results_dir)
    metrics: dict[str, float] = {}
    suites: list[str] = []
    skipped: list[str] = []
    for path in sorted(directory.glob("BENCH_*.json")):
        suite = path.stem.removeprefix("BENCH_")
        if suite == "trajectory":
            continue  # never fold a snapshot into itself
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            skipped.append(path.name)
            continue
        suites.append(suite)
        metrics.update(collect_metrics(payload, suite))
    return {
        "version": 1,
        "suites": suites,
        "skipped": skipped,
        "metrics": {name: metrics[name] for name in sorted(metrics)},
    }


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between two snapshots."""

    name: str
    old: float
    new: float
    #: Relative change ``(new - old) / |old|``; ``inf`` when old == 0.
    change: float
    direction: str  # "lower" | "higher" | "neutral"

    @property
    def is_regression(self) -> bool:
        if self.direction == "lower":
            return self.change > 0.0
        if self.direction == "higher":
            return self.change < 0.0
        return False


@dataclass(frozen=True)
class PhaseBlame:
    """One profiler phase implicated in a wall-clock regression.

    ``metric`` is the full ``*.self_seconds`` metric name, ``phase`` its
    dotted phase path (``solve.iteration.argmax``), ``delta_seconds`` the
    absolute self-time growth and ``change`` the relative one.
    """

    phase: str
    metric: str
    old: float
    new: float
    delta_seconds: float
    change: float


@dataclass(frozen=True)
class BenchComparison:
    """Diff of two trajectory snapshots at one threshold."""

    threshold: float
    regressions: tuple[MetricDelta, ...]
    improvements: tuple[MetricDelta, ...]
    changes: tuple[MetricDelta, ...]  # neutral-direction movements
    stable: int
    missing: tuple[str, ...]  # in old only
    added: tuple[str, ...]  # in new only
    #: Phase self-times that grew the most, ranked — populated only when a
    #: latency-like metric regressed and both snapshots carry phase data.
    blame: tuple[PhaseBlame, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        def rows(deltas: tuple[MetricDelta, ...]) -> list[dict[str, Any]]:
            return [
                {
                    "metric": delta.name,
                    "old": delta.old,
                    "new": delta.new,
                    "change": delta.change,
                    "direction": delta.direction,
                }
                for delta in deltas
            ]

        return {
            "threshold": self.threshold,
            "regressions": rows(self.regressions),
            "improvements": rows(self.improvements),
            "changes": rows(self.changes),
            "stable": self.stable,
            "missing": list(self.missing),
            "added": list(self.added),
            "blame": [
                {
                    "phase": entry.phase,
                    "metric": entry.metric,
                    "old": entry.old,
                    "new": entry.new,
                    "delta_seconds": entry.delta_seconds,
                    "change": entry.change,
                }
                for entry in self.blame
            ],
        }


def _metrics_of(snapshot: dict[str, Any]) -> dict[str, float]:
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, dict):
        # A raw BENCH_*.json handed directly to compare: flatten it.
        return collect_metrics(snapshot)
    return {
        str(name): float(value)
        for name, value in metrics.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


#: Metric suffix identifying a profiler phase's exclusive time.
_PHASE_SELF_SUFFIX = ".self_seconds"

#: How many phases a blame report names, most-moved first.
_BLAME_LIMIT = 5


def _phase_label(metric: str) -> str:
    """``profile.phases.solve.iteration.argmax.self_seconds`` -> dotted phase."""
    label = metric.removesuffix(_PHASE_SELF_SUFFIX)
    if ".phases." in label:
        label = label.split(".phases.", 1)[1]
    return label


def _blame_phases(
    old_metrics: dict[str, float], new_metrics: dict[str, float]
) -> tuple[PhaseBlame, ...]:
    """Rank the phases whose self-time grew, largest absolute growth first.

    Only phases present in both snapshots participate — a phase that
    appeared or vanished is a code change, not a slowdown to attribute.
    """
    entries: list[PhaseBlame] = []
    for name in set(old_metrics) & set(new_metrics):
        if not name.endswith(_PHASE_SELF_SUFFIX):
            continue
        before, after = old_metrics[name], new_metrics[name]
        delta = after - before
        if delta <= 0.0:
            continue
        entries.append(
            PhaseBlame(
                phase=_phase_label(name),
                metric=name,
                old=before,
                new=after,
                delta_seconds=delta,
                change=math.inf if is_zero(before) else delta / abs(before),
            )
        )
    entries.sort(key=lambda entry: (-entry.delta_seconds, entry.metric))
    return tuple(entries[:_BLAME_LIMIT])


def compare_snapshots(
    old: dict[str, Any],
    new: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """Diff two snapshots (trajectory form, or raw ``BENCH_*`` payloads)."""
    if threshold <= 0.0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    old_metrics = _metrics_of(old)
    new_metrics = _metrics_of(new)
    regressions: list[MetricDelta] = []
    improvements: list[MetricDelta] = []
    changes: list[MetricDelta] = []
    stable = 0
    for name in sorted(set(old_metrics) & set(new_metrics)):
        before, after = old_metrics[name], new_metrics[name]
        if before == after:
            stable += 1
            continue
        change = (
            math.inf if is_zero(before) else (after - before) / abs(before)
        )
        if abs(change) <= threshold:
            stable += 1
            continue
        delta = MetricDelta(
            name=name,
            old=before,
            new=after,
            change=change,
            direction=metric_direction(name),
        )
        if delta.is_regression:
            regressions.append(delta)
        elif delta.direction == "neutral":
            changes.append(delta)
        else:
            improvements.append(delta)
    regressions.sort(key=lambda delta: -abs(delta.change))
    improvements.sort(key=lambda delta: -abs(delta.change))
    changes.sort(key=lambda delta: -abs(delta.change))
    blame: tuple[PhaseBlame, ...] = ()
    if any(delta.direction == "lower" for delta in regressions):
        blame = _blame_phases(old_metrics, new_metrics)
    return BenchComparison(
        threshold=threshold,
        regressions=tuple(regressions),
        improvements=tuple(improvements),
        changes=tuple(changes),
        stable=stable,
        missing=tuple(sorted(set(old_metrics) - set(new_metrics))),
        added=tuple(sorted(set(new_metrics) - set(old_metrics))),
        blame=blame,
    )


def _format_change(change: float) -> str:
    return "new-from-zero" if math.isinf(change) else f"{change:+.1%}"


def render_comparison(comparison: BenchComparison) -> str:
    """Human-readable diff (the ``repro bench compare`` output)."""
    lines = [
        f"benchmark comparison (threshold {comparison.threshold:.0%}): "
        f"{len(comparison.regressions)} regression(s), "
        f"{len(comparison.improvements)} improvement(s), "
        f"{len(comparison.changes)} neutral change(s), "
        f"{comparison.stable} stable"
    ]
    for title, deltas in (
        ("regressions", comparison.regressions),
        ("improvements", comparison.improvements),
        ("changes", comparison.changes),
    ):
        if not deltas:
            continue
        lines.append(f"{title}:")
        for delta in deltas:
            arrow = "worse" if delta.is_regression else (
                "better" if delta.direction != "neutral" else "moved"
            )
            lines.append(
                f"  {delta.name}: {delta.old:g} -> {delta.new:g} "
                f"({_format_change(delta.change)}, {arrow})"
            )
    if comparison.blame:
        lines.append("regression blame (phase self-time growth):")
        for entry in comparison.blame:
            lines.append(
                f"  {entry.phase}: {entry.old:g}s -> {entry.new:g}s "
                f"(+{entry.delta_seconds:g}s, {_format_change(entry.change)})"
            )
    if comparison.missing:
        lines.append(
            f"missing in new: {', '.join(comparison.missing[:10])}"
            + (" ..." if len(comparison.missing) > 10 else "")
        )
    if comparison.added:
        lines.append(
            f"added in new: {', '.join(comparison.added[:10])}"
            + (" ..." if len(comparison.added) > 10 else "")
        )
    return "\n".join(lines)
