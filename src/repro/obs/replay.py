"""``repro.obs.replay`` — deterministic trace replay (time-travel debugging).

A v2 JSONL capture carries, event by event, every write into the
deployed state: ``agent_exchange`` events record the emitting agent's
post-activation state (rate / price / populations), ``agent_restarted``
events the state a crashed agent was restored with, ``fault_injected``
events which agents are down, and ``iteration`` events the sampled
utility (plus full snapshots for reference-driver traces recorded with
``--snapshots``).  Replaying is therefore a pure left-fold: apply the
first *k* events and you hold exactly the global state the live run had
at that point — bit-identical floats, no re-execution, no model access.

That is the time-travel debugger for chaos runs: capture once with
``repro trace run --engine async -o run.jsonl``, then seek anywhere with
``repro replay run.jsonl --at K`` and inspect the rates, populations and
prices the system was actually deploying the moment a fault landed.

Fidelity contract: :meth:`ReplayEngine.state` mirrors the runtimes'
``allocation()`` / price views at every event boundary, with one
documented coarseness — an agent that never activated (or restarted)
inside the captured window has no recorded state, so it is simply absent
until its first event.  The integration tests pin bit-identical final
state against live synchronous *and* fault-injected asynchronous runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.obs.events import (
    AgentExchangeEvent,
    AgentRestartedEvent,
    FaultInjectedEvent,
    IterationEvent,
    MessageEvent,
    TraceEvent,
)

__all__ = ["ReplayEngine", "ReplayError", "ReplayState", "render_state"]


class ReplayError(ValueError):
    """Raised on out-of-range seeks or unusable captures."""


@dataclass(frozen=True)
class ReplayState:
    """Reconstructed global state after applying ``index`` events.

    ``populations`` applies the same rule as the live runtimes'
    ``allocation()``: classes hosted on a currently-crashed node agent
    report 0 (their consumers are disconnected while the agent is down);
    crashed sources keep their last deployed rate (the data plane keeps
    forwarding — only the control agent died).
    """

    index: int
    #: Latest simulated time observed (activation stamps, delivery and
    #: fault times); 0.0 until any timed event appears.
    time: float
    utility: float | None
    rates: dict[str, float]
    populations: dict[str, int]
    node_prices: dict[str, float]
    link_prices: dict[str, float]
    #: Agent addresses currently crashed.
    down: frozenset[str]

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "time": self.time,
            "utility": self.utility,
            "rates": dict(self.rates),
            "populations": dict(self.populations),
            "node_prices": dict(self.node_prices),
            "link_prices": dict(self.link_prices),
            "down": sorted(self.down),
        }


def _address_id(address: str, prefix: str) -> str | None:
    """``"src:fa" -> "fa"`` for the matching prefix, else ``None``."""
    head, _, tail = address.partition(":")
    if head == prefix and tail:
        return tail
    return None


class ReplayEngine:
    """Left-fold over a captured event stream with random seek.

    Events are materialized once; forward seeks apply incrementally,
    backward seeks replay from the start (the fold is cheap — a few
    dict writes per event — so a full rewind of even a chaos-length
    capture is instantaneous next to re-running the simulation).

    For endless live streams, :meth:`ingest` folds events in one at a
    time *without* retaining them — constant memory, at the price of
    seeking (see its docstring).
    """

    def __init__(self, events: Iterable[TraceEvent] = ()) -> None:
        self._events: list[TraceEvent] = list(events)
        self._streaming = False
        self._reset()

    def _reset(self) -> None:
        self._cursor = 0
        self._time = 0.0
        self._utility: float | None = None
        self._rates: dict[str, float] = {}
        self._populations: dict[str, int] = {}
        self._node_prices: dict[str, float] = {}
        self._link_prices: dict[str, float] = {}
        self._down: set[str] = set()
        #: class id -> hosting node agent address (learned from events).
        self._owners: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._events)

    @property
    def cursor(self) -> int:
        """Events applied so far."""
        return self._cursor

    # -- the fold -----------------------------------------------------------

    def _touch_time(self, at: float | None) -> None:
        if at is not None and at > self._time:
            self._time = at

    def _apply(self, event: TraceEvent) -> None:
        if isinstance(event, AgentExchangeEvent):
            self._touch_time(event.stamp)
            self._apply_agent_state(
                event.agent, event.rate, event.price, event.populations
            )
        elif isinstance(event, AgentRestartedEvent):
            self._touch_time(event.at)
            self._down.discard(event.agent)
            self._apply_agent_state(
                event.agent, event.rate, event.price, event.populations
            )
        elif isinstance(event, FaultInjectedEvent):
            self._touch_time(event.at)
            if event.fault == "crash":
                self._down.add(event.target)
        elif isinstance(event, IterationEvent):
            self._touch_time(event.at)
            self._utility = event.utility
            # Reference-driver traces with --snapshots carry the whole
            # state per iteration; fold it in wholesale.
            if event.rates is not None:
                self._rates.update(event.rates)
            if event.populations is not None:
                self._populations.update(event.populations)
            if event.node_prices is not None:
                self._node_prices.update(event.node_prices)
            if event.link_prices is not None:
                self._link_prices.update(event.link_prices)
        elif isinstance(event, MessageEvent):
            self._touch_time(event.at)

    def _apply_agent_state(
        self,
        address: str,
        rate: float | None,
        price: float | None,
        populations: dict[str, int] | None,
    ) -> None:
        flow_id = _address_id(address, "src")
        if flow_id is not None and rate is not None:
            self._rates[flow_id] = rate
            return
        node_id = _address_id(address, "node")
        if node_id is not None:
            if price is not None:
                self._node_prices[node_id] = price
            if populations is not None:
                self._populations.update(populations)
                for class_id in populations:
                    self._owners[class_id] = address
            return
        link_id = _address_id(address, "link")
        if link_id is not None and price is not None:
            self._link_prices[link_id] = price

    # -- streaming ----------------------------------------------------------

    def ingest(self, event: TraceEvent) -> None:
        """Fold one live event in without retaining it.

        This is the bounded-memory path for endless streams (``repro
        trace show --follow``): the fold state stays a handful of dicts
        no matter how many events pass through.  Ingesting puts the
        engine in *streaming* mode — discarded events cannot be
        re-applied, so backward :meth:`seek` raises :class:`ReplayError`.
        """
        self._streaming = True
        self._apply(event)
        self._cursor += 1

    # -- seeking ------------------------------------------------------------

    def step(self) -> ReplayState:
        """Apply the next event; returns the state after it."""
        if self._cursor >= len(self._events):
            raise ReplayError(
                f"capture exhausted after {len(self._events)} event(s)"
            )
        self._apply(self._events[self._cursor])
        self._cursor += 1
        return self.state()

    def seek(self, index: int) -> ReplayState:
        """State after the first ``index`` events (0 = nothing applied).

        Negative indices count from the end, ``len(engine)`` (or ``-0``
        via :meth:`final`) is the fully-applied capture.
        """
        if index < 0:
            index += len(self._events)
        if self._streaming:
            if index == self._cursor:
                return self.state()
            raise ReplayError(
                "cannot seek a streaming replay: ingested events are "
                "not retained"
            )
        if not 0 <= index <= len(self._events):
            raise ReplayError(
                f"event index {index} out of range for a capture of "
                f"{len(self._events)} event(s)"
            )
        if index < self._cursor:
            self._reset()
        while self._cursor < index:
            self._apply(self._events[self._cursor])
            self._cursor += 1
        return self.state()

    def final(self) -> ReplayState:
        """State with the whole capture applied."""
        return self.seek(len(self._events))

    def state(self) -> ReplayState:
        """Snapshot of the current fold position."""
        populations = {
            class_id: (
                0 if self._owners.get(class_id) in self._down else count
            )
            for class_id, count in self._populations.items()
        }
        return ReplayState(
            index=self._cursor,
            time=self._time,
            utility=self._utility,
            rates=dict(self._rates),
            populations=populations,
            node_prices=dict(self._node_prices),
            link_prices=dict(self._link_prices),
            down=frozenset(self._down),
        )


def render_state(state: ReplayState, total_events: int | None = None) -> str:
    """Human-readable replay snapshot (the ``repro replay`` output)."""
    position = (
        f"{state.index}" if total_events is None
        else f"{state.index}/{total_events}"
    )
    lines = [f"replayed:    {position} event(s), t={state.time:g}"]
    if state.utility is not None:
        lines.append(f"utility:     {state.utility:,.2f}")
    if state.rates:
        lines.append("rates:")
        for flow_id in sorted(state.rates):
            lines.append(f"  {flow_id}: {state.rates[flow_id]:.6f}")
    if state.populations:
        admitted = {
            class_id: count
            for class_id, count in sorted(state.populations.items())
            if count
        }
        lines.append(
            "populations: "
            + (
                ", ".join(f"{c}={n}" for c, n in admitted.items())
                if admitted
                else "(all zero)"
            )
        )
    if state.node_prices:
        lines.append("node prices:")
        for node_id in sorted(state.node_prices):
            lines.append(f"  {node_id}: {state.node_prices[node_id]:.6f}")
    if state.link_prices:
        lines.append("link prices:")
        for link_id in sorted(state.link_prices):
            lines.append(f"  {link_id}: {state.link_prices[link_id]:.6f}")
    if state.down:
        lines.append(f"down agents: {', '.join(sorted(state.down))}")
    return "\n".join(lines)
