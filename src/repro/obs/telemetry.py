"""The telemetry handle threaded through optimizer, runtimes and simulator.

One :class:`Telemetry` object bundles the two halves of the layer — a
:class:`~repro.obs.registry.MetricsRegistry` (numbers) and a
:class:`~repro.obs.sinks.TraceSink` (events) — so instrumented code takes
a single optional dependency.  The module-level :data:`NULL_TELEMETRY`
is the default everywhere: its registry hands out no-op singletons and
its ``emit`` discards, so the uninstrumented fast path stays
allocation-free (callers guard event *construction* behind
``telemetry.enabled``).

Price controllers and γ schedules are instrumented through
:class:`PriceProbe` — a tiny bound emitter attached per resource, so the
controllers never learn about problems, node ids or registries.
"""

from __future__ import annotations

from repro.obs.events import (
    GammaStepEvent,
    PriceUpdateEvent,
    TraceEvent,
    now_ns,
)
from repro.obs.profile import NULL_PROFILER, PhaseProfiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.sinks import MemorySink, NullSink, TraceSink


class Telemetry:
    """A registry + sink (+ optional profiler) bundle handed through the stack.

    ``Telemetry()`` is the convenient "collect everything in memory"
    configuration used by tests and the CLI; pass an explicit sink
    (JSONL, CSV) for archival capture.  ``profiler`` defaults to the
    no-op :data:`~repro.obs.profile.NULL_PROFILER`; pass a
    :class:`~repro.obs.profile.PhaseProfiler` to collect the hierarchical
    phase breakdown (``repro profile`` does).
    """

    __slots__ = ("registry", "sink", "enabled", "profiler")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sink: TraceSink | None = None,
        enabled: bool = True,
        profiler: PhaseProfiler | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink if sink is not None else MemorySink()
        self.enabled = enabled
        self.profiler = profiler if profiler is not None else NULL_PROFILER

    def emit(self, event: TraceEvent) -> None:
        self.sink.emit(event)

    def probe(self, resource_kind: str, resource: str) -> "PriceProbe | None":
        """A bound per-resource probe, or ``None`` when disabled.

        The ``None`` return is the zero-cost path: controllers guard on
        ``if self.probe is not None`` and skip event construction
        entirely.
        """
        if not self.enabled:
            return None
        return PriceProbe(self, resource_kind, resource)

    def close(self) -> None:
        self.sink.close()


class _NullTelemetry(Telemetry):
    """The disabled default: shared no-op registry, discarding sink."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(
            registry=NULL_REGISTRY,
            sink=NullSink(),
            enabled=False,
            profiler=NULL_PROFILER,
        )

    def emit(self, event: TraceEvent) -> None:
        pass


NULL_TELEMETRY: Telemetry = _NullTelemetry()


class PriceProbe:
    """Per-resource emitter attached to one price controller / γ schedule.

    Bound to ``(resource_kind, resource)`` at attach time so the hot
    update path only supplies the numbers it already has in registers.
    """

    __slots__ = ("_telemetry", "resource_kind", "resource")

    def __init__(self, telemetry: Telemetry, resource_kind: str, resource: str) -> None:
        self._telemetry = telemetry
        self.resource_kind = resource_kind
        self.resource = resource

    def price_update(
        self,
        old_price: float,
        new_price: float,
        step: float,
        branch: str,
        usage: float | None = None,
        capacity: float | None = None,
    ) -> None:
        """Record one eq. 12/13 application (called by the controllers)."""
        self._telemetry.emit(
            PriceUpdateEvent(
                resource_kind=self.resource_kind,
                resource=self.resource,
                old_price=old_price,
                new_price=new_price,
                step=step,
                branch=branch,
                usage=usage,
                capacity=capacity,
                t_ns=now_ns(),
            )
        )
        self._telemetry.registry.counter(
            f"prices.updates.{self.resource_kind}"
        ).inc()

    def gamma_step(self, old_gamma: float, new_gamma: float, fluctuated: bool) -> None:
        """Record one adaptive step-size change (section 4.2)."""
        self._telemetry.emit(
            GammaStepEvent(
                resource=self.resource,
                old_gamma=old_gamma,
                new_gamma=new_gamma,
                fluctuated=fluctuated,
                t_ns=now_ns(),
            )
        )
        if fluctuated:
            self._telemetry.registry.counter("gamma.fluctuations").inc()
