"""``repro.obs`` — the unified telemetry layer.

Pure-stdlib observability substrate shared by the LRGP core, both
runtimes and the event simulator (see docs/observability.md):

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms
  and ``timer()`` profiling hooks;
* typed trace events + sinks (:class:`MemorySink`, :class:`JsonlSink`,
  :class:`CsvSink`) behind the :class:`TraceSink` protocol;
* :class:`Telemetry` — the registry+sink bundle instrumented code takes
  as one optional dependency, defaulting to the allocation-free
  :data:`NULL_TELEMETRY`;
* :class:`ConvergenceDiagnostics` — oscillation counts, constraint
  residuals, utility-gap-to-bound and time-to-tolerance from a captured
  event stream;
* causal tracing (:mod:`repro.obs.causal`) — span context propagated by
  the runtimes, plus the :class:`CausalGraph` critical-path / blame
  analysis over any capture;
* deterministic trace replay (:mod:`repro.obs.replay`) — re-materialize
  the deployed state at any event index of a schema-v2 JSONL capture;
* benchmark trajectory + regression watchdog with phase-level blame
  (:mod:`repro.obs.bench`);
* hierarchical phase profiling with flamegraph / speedscope export
  (:mod:`repro.obs.profile`), off by default via :data:`NULL_PROFILER`;
* Prometheus-text and JSON snapshot exporters.

This package imports nothing from ``repro.core`` / ``repro.runtime`` /
``repro.events`` — it is the layer those packages sit on.
"""

from repro.obs.bench import (
    BenchComparison,
    MetricDelta,
    PhaseBlame,
    compare_snapshots,
    consolidate,
    render_comparison,
)
from repro.obs.causal import (
    ActivationSpan,
    CausalContext,
    CausalGraph,
    CriticalHop,
    CriticalPath,
    ResourceBlame,
    Span,
    render_causal_report,
)
from repro.obs.diagnostics import (
    ConvergenceDiagnostics,
    DiagnosticsReport,
    ResourceDiagnostics,
    count_oscillations,
    diagnostics_to_dict,
    render_diagnostics,
)
from repro.obs.events import (
    EVENT_TYPES,
    TRACE_SCHEMA_VERSION,
    AdmissionEvent,
    AgentExchangeEvent,
    AgentRestartedEvent,
    FaultInjectedEvent,
    GammaStepEvent,
    IterationEvent,
    MessageEvent,
    PriceUpdateEvent,
    TraceEvent,
    TraceEventError,
    event_from_dict,
    now_ns,
)
from repro.obs.export import (
    render_metrics,
    sanitize_metric_name,
    snapshot_from_dict,
    snapshot_to_dict,
    to_json,
    to_prometheus_text,
)
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    PhaseStat,
    ProfileReport,
    merge_reports,
    register_phase_metrics,
    render_report,
    report_from_dict,
    to_collapsed,
    to_collapsed_diff,
    to_speedscope,
)
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    DEFAULT_VALUE_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsError,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    Timer,
)
from repro.obs.replay import ReplayEngine, ReplayError, ReplayState, render_state
from repro.obs.sinks import (
    NULL_SINK,
    CsvSink,
    JsonlSink,
    MemorySink,
    NullSink,
    TraceSink,
    format_cell,
    open_trace,
    read_jsonl,
    render_csv,
)
from repro.obs.telemetry import NULL_TELEMETRY, PriceProbe, Telemetry

__all__ = [
    "EVENT_TYPES",
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "NULL_SINK",
    "NULL_TELEMETRY",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_VALUE_BUCKETS",
    "TRACE_SCHEMA_VERSION",
    "ActivationSpan",
    "AdmissionEvent",
    "AgentExchangeEvent",
    "AgentRestartedEvent",
    "BenchComparison",
    "CausalContext",
    "CausalGraph",
    "ConvergenceDiagnostics",
    "Counter",
    "CriticalHop",
    "CriticalPath",
    "CsvSink",
    "DiagnosticsReport",
    "FaultInjectedEvent",
    "Gauge",
    "GammaStepEvent",
    "Histogram",
    "HistogramSnapshot",
    "IterationEvent",
    "JsonlSink",
    "MemorySink",
    "MessageEvent",
    "MetricDelta",
    "MetricsError",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullProfiler",
    "NullRegistry",
    "NullSink",
    "PhaseBlame",
    "PhaseProfiler",
    "PhaseStat",
    "PriceProbe",
    "PriceUpdateEvent",
    "ProfileReport",
    "ReplayEngine",
    "ReplayError",
    "ReplayState",
    "ResourceBlame",
    "ResourceDiagnostics",
    "Span",
    "Telemetry",
    "Timer",
    "TraceEvent",
    "TraceEventError",
    "TraceSink",
    "compare_snapshots",
    "consolidate",
    "count_oscillations",
    "diagnostics_to_dict",
    "event_from_dict",
    "format_cell",
    "merge_reports",
    "now_ns",
    "open_trace",
    "read_jsonl",
    "register_phase_metrics",
    "render_causal_report",
    "render_csv",
    "render_diagnostics",
    "render_metrics",
    "render_report",
    "render_state",
    "report_from_dict",
    "sanitize_metric_name",
    "snapshot_from_dict",
    "snapshot_to_dict",
    "to_collapsed",
    "to_collapsed_diff",
    "to_json",
    "to_prometheus_text",
    "to_speedscope",
]
