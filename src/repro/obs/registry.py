"""Metrics primitives: counters, gauges, fixed-bucket histograms, timers.

The registry is the numeric half of the telemetry layer (events are the
other half, :mod:`repro.obs.events`).  Design constraints, in order:

1. **The disabled path is allocation-free.**  Every instrumented hot loop
   (one LRGP iteration, one runtime round, one simulator event) runs with
   the :class:`NullRegistry` by default; its ``counter()`` / ``timer()``
   accessors return shared no-op singletons, so instrumentation costs a
   couple of attribute lookups and nothing else.
2. **Pure stdlib, no locks.**  The optimizer and both runtimes are single
   threaded; the registry mirrors that and stays trivially fast.
3. **Values are validated like iterates.**  NaN or infinite observations
   are rejected with :class:`MetricsError`, mirroring the NaN/inf
   hardening of the price controllers — a poisoned metric is as useless
   as a poisoned price.

Histograms use fixed upper-bound buckets (Prometheus-style cumulative
export, see :mod:`repro.obs.export`); timers are histograms of seconds fed
from ``time.perf_counter_ns``.
"""

from __future__ import annotations

import functools
import math
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Any, TypeVar

_F = TypeVar("_F", bound=Callable[..., Any])

#: Default timer buckets, in seconds: 1µs .. 10s, one decade per bucket.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Default value buckets for plain histograms (decades around 1.0).
DEFAULT_VALUE_BUCKETS: tuple[float, ...] = (
    1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6,
)


class MetricsError(ValueError):
    """Raised on invalid metric values (NaN/inf/negative) or name clashes."""


def _require_finite(metric: str, value: float) -> float:
    """Reject NaN and infinities — consistent with the price hardening."""
    if not math.isfinite(value):
        raise MetricsError(f"{metric}: observation must be finite, got {value}")
    return value


class Counter:
    """A monotonically increasing count (events, messages, iterations)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        _require_finite(self.name, amount)
        if amount < 0.0:
            raise MetricsError(
                f"{self.name}: counters only go up, got increment {amount}"
            )
        self._value += amount


class Gauge:
    """A point-in-time value (current utility, queue depth, γ)."""

    __slots__ = ("name", "_value", "_set")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._set = False

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        _require_finite(self.name, value)
        self._value = value
        self._set = True


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable view of one histogram's state.

    ``buckets`` pairs each upper bound with its *cumulative* count (the
    Prometheus ``le`` convention); the implicit ``+Inf`` bucket equals
    ``count``.  ``low``/``high`` are the extreme observations (``None``
    for an empty window — snapshots never invent values).
    """

    name: str
    bounds: tuple[float, ...]
    buckets: tuple[int, ...]
    count: int
    total: float
    low: float | None
    high: float | None

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Combine two windows of the *same* histogram.

        Counts, totals and cumulative buckets add (the cumulative sum of
        a union is the sum of the cumulative sums); extremes take the
        min/max of whichever sides observed anything.  Bucket bounds are
        the histogram's identity — merging across different bounds would
        silently misbin, so it raises :class:`MetricsError` instead.
        """
        if self.bounds != other.bounds:
            raise MetricsError(
                f"{self.name}: cannot merge histograms with different "
                f"bucket bounds ({self.bounds} vs {other.bounds})"
            )
        lows = [v for v in (self.low, other.low) if v is not None]
        highs = [v for v in (self.high, other.high) if v is not None]
        return HistogramSnapshot(
            name=self.name,
            bounds=self.bounds,
            buckets=tuple(a + b for a, b in zip(self.buckets, other.buckets)),
            count=self.count + other.count,
            total=self.total + other.total,
            low=min(lows) if lows else None,
            high=max(highs) if highs else None,
        )


class Histogram:
    """Fixed-bucket histogram of finite observations."""

    __slots__ = ("name", "_bounds", "_counts", "_count", "_total", "_low", "_high")

    def __init__(self, name: str, bounds: Iterable[float] = DEFAULT_VALUE_BUCKETS) -> None:
        self.name = name
        ordered = tuple(bounds)
        if not ordered:
            raise MetricsError(f"{name}: histogram needs at least one bucket bound")
        for bound in ordered:
            _require_finite(name, bound)
        if any(b >= a for b, a in zip(ordered, ordered[1:])):
            raise MetricsError(
                f"{name}: bucket bounds must be strictly ascending, got {ordered}"
            )
        self._bounds = ordered
        self._counts = [0] * (len(ordered) + 1)  # +1 = overflow (+Inf) bucket
        self._count = 0
        self._total = 0.0
        self._low: float | None = None
        self._high: float | None = None

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    @property
    def count(self) -> int:
        return self._count

    def observe(self, value: float) -> None:
        _require_finite(self.name, value)
        index = len(self._bounds)
        for position, bound in enumerate(self._bounds):
            if value <= bound:
                index = position
                break
        self._counts[index] += 1
        self._count += 1
        self._total += value
        if self._low is None or value < self._low:
            self._low = value
        if self._high is None or value > self._high:
            self._high = value

    def snapshot(self) -> HistogramSnapshot:
        cumulative: list[int] = []
        running = 0
        for raw in self._counts[:-1]:
            running += raw
            cumulative.append(running)
        return HistogramSnapshot(
            name=self.name,
            bounds=self._bounds,
            buckets=tuple(cumulative),
            count=self._count,
            total=self._total,
            low=self._low,
            high=self._high,
        )


class Timer:
    """Times a block (``with registry.timer("x"):``) or a function
    (``@registry.timer("x")``), feeding seconds into a histogram."""

    __slots__ = ("_histogram", "_started_ns")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started_ns = 0

    def __enter__(self) -> "Timer":
        self._started_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed_ns = time.perf_counter_ns() - self._started_ns
        self._histogram.observe(elapsed_ns / 1e9)

    def __call__(self, func: _F) -> _F:
        histogram = self._histogram

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            started = time.perf_counter_ns()
            try:
                return func(*args, **kwargs)
            finally:
                histogram.observe((time.perf_counter_ns() - started) / 1e9)

        return wrapper  # type: ignore[return-value]


@dataclass(frozen=True)
class MetricsSnapshot:
    """One consistent view of every metric in a registry."""

    counters: dict[str, float]
    gauges: dict[str, float]
    histograms: dict[str, HistogramSnapshot]

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots into one farm-wide view.

        Counters *sum* (they count events, and events add across
        processes); gauges are *last-writer-wins* (``other`` is the later
        observation — a point-in-time value has no meaningful sum);
        histograms merge bucket-wise via :meth:`HistogramSnapshot.merge`.
        A name registered as different kinds on the two sides is the
        same poisoned state the registry's ``_claim`` guards against and
        raises :class:`MetricsError`.
        """
        for name in self.counters:
            if name in other.gauges or name in other.histograms:
                raise MetricsError(
                    f"metric {name!r} is a counter on one side of the "
                    "merge and a different kind on the other"
                )
        for name in self.gauges:
            if name in other.counters or name in other.histograms:
                raise MetricsError(
                    f"metric {name!r} is a gauge on one side of the "
                    "merge and a different kind on the other"
                )
        for name in self.histograms:
            if name in other.counters or name in other.gauges:
                raise MetricsError(
                    f"metric {name!r} is a histogram on one side of the "
                    "merge and a different kind on the other"
                )
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges = {**self.gauges, **other.gauges}
        histograms = dict(self.histograms)
        for name, snapshot in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = (
                snapshot if mine is None else mine.merge(snapshot)
            )
        return MetricsSnapshot(
            counters={name: counters[name] for name in sorted(counters)},
            gauges={name: gauges[name] for name in sorted(gauges)},
            histograms={
                name: histograms[name] for name in sorted(histograms)
            },
        )


class MetricsRegistry:
    """Namespace of counters, gauges and histograms, snapshot-able at any
    point.  Metric names are dotted lowercase (``lrgp.iteration``); one
    name maps to exactly one metric kind for its whole life."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _claim(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise MetricsError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        existing = self._counters.get(name)
        if existing is None:
            self._claim(name, "counter")
            existing = self._counters[name] = Counter(name)
        return existing

    def gauge(self, name: str) -> Gauge:
        existing = self._gauges.get(name)
        if existing is None:
            self._claim(name, "gauge")
            existing = self._gauges[name] = Gauge(name)
        return existing

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_VALUE_BUCKETS
    ) -> Histogram:
        existing = self._histograms.get(name)
        if existing is None:
            self._claim(name, "histogram")
            existing = self._histograms[name] = Histogram(name, bounds)
        return existing

    def timer(self, name: str) -> Timer:
        return Timer(self.histogram(name, DEFAULT_TIME_BUCKETS))

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={name: c.value for name, c in sorted(self._counters.items())},
            gauges={
                name: g.value for name, g in sorted(self._gauges.items()) if g._set
            },
            histograms={
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        )

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot (typically from another process) into this
        registry's live metrics.

        Counters add, gauges take the snapshot's value (it is the later
        observation), histograms de-cumulate the snapshot's Prometheus
        buckets back into per-bucket counts and add them in place.  Kind
        clashes surface through the usual ``_claim`` check; differing
        histogram bounds raise :class:`MetricsError` like
        :meth:`HistogramSnapshot.merge` does.
        """
        for name, value in snapshot.counters.items():
            self.counter(name).inc(value)
        for name, value in snapshot.gauges.items():
            self.gauge(name).set(value)
        for name, incoming in snapshot.histograms.items():
            histogram = self.histogram(name, incoming.bounds)
            if histogram.bounds != incoming.bounds:
                raise MetricsError(
                    f"{name}: cannot merge histograms with different "
                    f"bucket bounds ({histogram.bounds} vs "
                    f"{incoming.bounds})"
                )
            previous = 0
            for index, cumulative in enumerate(incoming.buckets):
                histogram._counts[index] += cumulative - previous
                previous = cumulative
            histogram._counts[-1] += incoming.count - previous
            histogram._count += incoming.count
            histogram._total += incoming.total
            if incoming.low is not None and (
                histogram._low is None or incoming.low < histogram._low
            ):
                histogram._low = incoming.low
            if incoming.high is not None and (
                histogram._high is None or incoming.high > histogram._high
            ):
                histogram._high = incoming.high


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def __enter__(self) -> "Timer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def __call__(self, func: _F) -> _F:
        return func


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null", (1.0,))
_NULL_TIMER = _NullTimer(_NULL_HISTOGRAM)


class NullRegistry(MetricsRegistry):
    """The default registry: every accessor returns a shared no-op
    singleton, so the uninstrumented fast path allocates nothing."""

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_VALUE_BUCKETS
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str) -> Timer:
        return _NULL_TIMER

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        # Merging into the shared no-op singletons would mutate global
        # state; the disabled registry discards, as everywhere else.
        pass


NULL_REGISTRY = NullRegistry()
