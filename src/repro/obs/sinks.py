"""Trace sinks: where typed events go.

A sink is anything with ``emit(event)`` and ``close()``
(:class:`TraceSink`).  Four implementations cover the repo's needs:

* :class:`NullSink` — the default; discards everything, costs nothing.
* :class:`MemorySink` — buffers events in a list for tests, diagnostics
  and the ``repro stats`` command.
* :class:`JsonlSink` — one JSON object per line, the lossless archival
  format (``event_from_dict`` round-trips every type).
* :class:`CsvSink` — flat tabular export; events are flattened via their
  ``flatten()`` mapping and the column set is the union of observed keys
  (or a caller-pinned ordered list, which is how ``repro.core.trace``
  keeps its documented column order stable).

Formatting discipline (the old ``core.trace`` inconsistency, fixed):
floats render with ``repr`` (lossless round-trip), ints with ``str``,
``None`` as the empty cell — one rule for every column.
"""

from __future__ import annotations

import csv
import gzip
import io
import json
from pathlib import Path
from typing import IO, Any, Iterator, Protocol, runtime_checkable

from repro.obs.events import TraceEvent, TraceEventError, event_from_dict


@runtime_checkable
class TraceSink(Protocol):
    """Anything that accepts a stream of trace events."""

    def emit(self, event: TraceEvent) -> None: ...

    def close(self) -> None: ...


class NullSink:
    """Discards every event; the allocation-free default."""

    __slots__ = ()

    def emit(self, event: TraceEvent) -> None:
        pass

    def close(self) -> None:
        pass


NULL_SINK = NullSink()


class MemorySink:
    """Buffers events in memory (tests, diagnostics, ``repro stats``)."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    def clear(self) -> None:
        self.events.clear()

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All buffered events with the given ``kind`` tag, in order."""
        return [event for event in self.events if event.kind == kind]


class _StreamSink:
    """Shared open/close plumbing for file- or stream-backed sinks."""

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._closed = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._finalize()
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def _finalize(self) -> None:
        """Hook for subclasses that buffer until close."""


class JsonlSink(_StreamSink):
    """One JSON object per event per line — the archival format.

    Rejects non-finite floats (``NaN``/``inf``) at emit time: Python's
    ``json`` would happily write them as bare ``NaN`` tokens, which are
    not JSON and poison every downstream reader of the capture.  A
    telemetry value that is not a number is a bug at the emitter — fail
    there, not three tools later.
    """

    def emit(self, event: TraceEvent) -> None:
        try:
            line = json.dumps(event.to_dict(), sort_keys=True, allow_nan=False)
        except ValueError as error:
            raise TraceEventError(
                f"non-finite float in {event.kind!r} event; JSONL captures "
                f"must be valid JSON: {error}"
            ) from error
        self._stream.write(line)
        self._stream.write("\n")


def open_trace(path: str | Path) -> IO[str]:
    """Open a JSONL capture for reading, transparently gunzipping.

    Detection is by content, not extension: a gzip member always starts
    with the magic bytes ``1f 8b``, so compressed captures work whatever
    they are named (``trace.jsonl.gz``, ``trace.jsonl``, ...).
    """
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == b"\x1f\x8b":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, encoding="utf-8")


def read_jsonl(source: str | Path | IO[str]) -> Iterator[TraceEvent]:
    """Parse a JSONL trace back into typed events (blank lines skipped).

    Paths may point at plain or gzip-compressed captures (see
    :func:`open_trace`).
    """
    if isinstance(source, (str, Path)):
        with open_trace(source) as stream:
            yield from read_jsonl(stream)
        return
    for line in source:
        text = line.strip()
        if text:
            yield event_from_dict(json.loads(text))


def format_cell(value: Any) -> str:
    """The one CSV formatting rule: floats ``repr``, ints ``str``,
    ``None`` empty, everything else ``str``."""
    if value is None:
        return ""
    if isinstance(value, bool):  # bool before int: it IS an int
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


class CsvSink(_StreamSink):
    """Tabular export of flattened events.

    Events are buffered and written on :meth:`close`, because the full
    column set (the union of every event's flattened keys) is only known
    once the stream ends.  Pass ``fieldnames`` to pin an explicit column
    order instead — unknown keys then raise, so a schema drift cannot
    silently reshuffle a documented format.  ``drop`` removes flattened
    keys before the unknown-key check (``repro.core.trace`` drops the
    ``type``/``t_ns`` envelope to keep its historical column set).
    """

    def __init__(
        self,
        target: str | Path | IO[str],
        fieldnames: list[str] | None = None,
        drop: tuple[str, ...] = (),
    ) -> None:
        super().__init__(target)
        self._fieldnames = list(fieldnames) if fieldnames is not None else None
        # Sorted tuple, not a set: emit() iterates this per event, and the
        # trace path must not depend on hash-seed iteration order (R11).
        self._drop = tuple(sorted(set(drop)))
        self._rows: list[dict[str, Any]] = []

    def emit(self, event: TraceEvent) -> None:
        row = event.flatten()
        for key in self._drop:
            row.pop(key, None)
        self._rows.append(row)

    def _finalize(self) -> None:
        if self._fieldnames is not None:
            header = self._fieldnames
            for row in self._rows:
                unknown = set(row) - set(header)
                if unknown:
                    raise ValueError(
                        f"event keys {sorted(unknown)} not in pinned CSV "
                        f"columns; extend fieldnames explicitly"
                    )
        else:
            seen: dict[str, None] = {}  # insertion-ordered set
            for row in self._rows:
                for key in row:
                    seen.setdefault(key)
            header = sorted(seen, key=lambda k: (k != "type", k))
        writer = csv.writer(self._stream, lineterminator="\n")
        writer.writerow(header)
        for row in self._rows:
            writer.writerow([format_cell(row.get(key)) for key in header])


def render_csv(events: Iterator[TraceEvent] | list[TraceEvent]) -> str:
    """Render an event stream as a CSV string (auto column union)."""
    buffer = io.StringIO()
    sink = CsvSink(buffer)
    for event in events:
        sink.emit(event)
    sink.close()
    return buffer.getvalue()
