"""Snapshot exporters: Prometheus text format and JSON.

``repro stats --format prometheus`` emits the standard text exposition
format (counters get a ``_total`` suffix, histograms the cumulative
``_bucket{le=...}`` / ``_sum`` / ``_count`` triple) so a scrape-based
stack ingests the snapshot unchanged.  ``--format json`` emits the same
data as one machine-readable object (stable schema, version-tagged like
the lint report).

Metric names are sanitized to the Prometheus charset and prefixed with
``repro_`` (``lrgp.iteration`` -> ``repro_lrgp_iteration``).
"""

from __future__ import annotations

import json
import re
from typing import Any

from repro.obs.registry import HistogramSnapshot, MetricsError, MetricsSnapshot

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_PREFIX = "repro_"


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus charset."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return _PREFIX + cleaned


def _format_value(value: float) -> str:
    """Prometheus renders integral floats without the trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _histogram_lines(name: str, snapshot: HistogramSnapshot) -> list[str]:
    lines = [f"# TYPE {name} histogram"]
    for bound, cumulative in zip(snapshot.bounds, snapshot.buckets):
        lines.append(f'{name}_bucket{{le="{repr(bound)}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {snapshot.count}')
    lines.append(f"{name}_sum {_format_value(snapshot.total)}")
    lines.append(f"{name}_count {snapshot.count}")
    return lines


def to_prometheus_text(snapshot: MetricsSnapshot) -> str:
    """Render a registry snapshot in the Prometheus text format."""
    lines: list[str] = []
    for raw_name, value in snapshot.counters.items():
        name = sanitize_metric_name(raw_name) + "_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(value)}")
    for raw_name, value in snapshot.gauges.items():
        name = sanitize_metric_name(raw_name)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(value)}")
    for raw_name, histogram in snapshot.histograms.items():
        lines.extend(_histogram_lines(sanitize_metric_name(raw_name), histogram))
    return "\n".join(lines) + ("\n" if lines else "")


def _histogram_dict(snapshot: HistogramSnapshot) -> dict[str, Any]:
    return {
        "count": snapshot.count,
        "sum": snapshot.total,
        "min": snapshot.low,
        "max": snapshot.high,
        "mean": snapshot.mean,
        "buckets": [
            [bound, cumulative]
            for bound, cumulative in zip(snapshot.bounds, snapshot.buckets)
        ],
    }


def snapshot_to_dict(snapshot: MetricsSnapshot) -> dict[str, Any]:
    """The JSON-ready form of a snapshot (see docs/observability.md)."""
    return {
        "version": 1,
        "counters": dict(snapshot.counters),
        "gauges": dict(snapshot.gauges),
        "histograms": {
            name: _histogram_dict(histogram)
            for name, histogram in snapshot.histograms.items()
        },
    }


def _histogram_from_dict(name: str, payload: Any) -> HistogramSnapshot:
    if not isinstance(payload, dict) or not isinstance(
        payload.get("buckets"), list
    ):
        raise MetricsError(f"{name}: malformed histogram payload")
    bounds: list[float] = []
    buckets: list[int] = []
    for pair in payload["buckets"]:
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise MetricsError(f"{name}: malformed histogram bucket {pair!r}")
        bound, cumulative = pair
        bounds.append(float(bound))
        buckets.append(int(cumulative))
    return HistogramSnapshot(
        name=name,
        bounds=tuple(bounds),
        buckets=tuple(buckets),
        count=int(payload.get("count", 0)),
        total=float(payload.get("sum", 0.0)),
        low=None if payload.get("min") is None else float(payload["min"]),
        high=None if payload.get("max") is None else float(payload["max"]),
    )


def snapshot_from_dict(payload: Any) -> MetricsSnapshot:
    """Rebuild a :class:`MetricsSnapshot` from :func:`snapshot_to_dict`
    output (an archived ``repro stats`` / sweep-telemetry artifact).

    The inverse direction exists so farm workers can ship snapshots as
    plain JSON and the parent can merge them; malformed payloads raise
    :class:`~repro.obs.registry.MetricsError` rather than producing a
    half-populated snapshot.
    """
    if not isinstance(payload, dict):
        raise MetricsError(
            f"metrics snapshot payload must be an object, got "
            f"{type(payload).__name__}"
        )
    counters = payload.get("counters", {})
    gauges = payload.get("gauges", {})
    histograms = payload.get("histograms", {})
    if (
        not isinstance(counters, dict)
        or not isinstance(gauges, dict)
        or not isinstance(histograms, dict)
    ):
        raise MetricsError("metrics snapshot payload has malformed sections")
    return MetricsSnapshot(
        counters={
            str(name): float(value) for name, value in sorted(counters.items())
        },
        gauges={
            str(name): float(value) for name, value in sorted(gauges.items())
        },
        histograms={
            str(name): _histogram_from_dict(str(name), value)
            for name, value in sorted(histograms.items())
        },
    )


def to_json(snapshot: MetricsSnapshot) -> str:
    """Render a registry snapshot as pretty-printed JSON."""
    return json.dumps(snapshot_to_dict(snapshot), indent=2, sort_keys=True)


def render_metrics(snapshot: MetricsSnapshot) -> str:
    """Human-readable snapshot block (the ``repro stats`` body)."""
    if snapshot.empty:
        return "metrics: (none recorded)"
    lines = ["metrics:"]
    for name, value in snapshot.counters.items():
        lines.append(f"  {name}: {_format_value(value)}")
    for name, value in snapshot.gauges.items():
        lines.append(f"  {name}: {value:g}")
    for name, histogram in snapshot.histograms.items():
        mean = histogram.mean
        if mean is None or histogram.low is None or histogram.high is None:
            lines.append(f"  {name}: no observations")
            continue
        lines.append(
            f"  {name}: n={histogram.count} mean={mean:.6g} "
            f"min={histogram.low:.6g} max={histogram.high:.6g}"
        )
    return "\n".join(lines)
