"""Typed trace events: the structured counterpart of the CSV dump.

Every interesting internal transition of the optimizer, the runtimes and
the event simulator maps to exactly one event type:

===============  ============================================================
``iteration``    one completed LRGP iteration / runtime round / async sample
``price_update`` one application of eq. 12 (node) or eq. 13 (link)
``gamma_step``   one adaptive step-size adjustment (section 4.2)
``admission``    one greedy consumer allocation at one node (Algorithm 2)
``message``      one protocol or pub/sub message handled by an engine
``agent_exchange`` one agent activation (messages emitted per ``act()``)
``fault_injected`` one scheduled fault taking effect (crash/partition/storm)
``agent_restarted`` one crashed agent rejoining (checkpoint or cold state)
===============  ============================================================

Events are frozen dataclasses with a ``kind`` tag and a monotonic
timestamp (``t_ns``, from :func:`time.monotonic_ns`) so downstream tools
can order and interval-time them without trusting wall clocks.  They
serialize losslessly through ``to_dict`` / :func:`event_from_dict` (the
JSONL sink round-trips every type bit-for-bit) and flatten to stable
column names for the CSV sink via ``flatten``.

Schema versions (:data:`TRACE_SCHEMA_VERSION`):

* **v1** (PR 2/PR 4) — the base event vocabulary above.
* **v2** (PR 5) — adds *optional* causal-tracing context
  (``trace_id``/``span_id``/``parent_span_id`` on ``message`` and
  ``agent_exchange``), simulated-time stamps (``at`` on ``iteration``
  and ``message``) and the deployed-state payloads the replay engine
  consumes (``rate``/``price``/``populations`` on ``agent_exchange``
  and ``agent_restarted``).  Every new field defaults to ``None``, so
  :func:`event_from_dict` still parses any v1 JSONL capture, and v1
  readers that ignore unknown keys keep working on the flat CSV form
  (optional fields are flattened only when present).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, fields
from typing import Any, ClassVar, Union

#: Version of the trace event schema written by :class:`JsonlSink`
#: captures.  Bumped to 2 by the causal-tracing fields; v1 captures
#: (without them) parse unchanged — see the module docstring.
TRACE_SCHEMA_VERSION = 2


def now_ns() -> int:
    """Monotonic timestamp for event stamping (ns, unrelated to wall time)."""
    return time.monotonic_ns()


class TraceEventError(ValueError):
    """Raised when deserializing a malformed or unknown event payload."""


@dataclass(frozen=True)
class _Event:
    """Shared machinery: serialization, flattening, the kind tag."""

    kind: ClassVar[str] = ""

    #: v2 optional fields: flattened only when present, so pre-causal CSV
    #: column sets (and the pinned ``core.trace`` header) stay stable.
    _OPTIONAL: ClassVar[tuple[str, ...]] = ()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable payload; ``type`` carries the kind tag."""
        payload: dict[str, Any] = {"type": self.kind}
        payload.update(asdict(self))
        return payload

    def flatten(self) -> dict[str, Any]:
        """Flat scalar mapping for CSV export.

        Nested mappings become ``field:key`` columns; subclasses override
        to pin documented column names (see :class:`IterationEvent`).
        Fields listed in ``_OPTIONAL`` are omitted while ``None``.
        """
        flat: dict[str, Any] = {"type": self.kind}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value is None and spec.name in self._OPTIONAL:
                continue
            if isinstance(value, dict):
                for key, item in value.items():
                    flat[f"{spec.name}:{key}"] = item
            else:
                flat[spec.name] = value
        return flat


@dataclass(frozen=True)
class IterationEvent(_Event):
    """End of one optimizer iteration (or runtime round / async sample).

    The snapshot mappings are ``None`` unless the emitter runs with
    snapshot recording on (``LRGPConfig(record_snapshots=True)`` or the
    ``repro trace`` CLI); the light event is just (iteration, utility).
    """

    kind: ClassVar[str] = "iteration"

    iteration: int
    utility: float
    t_ns: int
    rates: dict[str, float] | None = None
    populations: dict[str, int] | None = None
    node_prices: dict[str, float] | None = None
    link_prices: dict[str, float] | None = None
    gammas: dict[str, float] | None = None
    slack: dict[str, float] | None = None
    #: Simulated/engine time of the sample (async runtime clock, rounds
    #: for the synchronous runtime); ``None`` for the reference driver.
    at: float | None = None

    #: CSV column prefixes, matching the documented ``core.trace`` order.
    _PREFIXES: ClassVar[tuple[tuple[str, str], ...]] = (
        ("rates", "rate"),
        ("populations", "n"),
        ("node_prices", "node_price"),
        ("link_prices", "link_price"),
        ("gammas", "gamma"),
        ("slack", "slack"),
    )

    def flatten(self) -> dict[str, Any]:
        flat: dict[str, Any] = {
            "type": self.kind,
            "iteration": self.iteration,
            "utility": self.utility,
            "t_ns": self.t_ns,
        }
        if self.at is not None:
            flat["at"] = self.at
        for field_name, prefix in self._PREFIXES:
            mapping = getattr(self, field_name)
            for key, value in (mapping or {}).items():
                flat[f"{prefix}:{key}"] = value
        return flat


@dataclass(frozen=True)
class PriceUpdateEvent(_Event):
    """One price-controller update (eq. 12 for nodes, eq. 13 for links).

    ``branch`` names the path taken: ``track`` (damped BC tracking),
    ``violation`` (capacity-violation ascent) or ``gradient`` (link
    gradient projection).  ``usage``/``capacity`` expose the constraint
    operand so diagnostics can compute eq. 4/5 slack without re-deriving
    it from the model.
    """

    kind: ClassVar[str] = "price_update"

    resource_kind: str  # "node" | "link"
    resource: str
    old_price: float
    new_price: float
    step: float  # the gamma actually applied
    branch: str  # "track" | "violation" | "gradient"
    t_ns: int
    usage: float | None = None
    capacity: float | None = None


@dataclass(frozen=True)
class GammaStepEvent(_Event):
    """One adaptive step-size change (section 4.2 heuristic)."""

    kind: ClassVar[str] = "gamma_step"

    resource: str
    old_gamma: float
    new_gamma: float
    fluctuated: bool
    t_ns: int


@dataclass(frozen=True)
class AdmissionEvent(_Event):
    """One greedy consumer allocation at one node (Algorithm 2, step 2)."""

    kind: ClassVar[str] = "admission"

    node: str
    admitted: dict[str, int]
    used: float
    capacity: float
    best_ratio: float
    t_ns: int


@dataclass(frozen=True)
class MessageEvent(_Event):
    """One protocol/pub-sub message handled by an engine.

    ``latency`` is in the emitting engine's time base: simulated time for
    the asynchronous runtime and the event simulator, ``None`` for the
    synchronous runtime's instantaneous barrier delivery.

    The v2 causal fields mirror the context carried by the message
    itself (:class:`repro.runtime.messages.Message`): ``span_id`` is the
    message's own span, ``parent_span_id`` the emitting activation span,
    and ``at`` the simulated delivery time.  All ``None`` when the
    emitter runs without causal tracing (v1 captures, event simulator).
    """

    kind: ClassVar[str] = "message"

    _OPTIONAL: ClassVar[tuple[str, ...]] = (
        "at",
        "trace_id",
        "span_id",
        "parent_span_id",
    )

    sender: str
    recipient: str
    payload: str
    t_ns: int
    latency: float | None = None
    at: float | None = None
    trace_id: str | None = None
    span_id: str | None = None
    parent_span_id: str | None = None


@dataclass(frozen=True)
class AgentExchangeEvent(_Event):
    """One agent activation: who acted, in which role, how much it sent.

    v2 adds two optional payload groups:

    * **causal context** — ``span_id`` is the activation span allocated
      by the runtime's :class:`~repro.obs.causal.CausalContext`;
      ``parent_span_id`` the span of the last message whose delivery fed
      this agent's state (the recorded causal parent; the graph builder
      recovers the full join from delivery order).
    * **deployed state** — the agent-local state *after* this activation
      (``rate`` for sources, ``price`` for node/link agents,
      ``populations`` for node agents), which is exactly what the replay
      engine needs to re-materialize global state at any event index.
    """

    kind: ClassVar[str] = "agent_exchange"

    _OPTIONAL: ClassVar[tuple[str, ...]] = (
        "trace_id",
        "span_id",
        "parent_span_id",
        "rate",
        "price",
        "populations",
    )

    agent: str
    role: str  # "source" | "node" | "link"
    sent: int
    stamp: float
    t_ns: int
    trace_id: str | None = None
    span_id: str | None = None
    parent_span_id: str | None = None
    rate: float | None = None
    price: float | None = None
    populations: dict[str, int] | None = None


@dataclass(frozen=True)
class FaultInjectedEvent(_Event):
    """One scheduled fault taking effect in a fault-injecting runtime.

    ``fault`` names the kind: ``crash``, ``partition``, ``partition_heal``,
    ``delay_storm`` or ``delay_storm_end``.  ``target`` is the affected
    agent address (crashes) or a ``+``-joined address group (partitions);
    ``at`` is the simulated time the fault fired.
    """

    kind: ClassVar[str] = "fault_injected"

    fault: str
    target: str
    at: float
    t_ns: int


@dataclass(frozen=True)
class AgentRestartedEvent(_Event):
    """One crashed agent rejoining the protocol.

    ``downtime`` is simulated time spent down; ``from_checkpoint`` tells
    whether the agent resumed from its last checkpoint or from cold state.

    v2 adds the restarted agent's *restored* local state (checkpointed or
    cold), mirroring the ``agent_exchange`` payload: without it a trace
    replay could not track state across a restart, because the restored
    values come from a checkpoint that never appears in the event stream.
    """

    kind: ClassVar[str] = "agent_restarted"

    _OPTIONAL: ClassVar[tuple[str, ...]] = ("rate", "price", "populations")

    agent: str
    at: float
    downtime: float
    from_checkpoint: bool
    t_ns: int
    rate: float | None = None
    price: float | None = None
    populations: dict[str, int] | None = None


TraceEvent = Union[
    IterationEvent,
    PriceUpdateEvent,
    GammaStepEvent,
    AdmissionEvent,
    MessageEvent,
    AgentExchangeEvent,
    FaultInjectedEvent,
    AgentRestartedEvent,
]

#: kind tag -> event class, the dispatch table for deserialization.
EVENT_TYPES: dict[str, type[_Event]] = {
    cls.kind: cls
    for cls in (
        IterationEvent,
        PriceUpdateEvent,
        GammaStepEvent,
        AdmissionEvent,
        MessageEvent,
        AgentExchangeEvent,
        FaultInjectedEvent,
        AgentRestartedEvent,
    )
}


def event_from_dict(payload: dict[str, Any]) -> TraceEvent:
    """Inverse of ``to_dict``: rebuild the typed event from a payload.

    Raises :class:`TraceEventError` on unknown kinds or field mismatches
    so a corrupted JSONL line fails loudly, not as a half-parsed event.
    """
    data = dict(payload)
    tag = data.pop("type", None)
    cls = EVENT_TYPES.get(tag) if isinstance(tag, str) else None
    if cls is None:
        raise TraceEventError(f"unknown event type {tag!r}")
    try:
        return cls(**data)  # type: ignore[return-value]
    except TypeError as error:
        raise TraceEventError(f"malformed {tag!r} event: {error}") from error
