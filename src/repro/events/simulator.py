"""The event-driven infrastructure simulator.

Materializes a :class:`repro.model.Problem` as a running pub/sub system:
producers publish on flows, messages travel the dissemination trees hop by
hop over links (with optional latency), brokers transform and deliver to
admitted consumers, and a :class:`ResourceMeter` records the resource cost
of everything — the measured counterpart to the constraint equations.

This is the substrate the paper's cost model abstracts (measured there on
Gryphon); here it closes the loop: LRGP's allocations can be *enacted* into
the simulator (producer rates, admitted counts) and the resulting resource
consumption compared with the model's predictions.
"""

from __future__ import annotations

import math
import random
from collections.abc import Mapping

from repro.events.broker import Broker
from repro.events.engine import EventEngine
from repro.events.metering import ModelComparison, ResourceMeter, compare_with_model
from repro.events.pubsub import Consumer, EventMessage, PayloadFactory, Producer
from repro.events.reliability import ReliabilityConfig, ReliableDelivery
from repro.events.transforms import Transform
from repro.model.allocation import Allocation
from repro.model.entities import ClassId, FlowId, LinkId, NodeId
from repro.model.problem import Problem
from repro.obs.events import MessageEvent, now_ns
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry


class EventInfrastructure:
    """A running instance of the infrastructure described by a problem.

    Parameters
    ----------
    problem:
        The validated system description (topology, routes, costs).
    link_latency:
        One-way per-hop latency for messages (0 = instantaneous).
    poisson:
        When true, producers use exponential inter-arrival times drawn from
        ``seed``; otherwise deterministic ``1/rate`` spacing.
    payload_factories:
        Optional per-flow payload generators (for scenario content).
    transforms:
        Optional per-class delivery transforms.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`; the meter mirrors charges
        into its registry and node-level message processing emits
        ``message`` events (latency in simulated time since publication).
    """

    def __init__(
        self,
        problem: Problem,
        link_latency: float = 0.0,
        poisson: bool = False,
        seed: int = 0,
        payload_factories: Mapping[FlowId, PayloadFactory] | None = None,
        transforms: Mapping[ClassId, Transform] | None = None,
        queueing: bool = False,
        reliability: "Mapping[ClassId, ReliabilityConfig] | None" = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        if link_latency < 0.0:
            raise ValueError(f"link_latency must be non-negative, got {link_latency}")
        self._problem = problem
        self._link_latency = link_latency
        #: With queueing on, each finite-capacity node is a FIFO server
        #: processing ``message_work`` resource units at ``capacity`` units
        #: per second — so end-to-end latency surfaces overload (the
        #: behaviour eq. 5 exists to prevent).
        self._queueing = queueing
        self._busy_until: dict[NodeId, float] = {}
        self._rng = random.Random(seed) if poisson else None
        self.telemetry = telemetry
        self.engine = EventEngine()
        self.meter = ResourceMeter(
            registry=telemetry.registry if telemetry.enabled else None
        )

        #: Reliable-delivery service (acks, retransmissions) for classes
        #: with a :class:`ReliabilityConfig`; None when nothing is reliable.
        self.reliability: ReliableDelivery | None = None
        if reliability:
            self.reliability = ReliableDelivery(
                engine=self.engine,
                meter=self.meter,
                configs=reliability,
                rng=random.Random(seed + 1),
            )

        self.brokers: dict[NodeId, Broker] = {
            node_id: Broker(problem, node_id, self.meter, delivery=self.reliability)
            for node_id in problem.nodes
        }
        # Wire dissemination trees: link tails forward, link heads receive.
        self._link_heads: dict[LinkId, NodeId] = {}
        for flow_id in problem.flows:
            route = problem.route(flow_id)
            for link_id in route.links:
                link = problem.links[link_id]
                self.brokers[link.tail].add_next_hop(flow_id, link_id)
                self._link_heads[link_id] = link.head

        factories = dict(payload_factories or {})
        self.producers: dict[FlowId, Producer] = {
            flow_id: Producer(
                flow_id,
                rate=flow.rate_min,
                payload_factory=factories.get(flow_id),
                rng=self._rng,
            )
            for flow_id, flow in problem.flows.items()
        }

        # Consumers: the full connected population (n^max) per class; the
        # admitted prefix is controlled via enact/set_admitted.
        self.consumers: dict[ClassId, list[Consumer]] = {}
        transform_map = dict(transforms or {})
        for class_id, cls in problem.classes.items():
            population = [
                Consumer(f"{class_id}#{index}", class_id)
                for index in range(cls.max_consumers)
            ]
            self.consumers[class_id] = population
            self.brokers[cls.node].attach_class(
                class_id, population, transform=transform_map.get(class_id)
            )

        self._producers_started = False

    # -- enactment ---------------------------------------------------------

    def enact(self, allocation: Allocation) -> None:
        """Apply an optimizer's allocation: producer rates and admissions."""
        for flow_id, rate in allocation.rates.items():
            if flow_id in self.producers:
                self.producers[flow_id].set_rate(rate)
        for class_id, count in allocation.populations.items():
            if class_id in self.consumers:
                node = self._problem.classes[class_id].node
                self.brokers[node].set_admitted(class_id, count)

    def allocation(self) -> Allocation:
        """The currently enacted allocation, read back from the system."""
        return Allocation(
            rates={f: p.rate for f, p in self.producers.items()},
            populations={
                class_id: self.brokers[self._problem.classes[class_id].node].admitted(
                    class_id
                )
                for class_id in self.consumers
            },
        )

    # -- message path ---------------------------------------------------------

    def _publish(self, producer: Producer) -> None:
        with self.telemetry.profiler.phase("publish"):
            message = producer.publish(self.engine.now)
            self.telemetry.registry.counter("sim.publications").inc()
            self._arrive(message, self._problem.flows[producer.flow_id].source)
            self._schedule_next_publication(producer)

    def _schedule_next_publication(self, producer: Producer) -> None:
        interval = producer.next_interval()
        if interval is None:
            # Rate is zero: poll again shortly so a later set_rate resumes.
            self.engine.schedule_in(1.0, lambda: self._schedule_next_publication(producer))
            return
        self.engine.schedule_in(interval, lambda: self._publish(producer))

    def _arrive(self, message: EventMessage, node_id: NodeId) -> None:
        """A message reaches a node: process now, or queue behind the
        node's FIFO server when queueing is enabled."""
        capacity = self._problem.nodes[node_id].capacity
        if not self._queueing or math.isinf(capacity):
            self._process(message, node_id)
            return
        work = self.brokers[node_id].message_work(message.flow_id)
        start = max(self.engine.now, self._busy_until.get(node_id, 0.0))
        completion = start + work / capacity
        self._busy_until[node_id] = completion
        self.engine.schedule(
            completion, lambda m=message, n=node_id: self._process(m, n)
        )

    def _process(self, message: EventMessage, node_id: NodeId) -> None:
        with self.telemetry.profiler.phase("delivery"):
            self._process_inner(message, node_id)

    def _process_inner(self, message: EventMessage, node_id: NodeId) -> None:
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                MessageEvent(
                    sender=f"flow:{message.flow_id}",
                    recipient=f"node:{node_id}",
                    payload=f"seq={message.sequence}",
                    t_ns=now_ns(),
                    latency=self.engine.now - message.published_at,
                )
            )
            telemetry.registry.counter("sim.messages_processed").inc()
        forward_links = self.brokers[node_id].process(message, self.engine.now)
        for link_id in forward_links:
            cost = self._problem.costs.link(link_id, message.flow_id)
            if cost > 0.0:
                self.meter.charge_link(link_id, cost)
            head = self._link_heads[link_id]
            if self._link_latency > 0.0:
                self.engine.schedule_in(
                    self._link_latency,
                    lambda m=message, h=head: self._arrive(m, h),
                )
            else:
                self._arrive(message, head)

    # -- running ------------------------------------------------------------

    def start(self) -> None:
        """Arm every producer (idempotent)."""
        if self._producers_started:
            return
        self._producers_started = True
        for producer in self.producers.values():
            self._schedule_next_publication(producer)

    def run_for(self, duration: float) -> None:
        """Advance simulated time by ``duration``."""
        self.start()
        with self.telemetry.profiler.phase("simulator"):
            self.engine.run_until(self.engine.now + duration)

    def measure(
        self, duration: float, settle: float = 0.0
    ) -> list[ModelComparison]:
        """Run ``settle`` then a fresh measurement window of ``duration``;
        return measured-vs-predicted comparisons for every resource."""
        if settle > 0.0:
            self.run_for(settle)
        self.meter.reset(self.engine.now)
        self.run_for(duration)
        return compare_with_model(
            self._problem, self.allocation(), self.meter, self.engine.now
        )

    # -- stats --------------------------------------------------------------

    def total_deliveries(self) -> int:
        return sum(broker.deliveries for broker in self.brokers.values())

    def mean_delivery_latency(self) -> float:
        total = 0.0
        count = 0
        for population in self.consumers.values():
            for consumer in population:
                total += consumer.total_latency
                count += consumer.received
        return total / count if count else 0.0
