"""Message transformations (section 1: filtering, format changes,
augmentation, aggregation).

A transform maps a message to a transformed message or drops it (``None``).
Transforms are attached per consumer class at broker nodes — e.g. the
trade-data scenario strips gold-only fields before public delivery, and the
latest-price scenario evaluates a consumer-specified filter per message.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.events.pubsub import EventMessage


class Transform(ABC):
    """A per-message transformation applied at a broker node."""

    @abstractmethod
    def apply(self, message: EventMessage) -> EventMessage | None:
        """Return the transformed message, or ``None`` to drop it."""


class IdentityTransform(Transform):
    """Pass-through (the default for classes with no transformation)."""

    def apply(self, message: EventMessage) -> EventMessage | None:
        return message


class FilterTransform(Transform):
    """Content filter: deliver only messages whose payload satisfies the
    predicate (the ``price > 80`` example of section 1.1)."""

    def __init__(self, predicate: Callable[[Mapping[str, Any]], bool]) -> None:
        self._predicate = predicate
        self.evaluated = 0
        self.passed = 0

    def apply(self, message: EventMessage) -> EventMessage | None:
        self.evaluated += 1
        if not self._predicate(message.payload):
            return None
        self.passed += 1
        return message


class ProjectTransform(Transform):
    """Field removal: strip fields (the gold-only fields removed before
    public delivery in the trade-data scenario)."""

    def __init__(self, drop_fields: Sequence[str]) -> None:
        self._drop = frozenset(drop_fields)

    def apply(self, message: EventMessage) -> EventMessage | None:
        if not self._drop & set(message.payload):
            return message
        return message.with_payload(
            {k: v for k, v in message.payload.items() if k not in self._drop}
        )


class EnrichTransform(Transform):
    """Augmentation: add fields computed from the payload (section 1's
    "augmenting messages with content retrieved from databases")."""

    def __init__(
        self, enrich: Callable[[Mapping[str, Any]], Mapping[str, Any]]
    ) -> None:
        self._enrich = enrich

    def apply(self, message: EventMessage) -> EventMessage | None:
        extra = self._enrich(message.payload)
        merged = dict(message.payload)
        merged.update(extra)
        return message.with_payload(merged)


class AggregateTransform(Transform):
    """N-to-1 aggregation: buffer ``window`` messages, emit one summary.

    Models "aggregating multiple messages to produce a more concise stream";
    the emitted message carries the aggregate of the buffered payloads under
    ``field`` (mean by default).
    """

    def __init__(
        self,
        window: int,
        field: str,
        combine: Callable[[Sequence[float]], float] | None = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = window
        self._field = field
        self._combine = combine or (lambda values: sum(values) / len(values))
        self._buffer: list[EventMessage] = []

    def apply(self, message: EventMessage) -> EventMessage | None:
        self._buffer.append(message)
        if len(self._buffer) < self._window:
            return None
        values = [float(m.payload.get(self._field, 0.0)) for m in self._buffer]
        last = self._buffer[-1]
        self._buffer = []
        merged = dict(last.payload)
        merged[self._field] = self._combine(values)
        merged["aggregated_count"] = len(values)
        return last.with_payload(merged)


class ChainTransform(Transform):
    """Sequential composition; drops short-circuit the chain."""

    def __init__(self, transforms: Sequence[Transform]) -> None:
        self._transforms = tuple(transforms)

    def apply(self, message: EventMessage) -> EventMessage | None:
        current: EventMessage | None = message
        for transform in self._transforms:
            if current is None:
                return None
            current = transform.apply(current)
        return current
