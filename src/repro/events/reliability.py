"""Reliable delivery: acknowledgements, timeouts and retransmissions.

Section 1.1's gold consumers "expect reliable and fast delivery, which
places extra overhead on the system to process acknowledgements".  In the
optimization model this overhead is folded into the per-consumer cost
``G_{b,j}`` (gold classes carry a higher ``G``); this module supplies the
mechanism itself, so the simulator can *exhibit* the overhead the constant
abstracts:

* each delivery travels with one-way latency ``rtt/2`` and may be lost;
* the consumer acks; the ack may also be lost;
* the broker retransmits after ``timeout`` (default ``2*rtt``) up to
  ``max_retries`` times, charging the node meter per send and per ack
  processed;
* duplicate deliveries (retransmit racing a late ack) are suppressed at
  the consumer by message sequence number.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass

from repro.events.broker import DeliveryService
from repro.events.engine import EventEngine
from repro.events.metering import ResourceMeter
from repro.events.pubsub import Consumer, EventMessage
from repro.model.entities import ClassId, NodeId


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retransmission: wait ``timeout`` for an acknowledgement,
    retransmit up to ``max_retries`` times, then abandon.

    The ack/timeout/retransmit pattern of this module's reliable pub/sub
    channel, factored out so the asynchronous LRGP runtime can apply the
    same machinery to unacknowledged rate announcements
    (:mod:`repro.runtime.asynchronous`).
    """

    timeout: float = 2.0
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.timeout <= 0.0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )


@dataclass(frozen=True)
class ReliabilityConfig:
    """Reliable-channel parameters for one consumer class."""

    rtt: float = 0.01
    loss_probability: float = 0.0
    max_retries: int = 3
    #: Node resource units charged per transmission attempt and per ack
    #: processed (the "extra overhead" of section 1.1).
    send_cost: float = 0.0
    ack_cost: float = 0.0
    #: Retransmission timeout; defaults to ``2 * rtt`` when None.
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.rtt <= 0.0:
            raise ValueError("rtt must be positive")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.send_cost < 0.0 or self.ack_cost < 0.0:
            raise ValueError("costs must be non-negative")
        if self.timeout is not None and self.timeout <= 0.0:
            raise ValueError("timeout must be positive")

    @property
    def effective_timeout(self) -> float:
        return self.timeout if self.timeout is not None else 2.0 * self.rtt

    @property
    def retry_policy(self) -> RetryPolicy:
        """This channel's retransmission behaviour as a :class:`RetryPolicy`."""
        return RetryPolicy(
            timeout=self.effective_timeout, max_retries=self.max_retries
        )


@dataclass
class ReliabilityStats:
    """Counters for one reliable class."""

    sends: int = 0
    delivered: int = 0
    duplicates_suppressed: int = 0
    acks_processed: int = 0
    retransmissions: int = 0
    abandoned: int = 0


class ReliableDelivery(DeliveryService):
    """A :class:`DeliveryService` adding acks and retransmission.

    Classes without a config fall back to direct synchronous delivery.
    All randomness comes from the supplied seeded RNG.
    """

    def __init__(
        self,
        engine: EventEngine,
        meter: ResourceMeter,
        configs: Mapping[ClassId, ReliabilityConfig],
        rng: random.Random | None = None,
    ) -> None:
        self._engine = engine
        self._meter = meter
        self._configs = dict(configs)
        self._rng = rng if rng is not None else random.Random(0)
        self.stats: dict[ClassId, ReliabilityStats] = {
            class_id: ReliabilityStats() for class_id in self._configs
        }
        #: (consumer id, flow, sequence) already delivered — duplicate guard.
        self._delivered: set[tuple[str, str, int]] = set()

    def deliver(
        self,
        consumer: Consumer,
        message: EventMessage,
        now: float,
        node_id: NodeId,
        class_id: ClassId,
    ) -> None:
        config = self._configs.get(class_id)
        if config is None:
            consumer.deliver(message, now)
            return
        self._attempt(consumer, message, node_id, class_id, config, attempt=0)

    # -- the reliable channel ------------------------------------------------

    def _attempt(
        self,
        consumer: Consumer,
        message: EventMessage,
        node_id: NodeId,
        class_id: ClassId,
        config: ReliabilityConfig,
        attempt: int,
    ) -> None:
        stats = self.stats[class_id]
        stats.sends += 1
        if attempt > 0:
            stats.retransmissions += 1
        if config.send_cost > 0.0:
            self._meter.charge_node(node_id, config.send_cost)

        data_lost = self._rng.random() < config.loss_probability
        ack_lost = self._rng.random() < config.loss_probability
        acked = not data_lost and not ack_lost

        if not data_lost:
            self._engine.schedule_in(
                config.rtt / 2.0,
                lambda: self._arrive(consumer, message, class_id),
            )
        if acked:
            self._engine.schedule_in(
                config.rtt,
                lambda: self._ack(node_id, class_id, config),
            )
            return
        # No ack will come: retransmit after the timeout, or give up.
        if attempt < config.max_retries:
            self._engine.schedule_in(
                config.effective_timeout,
                lambda: self._attempt(
                    consumer, message, node_id, class_id, config, attempt + 1
                ),
            )
        else:
            stats.abandoned += 1

    def _arrive(self, consumer: Consumer, message: EventMessage, class_id: ClassId) -> None:
        key = (consumer.consumer_id, message.flow_id, message.sequence)
        stats = self.stats[class_id]
        if key in self._delivered:
            stats.duplicates_suppressed += 1
            return
        self._delivered.add(key)
        consumer.deliver(message, self._engine.now)
        stats.delivered += 1

    def _ack(self, node_id: NodeId, class_id: ClassId, config: ReliabilityConfig) -> None:
        self.stats[class_id].acks_processed += 1
        if config.ack_cost > 0.0:
            self._meter.charge_node(node_id, config.ack_cost)
