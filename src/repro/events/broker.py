"""Broker nodes: routing, transformation and consumer delivery.

A :class:`Broker` realizes one overlay node of the paper's infrastructure.
Per flow it knows its downstream next-hop links (the dissemination tree) and
the consumer classes attached locally.  Processing one message:

1. charge the flow-node cost ``F_{b,i}`` to the meter (routing and
   transformation work that is independent of consumer count);
2. for each locally attached class of the flow, apply the class transform
   and deliver to every *admitted* consumer, charging ``G_{b,j}`` per
   consumer (the per-message, per-consumer work: filtering, reliable
   delivery bookkeeping, ...);
3. forward the message on each downstream link (link transit charges
   ``L_{l,i}`` and is handled by the simulator's link hop).

Admission control is actuated through :meth:`Broker.set_admitted`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.events.metering import ResourceMeter
from repro.events.pubsub import Consumer, EventMessage
from repro.events.transforms import IdentityTransform, Transform
from repro.model.entities import ClassId, FlowId, LinkId, NodeId
from repro.model.problem import Problem


class DeliveryService:
    """How a broker hands a transformed message to one consumer.

    The default is synchronous in-process delivery; the reliable-delivery
    substrate (:mod:`repro.events.reliability`) substitutes acknowledged,
    retried delivery for classes that require it (the gold consumers of
    section 1.1).
    """

    def deliver(
        self,
        consumer: Consumer,
        message: EventMessage,
        now: float,
        node_id: NodeId,
        class_id: ClassId,
    ) -> None:
        del node_id, class_id
        consumer.deliver(message, now)


@dataclass
class ClassAttachment:
    """A consumer class attached to a broker."""

    class_id: ClassId
    flow_id: FlowId
    transform: Transform = field(default_factory=IdentityTransform)
    consumers: list[Consumer] = field(default_factory=list)
    admitted_count: int = 0

    def admitted_consumers(self) -> list[Consumer]:
        return self.consumers[: self.admitted_count]


class Broker:
    """One overlay node of the event infrastructure."""

    def __init__(
        self,
        problem: Problem,
        node_id: NodeId,
        meter: ResourceMeter,
        delivery: DeliveryService | None = None,
    ) -> None:
        self._problem = problem
        self.node_id = node_id
        self._meter = meter
        self._delivery = delivery if delivery is not None else DeliveryService()
        #: flow -> downstream link ids (filled in by the simulator when it
        #: materializes dissemination trees).
        self._next_hops: dict[FlowId, list[LinkId]] = {}
        self._attachments: dict[ClassId, ClassAttachment] = {}
        self.messages_processed = 0
        self.deliveries = 0

    # -- wiring ---------------------------------------------------------------

    def add_next_hop(self, flow_id: FlowId, link_id: LinkId) -> None:
        hops = self._next_hops.setdefault(flow_id, [])
        if link_id not in hops:
            hops.append(link_id)

    def attach_class(
        self,
        class_id: ClassId,
        consumers: list[Consumer],
        transform: Transform | None = None,
    ) -> None:
        cls = self._problem.classes[class_id]
        if cls.node != self.node_id:
            raise ValueError(
                f"class {class_id} attaches to {cls.node}, not {self.node_id}"
            )
        if len(consumers) > cls.max_consumers:
            raise ValueError(
                f"class {class_id} allows at most {cls.max_consumers} consumers, "
                f"got {len(consumers)}"
            )
        self._attachments[class_id] = ClassAttachment(
            class_id=class_id,
            flow_id=cls.flow_id,
            transform=transform or IdentityTransform(),
            consumers=list(consumers),
        )

    def set_admitted(self, class_id: ClassId, count: int) -> None:
        """Enact an admission-control decision ``n_j = count``.

        Consumers are admitted in attachment order; lowering the count
        unadmits from the tail (the paper allows unadmitting, section 2.1).
        """
        attachment = self._attachments[class_id]
        if count < 0 or count > len(attachment.consumers):
            raise ValueError(
                f"admitted count {count} out of range 0..{len(attachment.consumers)} "
                f"for class {class_id}"
            )
        attachment.admitted_count = count

    def admitted(self, class_id: ClassId) -> int:
        return self._attachments[class_id].admitted_count

    def attachment(self, class_id: ClassId) -> ClassAttachment:
        return self._attachments[class_id]

    def message_work(self, flow_id: FlowId) -> float:
        """Resource units one message of ``flow_id`` costs at this node:
        ``F_{b,i} + sum_j G_{b,j} * admitted_j`` (the per-message slice of
        eq. 5).  Used by the queueing model to compute service times."""
        work = self._problem.costs.flow_node(self.node_id, flow_id)
        for attachment in self._attachments.values():
            if attachment.flow_id == flow_id and attachment.admitted_count > 0:
                work += (
                    self._problem.costs.consumer(self.node_id, attachment.class_id)
                    * attachment.admitted_count
                )
        return work

    # -- message path -----------------------------------------------------------

    def process(self, message: EventMessage, now: float) -> list[LinkId]:
        """Handle one incoming message; returns the links to forward it on."""
        flow_id = message.flow_id
        self.messages_processed += 1
        flow_cost = self._problem.costs.flow_node(self.node_id, flow_id)
        if flow_cost > 0.0:
            self._meter.charge_node(self.node_id, flow_cost)

        for attachment in self._attachments.values():
            if attachment.flow_id != flow_id or attachment.admitted_count == 0:
                continue
            unit_cost = self._problem.costs.consumer(
                self.node_id, attachment.class_id
            )
            # Per-consumer work is charged for every admitted consumer,
            # whether or not the transform ultimately drops the message —
            # evaluating a filter costs CPU either way (section 1.1).
            self._meter.charge_node(
                self.node_id, unit_cost * attachment.admitted_count
            )
            transformed = attachment.transform.apply(message)
            if transformed is None:
                continue
            for consumer in attachment.admitted_consumers():
                self._delivery.deliver(
                    consumer, transformed, now, self.node_id, attachment.class_id
                )
                self.deliveries += 1

        return list(self._next_hops.get(flow_id, ()))
