"""The closed autonomic loop: LRGP driving a live infrastructure.

The paper positions LRGP as a self-optimization scheme for an autonomic
event-driven infrastructure (section 1).  This module closes that loop:

1. the optimizer iterates continuously over the problem model;
2. an :class:`repro.core.enactment.Enactor` decides when a computed
   allocation is different enough (or enough time has passed) to be worth
   disrupting consumers;
3. enacted allocations are applied to the running
   :class:`repro.events.simulator.EventInfrastructure` — producer rates are
   adjusted, consumers admitted or unadmitted.

Used by the ``autonomic_recovery`` example and the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.enactment import Enactor, EnactmentPolicy, ThresholdEnactment
from repro.core.lrgp import LRGP
from repro.events.simulator import EventInfrastructure


@dataclass
class AutonomicController:
    """Couples an LRGP optimizer with a running infrastructure."""

    optimizer: LRGP
    infrastructure: EventInfrastructure
    policy: EnactmentPolicy = field(default_factory=ThresholdEnactment)
    #: Simulated time the infrastructure runs per optimizer iteration
    #: (the paper equates one iteration with a network round trip).
    time_per_iteration: float = 1.0

    def __post_init__(self) -> None:
        self._enactor = Enactor(policy=self.policy)

    @property
    def enactor(self) -> Enactor:
        return self._enactor

    def tick(self) -> bool:
        """One control-loop turn: optimize, maybe enact, advance the system.

        Returns True when this turn enacted a new allocation.
        """
        record = self.optimizer.step()
        enacted = self._enactor.offer(record.iteration, self.optimizer.allocation())
        if enacted:
            assert self._enactor.enacted is not None
            self.infrastructure.enact(self._enactor.enacted)
        self.infrastructure.run_for(self.time_per_iteration)
        return enacted

    def run(self, iterations: int) -> int:
        """Run several turns; returns how many enactments occurred."""
        if iterations < 0:
            raise ValueError(f"iterations must be non-negative, got {iterations}")
        return sum(1 for _ in range(iterations) if self.tick())
