"""A minimal discrete-event simulation engine.

Shared by the pub/sub infrastructure simulator (:mod:`repro.events.simulator`)
— a classic time-ordered event queue with stable FIFO ordering for ties.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable


class SimulationClock:
    """Read-only view of the engine's current time, handed to components so
    they cannot reschedule arbitrary state."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def _advance(self, to: float) -> None:
        if to < self._now:
            raise RuntimeError(f"time went backwards: {self._now} -> {to}")
        self._now = to


class EventEngine:
    """Time-ordered callback scheduler."""

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._clock = SimulationClock()
        self.processed = 0

    @property
    def clock(self) -> SimulationClock:
        return self._clock

    @property
    def now(self) -> float:
        return self._clock.now

    def schedule(self, at: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` when the clock reaches ``at``."""
        if at < self.now:
            raise ValueError(f"cannot schedule at {at}, now is {self.now}")
        heapq.heappush(self._queue, (at, next(self._sequence), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` time units."""
        if delay < 0.0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule(self.now + delay, callback)

    def run_until(self, end_time: float) -> int:
        """Process events up to and including ``end_time``; returns the
        number of events processed by this call."""
        if end_time < self.now:
            raise ValueError(f"end_time {end_time} is before now {self.now}")
        processed_before = self.processed
        while self._queue and self._queue[0][0] <= end_time:
            at, _, callback = heapq.heappop(self._queue)
            self._clock._advance(at)
            callback()
            self.processed += 1
        self._clock._advance(end_time)
        return self.processed - processed_before

    def pending(self) -> int:
        return len(self._queue)
