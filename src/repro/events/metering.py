"""Resource metering: measuring what the constraint equations predict.

The paper's cost model (section 2.3) was validated on the Gryphon system;
we substitute a metered discrete-event simulator.  Brokers charge the meter
per message:

* ``F_{b,i}`` units at node ``b`` per message of flow ``i`` (routing,
  transformation);
* ``G_{b,j}`` units at node ``b`` per message delivered to each admitted
  consumer of class ``j``;
* ``L_{l,i}`` units on link ``l`` per message of flow ``i`` crossing it.

Dividing accumulated charge by elapsed time gives the *measured* resource
rate, which :func:`repro.events.metering.compare_with_model` checks against
the eq. 4/5 left-hand sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.utility.tolerance import is_zero

from repro.model.allocation import Allocation, link_usage, node_usage
from repro.model.entities import LinkId, NodeId
from repro.model.problem import Problem

if TYPE_CHECKING:  # optional telemetry; obs never imports events
    from repro.obs.registry import MetricsRegistry


class ResourceMeter:
    """Accumulates per-node and per-link resource charges over time.

    Pass a :class:`~repro.obs.MetricsRegistry` to mirror every charge into
    cumulative counters (``sim.charge.node.<id>`` /
    ``sim.charge.link.<id>``) so a metrics snapshot shows measured
    consumption alongside the optimizer's own figures.  Unlike the
    windowed rates, the mirrored counters are never reset — counters only
    go up.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self._node_charge: dict[NodeId, float] = {}
        self._link_charge: dict[LinkId, float] = {}
        self._window_start = 0.0
        self._registry = registry

    def charge_node(self, node_id: NodeId, amount: float) -> None:
        if amount < 0.0:
            raise ValueError(f"charge must be non-negative, got {amount}")
        self._node_charge[node_id] = self._node_charge.get(node_id, 0.0) + amount
        if self._registry is not None:
            self._registry.counter(f"sim.charge.node.{node_id}").inc(amount)

    def charge_link(self, link_id: LinkId, amount: float) -> None:
        if amount < 0.0:
            raise ValueError(f"charge must be non-negative, got {amount}")
        self._link_charge[link_id] = self._link_charge.get(link_id, 0.0) + amount
        if self._registry is not None:
            self._registry.counter(f"sim.charge.link.{link_id}").inc(amount)

    def reset(self, now: float) -> None:
        """Start a fresh measurement window at time ``now``."""
        self._node_charge.clear()
        self._link_charge.clear()
        self._window_start = now

    def node_rate(self, node_id: NodeId, now: float) -> float:
        """Measured resource rate at a node over the current window."""
        elapsed = now - self._window_start
        if elapsed <= 0.0:
            return 0.0
        return self._node_charge.get(node_id, 0.0) / elapsed

    def link_rate(self, link_id: LinkId, now: float) -> float:
        elapsed = now - self._window_start
        if elapsed <= 0.0:
            return 0.0
        return self._link_charge.get(link_id, 0.0) / elapsed

    def node_rates(self, now: float) -> dict[NodeId, float]:
        return {node_id: self.node_rate(node_id, now) for node_id in self._node_charge}

    def link_rates(self, now: float) -> dict[LinkId, float]:
        return {link_id: self.link_rate(link_id, now) for link_id in self._link_charge}


@dataclass(frozen=True)
class ModelComparison:
    """Measured vs. predicted resource rates for one resource."""

    resource: str
    measured: float
    predicted: float

    @property
    def relative_error(self) -> float:
        if is_zero(self.predicted):
            return 0.0 if is_zero(self.measured) else float("inf")
        return abs(self.measured - self.predicted) / self.predicted


def compare_with_model(
    problem: Problem,
    allocation: Allocation,
    meter: ResourceMeter,
    now: float,
) -> list[ModelComparison]:
    """Compare measured rates against the constraint-equation predictions.

    Returns one comparison per consumer node (eq. 5 LHS) and one per link
    that carried traffic (eq. 4 LHS).  With deterministic producers the
    relative error shrinks as ``1/(rate * time)``; with Poisson producers it
    shrinks as the usual ``1/sqrt(count)``.
    """
    comparisons = [
        ModelComparison(
            resource=f"node:{node_id}",
            measured=meter.node_rate(node_id, now),
            predicted=node_usage(problem, allocation, node_id),
        )
        for node_id in problem.consumer_nodes()
    ]
    comparisons.extend(
        ModelComparison(
            resource=f"link:{link_id}",
            measured=meter.link_rate(link_id, now),
            predicted=link_usage(problem, allocation, link_id),
        )
        for link_id in sorted(meter.link_rates(now))
    )
    return comparisons
