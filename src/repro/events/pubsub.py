"""Publish/subscribe primitives: events, producers, consumers.

The paper's infrastructure (section 1) disseminates *messages* from
producers through transforming broker nodes to consumers.  These are the
endpoint objects; brokers live in :mod:`repro.events.broker` and the wiring
in :mod:`repro.events.simulator`.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.model.entities import ClassId, FlowId


@dataclass(frozen=True)
class EventMessage:
    """One message of a flow.

    ``payload`` is a flat field map (stock symbol, price, ...); transforms
    may filter on it or rewrite it.  ``sequence`` orders messages within a
    flow; ``published_at`` enables end-to-end latency measurement.
    """

    flow_id: FlowId
    sequence: int
    published_at: float
    payload: Mapping[str, Any] = field(default_factory=dict)

    def with_payload(self, payload: Mapping[str, Any]) -> "EventMessage":
        return EventMessage(
            flow_id=self.flow_id,
            sequence=self.sequence,
            published_at=self.published_at,
            payload=dict(payload),
        )


PayloadFactory = Callable[[int], Mapping[str, Any]]


class Producer:
    """Publishes messages on one flow at a controlled rate.

    Inter-arrival times are exponential (Poisson arrivals) when ``rng`` is
    given, deterministic ``1/rate`` otherwise.  The rate can be changed at
    any time — that is precisely the rate-control knob LRGP actuates.
    """

    def __init__(
        self,
        flow_id: FlowId,
        rate: float,
        payload_factory: PayloadFactory | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if rate < 0.0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        self.flow_id = flow_id
        self._rate = rate
        self._payload_factory = payload_factory or (lambda sequence: {})
        self._rng = rng
        self._sequence = 0
        self.published = 0

    @property
    def rate(self) -> float:
        return self._rate

    def set_rate(self, rate: float) -> None:
        """Enact a new flow rate (Algorithm 1's output, applied)."""
        if rate < 0.0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        self._rate = rate

    def next_interval(self) -> float | None:
        """Time until the next publication, or ``None`` when the rate is 0."""
        if self._rate <= 0.0:
            return None
        if self._rng is None:
            return 1.0 / self._rate
        return self._rng.expovariate(self._rate)

    def publish(self, now: float) -> EventMessage:
        message = EventMessage(
            flow_id=self.flow_id,
            sequence=self._sequence,
            published_at=now,
            payload=self._payload_factory(self._sequence),
        )
        self._sequence += 1
        self.published += 1
        return message


class Consumer:
    """One consumer of a class: counts deliveries, tracks latency.

    A consumer receives messages only while admitted; LRGP's admission
    control actuates :attr:`admitted` through the broker's class registry.
    """

    def __init__(self, consumer_id: str, class_id: ClassId) -> None:
        self.consumer_id = consumer_id
        self.class_id = class_id
        self.received = 0
        self.total_latency = 0.0
        self.last_payload: Mapping[str, Any] | None = None

    def deliver(self, message: EventMessage, now: float) -> None:
        self.received += 1
        self.total_latency += now - message.published_at
        self.last_payload = message.payload

    @property
    def mean_latency(self) -> float:
        if self.received == 0:
            return 0.0
        return self.total_latency / self.received
