"""Event-driven infrastructure simulator (the Gryphon substitute).

A discrete-event pub/sub system materializing a :class:`repro.model.Problem`:
producers, transforming brokers, consumers, per-message resource metering.
Used to (a) validate the linear cost model of section 2.3 against measured
consumption, and (b) close the autonomic loop where LRGP's allocations are
enacted into a running system.
"""

from repro.events.autonomic import AutonomicController
from repro.events.broker import Broker, ClassAttachment, DeliveryService
from repro.events.reliability import (
    ReliabilityConfig,
    ReliabilityStats,
    ReliableDelivery,
    RetryPolicy,
)
from repro.events.engine import EventEngine, SimulationClock
from repro.events.metering import ModelComparison, ResourceMeter, compare_with_model
from repro.events.pubsub import Consumer, EventMessage, Producer
from repro.events.simulator import EventInfrastructure
from repro.events.transforms import (
    AggregateTransform,
    ChainTransform,
    EnrichTransform,
    FilterTransform,
    IdentityTransform,
    ProjectTransform,
    Transform,
)

__all__ = [
    "AggregateTransform",
    "AutonomicController",
    "Broker",
    "ChainTransform",
    "ClassAttachment",
    "Consumer",
    "DeliveryService",
    "EnrichTransform",
    "EventEngine",
    "EventInfrastructure",
    "EventMessage",
    "FilterTransform",
    "IdentityTransform",
    "ModelComparison",
    "Producer",
    "ProjectTransform",
    "ReliabilityConfig",
    "ReliabilityStats",
    "ReliableDelivery",
    "RetryPolicy",
    "ResourceMeter",
    "SimulationClock",
    "Transform",
    "compare_with_model",
]
