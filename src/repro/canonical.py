"""Canonical JSON and content hashing shared by configs, results and caches.

Everything that must be *addressable by content* — sweep cells, solver
configurations, cached results — funnels through the same two helpers so
that one definition of "canonical" exists in the repository:

* :func:`canonical_json` — ``json.dumps`` with sorted keys, minimal
  separators and ``allow_nan=False``.  Sorting makes the bytes
  independent of dict insertion order *and* of ``PYTHONHASHSEED``;
  rejecting NaN/inf keeps the encoding round-trippable (``NaN`` is not
  valid JSON, and two NaNs would never compare equal anyway, which is
  poison for a content address).
* :func:`content_hash` — the SHA-256 hex digest of that canonical form.

The sweep cache key (:mod:`repro.sweep.cache`), ``LRGPConfig.config_hash``
and ``SolveResult.config_hash`` are all thin wrappers over these.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_json", "content_hash"]


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding of ``payload``.

    Keys are sorted at every nesting level and separators carry no
    whitespace, so equal payloads produce byte-equal strings regardless
    of construction order or hash randomization.  Non-finite floats
    raise ``ValueError`` (``allow_nan=False``): a content address must
    denote a value JSON can faithfully round-trip.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_hash(payload: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json` of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
