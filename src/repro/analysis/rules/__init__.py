"""Rule registry for the LRGP domain linter.

Every concrete rule is registered in :data:`RULES`;
``tests/analysis/test_rules.py`` is parametrized over this mapping, so a
newly registered rule fails the suite until it ships with a violating and
a clean fixture.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.agent_isolation import AgentIsolationRule
from repro.analysis.rules.annotations import PublicAnnotationRule
from repro.analysis.rules.async_hygiene import AsyncHygieneRule
from repro.analysis.rules.deterministic_iteration import DeterministicIterationRule
from repro.analysis.rules.equation_tags import EquationTagRule
from repro.analysis.rules.exceptions import ExceptionHygieneRule
from repro.analysis.rules.float_equality import FloatEqualityRule
from repro.analysis.rules.frozen_model import FrozenModelRule
from repro.analysis.rules.numpy_discipline import NumpyDisciplineRule
from repro.analysis.rules.projection import UnprojectedUpdateRule
from repro.analysis.rules.randomness import UnseededRandomnessRule
from repro.analysis.rules.shared_state import SharedMutableStateRule
from repro.analysis.rules.telemetry_hotpath import TelemetryHotPathRule
from repro.analysis.rules.time_purity import SimulatedTimePurityRule

#: Rule id -> rule class, ordered by id.
RULES: dict[str, type[Rule]] = {
    rule.rule_id: rule
    for rule in (
        UnseededRandomnessRule,
        FloatEqualityRule,
        UnprojectedUpdateRule,
        AgentIsolationRule,
        FrozenModelRule,
        PublicAnnotationRule,
        ExceptionHygieneRule,
        EquationTagRule,
        SharedMutableStateRule,
        SimulatedTimePurityRule,
        DeterministicIterationRule,
        NumpyDisciplineRule,
        TelemetryHotPathRule,
        AsyncHygieneRule,
    )
}


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [RULES[rule_id]() for rule_id in sorted(RULES)]


def rules_for(ids: list[str] | None) -> list[Rule]:
    """Instances for a ``--rules R2,R5`` style selection (None = all)."""
    if ids is None:
        return all_rules()
    unknown = [rule_id for rule_id in ids if rule_id not in RULES]
    if unknown:
        raise KeyError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    return [RULES[rule_id]() for rule_id in sorted(set(ids))]


__all__ = [
    "RULES",
    "all_rules",
    "rules_for",
    "AgentIsolationRule",
    "AsyncHygieneRule",
    "DeterministicIterationRule",
    "EquationTagRule",
    "ExceptionHygieneRule",
    "FloatEqualityRule",
    "FrozenModelRule",
    "NumpyDisciplineRule",
    "PublicAnnotationRule",
    "SharedMutableStateRule",
    "SimulatedTimePurityRule",
    "TelemetryHotPathRule",
    "UnprojectedUpdateRule",
    "UnseededRandomnessRule",
]
