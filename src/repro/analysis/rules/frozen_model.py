"""R5 — the optimizer core never mutates the Problem or its topology.

LRGP treats the problem instance — flows, classes, nodes, links, cost
maps, routes — as frozen input: reconfiguration goes through
``Problem.without_flow``-style copy-on-write constructors (the figure 3
recovery path), never in-place mutation.  In-place edits desynchronize
the agents (each holds a reference to the same object) and invalidate
cached routes.  This rule flags, inside ``repro.core``, any assignment,
deletion or known mutating method call whose receiver chain is rooted at
a ``problem``/``topology`` object.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule, Severity

_SCOPED_PREFIX = "repro.core"
_ROOT_NAME = re.compile(r"(^|_)(problem|topology)$", re.IGNORECASE)
_MUTATORS = {
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "append",
    "extend",
    "insert",
    "remove",
    "discard",
    "add",
    "sort",
    "reverse",
}


def _root_is_model(node: ast.expr) -> bool:
    """True when an attribute/subscript chain is rooted at a model object."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and _ROOT_NAME.search(node.attr):
            return True
        node = node.value
    return isinstance(node, ast.Name) and bool(_ROOT_NAME.search(node.id))


def _mutated_target(target: ast.expr) -> bool:
    """A write like ``problem.x = ...`` or ``problem.flows[k] = ...``.

    Plain rebinding (``self._problem = problem``, ``problem = ...``) is
    fine: the flagged case is a write *through* the model object, i.e. the
    target is an attribute/subscript whose base chain reaches a model root.
    """
    if not isinstance(target, (ast.Attribute, ast.Subscript)):
        return False
    return _root_is_model(target.value)


class FrozenModelRule(Rule):
    rule_id = "R5"
    title = "repro.core must not mutate Problem/topology objects"
    severity = Severity.ERROR
    rationale = (
        "agents share one Problem reference; in-place edits desynchronize "
        "them — reconfiguration must build a new Problem (figure 3 path)"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.module.startswith(_SCOPED_PREFIX):
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                    and _root_is_model(func.value)
                ):
                    yield self.finding(
                        context,
                        node.lineno,
                        f"call to mutating method .{func.attr}() on a "
                        "Problem/topology object; build a new Problem instead",
                    )
                continue
            else:
                continue
            for target in targets:
                elements = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for element in elements:
                    if _mutated_target(element):
                        yield self.finding(
                            context,
                            element.lineno,
                            "write through a Problem/topology object; the "
                            "optimizer must treat the model as frozen",
                        )
