"""R8 — docstring equation tags in the core must exist in DESIGN.md.

The core docstrings cite the paper's equations (``eq. 12``) as their
specification; DESIGN.md's equation index is the single source of truth
for which equations the reproduction implements.  A tag that references
an equation absent from DESIGN.md is either a typo or a drifted docstring
— both corrode the paper-to-code mapping this repo exists to preserve.

When no DESIGN.md is found above the analyzed file the rule is silent
(there is nothing to validate against).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import (
    EQUATION_TAG_RE,
    Finding,
    ModuleContext,
    Rule,
    Severity,
)

_SCOPED_PREFIX = "repro.core"


def _docstring_nodes(tree: ast.Module) -> Iterator[ast.Constant]:
    """The string-constant node of every module/class/function docstring."""
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        body = node.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            yield body[0].value


class EquationTagRule(Rule):
    rule_id = "R8"
    title = "core docstring equation tags must exist in DESIGN.md"
    severity = Severity.ERROR
    rationale = (
        "docstrings cite equations as their spec; a tag missing from "
        "DESIGN.md's equation index is a typo or drifted documentation"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.module.startswith(_SCOPED_PREFIX):
            return
        known = context.known_equations
        if known is None:
            return
        for node in _docstring_nodes(context.tree):
            text = node.value
            # The docstring constant's lineno is its *last* line on
            # Python < 3.8 semantics; modern ast gives the first line, so
            # offsets from the raw text locate each tag.
            for match in EQUATION_TAG_RE.finditer(text):
                first = int(match.group("first"))
                last = int(match.group("last") or first)
                unknown = sorted(
                    n for n in range(first, min(last, first + 100) + 1)
                    if n not in known
                )
                if not unknown:
                    continue
                line = node.lineno + text.count("\n", 0, match.start())
                tags = ", ".join(f"eq. {n}" for n in unknown)
                yield self.finding(
                    context,
                    line,
                    f"docstring references {tags}, not defined in DESIGN.md "
                    f"(known equations: {self._known_summary(known)})",
                )

    @staticmethod
    def _known_summary(known: frozenset[int]) -> str:
        if not known:
            return "none"
        ordered = sorted(known)
        return f"{ordered[0]}-{ordered[-1]}" if len(ordered) > 1 else str(ordered[0])
