"""R2 — no float ``==``/``!=`` on rates, prices, utilities or step sizes.

Rates, prices and utilities are the iterates of a fixed-point computation
(eq. 7, 12-13); comparing them with raw ``==`` either encodes a hidden
"exactly clamped to 0.0" assumption or is a straight bug.  Both cases must
go through :mod:`repro.utility.tolerance` (``is_zero``, ``close_enough``)
or the explicit predicates ``math.isinf``/``math.isnan``/``math.isclose``,
which name the intent and centralize the tolerances.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule, Severity

#: Modules allowed to compare floats exactly: the tolerance helpers
#: implement the raw comparisons once, and the convergence diagnostics
#: and causal blame attribution intentionally test recorded samples
#: bit-for-bit (an oscillation count over *observed* prices must not
#: smooth over tiny reversals).
_EXEMPT_MODULES = {
    "repro.utility.tolerance",
    "repro.obs.diagnostics",
    "repro.obs.causal",
}

#: Identifier fragments that mark a quantity as one of the paper's
#: continuous iterates (flow rates, resource prices, utilities, step sizes).
_FLOAT_HINT = re.compile(r"rate|price|gamma|util|capacit", re.IGNORECASE)


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_inf_expression(node: ast.expr) -> bool:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "math"
        and node.attr in {"inf", "nan"}
    ):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
        and node.args[0].value.lower().lstrip("+-") in {"inf", "infinity", "nan"}
    )


def _hinted_identifier(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name) and _FLOAT_HINT.search(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and _FLOAT_HINT.search(node.attr):
        return node.attr
    return None


def _describe(node: ast.expr) -> str:
    if _is_float_literal(node):
        return "a float literal"
    if _is_inf_expression(node):
        return "an infinity/NaN constant"
    name = _hinted_identifier(node)
    return f"'{name}'" if name else "a float expression"


class FloatEqualityRule(Rule):
    rule_id = "R2"
    title = "no float ==/!= on rates, prices, utilities or step sizes"
    severity = Severity.ERROR
    rationale = (
        "rates/prices/utilities are fixed-point iterates (eq. 7, 12-13); raw "
        "equality hides clamp assumptions — use repro.utility.tolerance"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if context.module in _EXEMPT_MODULES:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (operands[index], operands[index + 1])
                suspect = next(
                    (
                        operand
                        for operand in pair
                        if _is_float_literal(operand)
                        or _is_inf_expression(operand)
                        or _hinted_identifier(operand)
                    ),
                    None,
                )
                if suspect is None:
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    context,
                    node.lineno,
                    f"float {symbol} comparison involving {_describe(suspect)}; "
                    "use repro.utility.tolerance (is_zero/close_enough) or "
                    "math.isinf/math.isnan",
                )
