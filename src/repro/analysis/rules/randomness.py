"""R1 — no unseeded randomness outside the workload generator.

Every experiment in the reproduction must be replayable: figures, tables
and the sync/async runtime comparisons all assume that a seed pins the
whole trajectory.  The process-global RNG (``random.random()`` and
friends, or ``numpy.random.*``) is shared mutable state that any import
can perturb, so all randomness must flow through an explicitly seeded
``random.Random`` (or ``numpy.random.default_rng``) instance.  Only
:mod:`repro.workloads.generator` — whose whole job is generating seeded
workloads — may own that discipline locally.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule, Severity

#: Constructors of explicitly-seeded generators; everything else on the
#: ``random`` / ``numpy.random`` modules touches global state.
_ALLOWED_RANDOM = {"Random", "SystemRandom"}
_ALLOWED_NUMPY = {"default_rng", "Generator", "SeedSequence", "RandomState"}
_EXEMPT_MODULES = {"repro.workloads.generator"}


def _is_numpy_random(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in {"numpy", "np"}
    )


class UnseededRandomnessRule(Rule):
    rule_id = "R1"
    title = "no unseeded global randomness outside workloads.generator"
    severity = Severity.ERROR
    rationale = (
        "replayability: every trajectory (figures 1-4, sync/async equivalence) "
        "must be pinned by an explicit seed"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if context.module in _EXEMPT_MODULES:
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name not in _ALLOWED_RANDOM
                ]
                if bad:
                    yield self.finding(
                        context,
                        node.lineno,
                        "importing global-state functions from 'random' "
                        f"({', '.join(bad)}); construct a seeded random.Random "
                        "instead",
                    )
            elif isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "random"
                    and node.attr not in _ALLOWED_RANDOM
                ):
                    yield self.finding(
                        context,
                        node.lineno,
                        f"'random.{node.attr}' uses the process-global RNG; "
                        "use a seeded random.Random instance",
                    )
                elif _is_numpy_random(node.value) and node.attr not in _ALLOWED_NUMPY:
                    yield self.finding(
                        context,
                        node.lineno,
                        f"'numpy.random.{node.attr}' uses the global numpy RNG; "
                        "use numpy.random.default_rng(seed)",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "Random"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and not node.args
                    and not node.keywords
                ):
                    yield self.finding(
                        context,
                        node.lineno,
                        "'random.Random()' without a seed is entropy-seeded; "
                        "pass an explicit seed",
                    )
