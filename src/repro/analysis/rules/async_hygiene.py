"""R14 — unawaited coroutines and blocking calls in async contexts.

Groundwork for ROADMAP item 3 (the always-on asyncio control plane).  Two
classic asyncio footguns, both invisible at runtime until the event loop
stalls in production:

* calling an ``async def`` without ``await`` creates a coroutine object
  and silently drops it — the work never runs (CPython warns only at GC
  time, and only sometimes);
* calling a blocking primitive (``time.sleep``, ``subprocess.run``,
  ``requests.*`` ...) inside a coroutine freezes the *entire* event loop —
  every agent on it misses its deadline, not just the caller.

Per-module: coroutine-ness of local functions and methods is visible in
the file, and blocking primitives resolve through the import table.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule, Severity
from repro.analysis.project import collect_import_aliases, resolve_dotted

#: Blocking primitives banned inside ``async def``.
_BLOCKING = {
    "time.sleep": "asyncio.sleep",
    "subprocess.run": "asyncio.create_subprocess_exec",
    "subprocess.call": "asyncio.create_subprocess_exec",
    "subprocess.check_call": "asyncio.create_subprocess_exec",
    "subprocess.check_output": "asyncio.create_subprocess_exec",
    "subprocess.Popen": "asyncio.create_subprocess_exec",
    "urllib.request.urlopen": "an async HTTP client",
    "requests.get": "an async HTTP client",
    "requests.post": "an async HTTP client",
    "requests.request": "an async HTTP client",
    "socket.create_connection": "asyncio.open_connection",
}


def _async_defs(tree: ast.Module) -> tuple[set[str], dict[str, set[str]]]:
    """Module-level async function names + per-class async method names."""
    functions: set[str] = set()
    methods: dict[str, set[str]] = {}
    for node in tree.body:
        if isinstance(node, ast.AsyncFunctionDef):
            functions.add(node.name)
        elif isinstance(node, ast.ClassDef):
            methods[node.name] = {
                child.name
                for child in node.body
                if isinstance(child, ast.AsyncFunctionDef)
            }
    return functions, methods


class AsyncHygieneRule(Rule):
    rule_id = "R14"
    title = "no dropped coroutines or blocking calls in async functions"
    severity = Severity.ERROR
    rationale = (
        "ROADMAP item 3: one blocking call or dropped coroutine on the "
        "asyncio control plane stalls every agent sharing the loop"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.module:
            return
        async_functions, async_methods = _async_defs(context.tree)
        imports = collect_import_aliases(context.tree)

        for class_name, display, function in _async_bodies(context.tree):
            own_async = async_methods.get(class_name or "", set())
            for statement in ast.walk(function):
                if not isinstance(statement, ast.Expr):
                    continue
                call = statement.value
                if not isinstance(call, ast.Call):
                    continue
                dropped = self._dropped_coroutine(
                    call, async_functions, own_async
                )
                if dropped is not None:
                    yield self.finding(
                        context,
                        call.lineno,
                        f"coroutine '{dropped}(...)' is never awaited — the "
                        "call creates a coroutine object and drops it; add "
                        "`await` (or schedule it with asyncio.create_task)",
                    )
            for call_node in ast.walk(function):
                if not isinstance(call_node, ast.Call):
                    continue
                resolved = resolve_dotted(call_node.func, imports)
                if resolved in _BLOCKING:
                    yield self.finding(
                        context,
                        call_node.lineno,
                        f"blocking call '{resolved}' inside async "
                        f"'{display}'; this stalls the whole event loop — use "
                        f"{_BLOCKING[resolved]}",
                    )

    @staticmethod
    def _dropped_coroutine(
        call: ast.Call, async_functions: set[str], own_async: set[str]
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id in async_functions:
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in own_async
        ):
            return f"self.{func.attr}"
        return None


def _async_bodies(
    tree: ast.Module,
) -> Iterator[tuple[str | None, str, ast.AsyncFunctionDef]]:
    """(owning class, display name, node) for every async def in ``tree``."""
    for node in tree.body:
        if isinstance(node, ast.AsyncFunctionDef):
            yield None, node.name, node
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, ast.AsyncFunctionDef):
                    yield node.name, f"{node.name}.{child.name}", child
