"""R7 — no bare or swallowed exceptions in the runtime and event engines.

The runtime and event engines are the layers that *enact* allocations;
an exception silently swallowed there leaves agents with stale prices or
brokers with dropped messages while the optimizer believes the iterate
landed — precisely the staleness failure mode section 3.5 is careful
about.  Bare ``except:`` (which also catches ``KeyboardInterrupt`` and
``SystemExit``) is flagged everywhere; ``except ...: pass`` handlers are
flagged inside ``repro.runtime`` and ``repro.events``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule, Severity

_ENGINE_PREFIXES = ("repro.runtime", "repro.events")


def _catches_base_exception(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    return isinstance(handler.type, ast.Name) and handler.type.id == "BaseException"


def _swallows(handler: ast.ExceptHandler) -> bool:
    return all(isinstance(statement, ast.Pass) for statement in handler.body)


class ExceptionHygieneRule(Rule):
    rule_id = "R7"
    title = "no bare except / swallowed exceptions in runtime+events"
    severity = Severity.ERROR
    rationale = (
        "a swallowed failure in the enactment path leaves agents on stale "
        "prices while the optimizer believes the update landed (section 3.5)"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        in_engine = context.module.startswith(_ENGINE_PREFIXES)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _catches_base_exception(node):
                caught = "bare 'except:'" if node.type is None else "'except BaseException:'"
                yield self.finding(
                    context,
                    node.lineno,
                    f"{caught} also catches KeyboardInterrupt/SystemExit; "
                    "catch a specific exception type",
                )
            elif in_engine and _swallows(node):
                yield self.finding(
                    context,
                    node.lineno,
                    "exception handler swallows the error with 'pass'; "
                    "engines must surface or explicitly record failures",
                )
