"""R4 — runtime agents share nothing but protocol messages.

The whole point of the LRGP deployment (section 3.5) is that sources,
nodes and links exchange *only* price/rate/population messages; the
sync-vs-async equivalence and the staleness-tolerance argument both
collapse if one agent can peek at (or mutate) another agent's state
between rounds.  Inside ``repro.runtime`` agent classes this rule flags:

* reads of ``_``-private attributes on anything other than ``self``;
* writes to attributes of non-``self`` objects;
* parameters or attributes that smuggle a whole agent instance into
  another agent's state.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule, Severity

_SCOPED_PREFIX = "repro.runtime"


def _is_agent_class(node: ast.ClassDef) -> bool:
    if node.name.endswith("Agent"):
        return True
    for base in node.bases:
        if isinstance(base, ast.Name) and base.id.endswith("Agent"):
            return True
        if isinstance(base, ast.Attribute) and base.attr.endswith("Agent"):
            return True
    return False


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _is_private(attr: str) -> bool:
    return attr.startswith("_") and not attr.startswith("__")


class AgentIsolationRule(Rule):
    rule_id = "R4"
    title = "agents must not reach into other agents' state"
    severity = Severity.ERROR
    rationale = (
        "section 3.5: the distributed protocol exchanges only messages; "
        "cross-agent state sharing voids the sync/async equivalence"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.module.startswith(_SCOPED_PREFIX):
            return
        for class_node in ast.walk(context.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            if not _is_agent_class(class_node):
                continue
            yield from self._check_class(context, class_node)

    def _check_class(
        self, context: ModuleContext, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        for node in ast.walk(class_node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in (
                    *node.args.posonlyargs,
                    *node.args.args,
                    *node.args.kwonlyargs,
                ):
                    annotation = arg.annotation
                    if annotation is not None and "Agent" in ast.unparse(annotation):
                        yield self.finding(
                            context,
                            arg.lineno,
                            f"{class_node.name}.{node.name}() takes another "
                            f"agent instance ({arg.arg}); agents may only "
                            "exchange protocol messages",
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and not _is_self(
                        target.value
                    ):
                        if isinstance(target.value, ast.Attribute) and _is_self(
                            target.value.value
                        ):
                            continue  # self._x.y = ... mutates own state
                        yield self.finding(
                            context,
                            target.lineno,
                            f"{class_node.name} writes attribute "
                            f"{target.attr!r} of a non-self object; send a "
                            "message instead",
                        )
            elif isinstance(node, ast.Attribute):
                if _is_private(node.attr) and not _is_self(node.value):
                    yield self.finding(
                        context,
                        node.lineno,
                        f"{class_node.name} reads private attribute "
                        f"{node.attr!r} of a non-self object; agents may only "
                        "exchange protocol messages",
                    )
