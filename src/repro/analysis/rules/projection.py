"""R3 — price and gamma writes must be projected or validated.

Eq. 12-13 define the price iterates as *projections* onto the non-negative
orthant, and section 4.2 clamps the adaptive step size to [0.001, 0.1].
A price or gamma assignment that reaches the instance attribute without a
``max``/``min``/``clamp`` projection (or a raising validation guard for
externally supplied values) silently breaks dual feasibility — the classic
distributed-Lagrangian sign bug.

The check is per-function: any function in the price/gamma modules that
writes a ``price``- or ``gamma``-named target must contain either a
projection call (``max``/``min``/``clamp``/``clip``) or a ``raise``-based
validation guard.  Module-level constants (the clamp bounds themselves)
are exempt.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule, Severity

_SCOPED_MODULES = {"repro.core.prices", "repro.core.gamma"}
_TARGET_NAME = re.compile(r"price|gamma", re.IGNORECASE)
_PROJECTION_FUNCTIONS = {"max", "min", "clamp", "clip"}


def _target_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _written_targets(statement: ast.stmt) -> list[tuple[str, int]]:
    """(name, line) for every price/gamma-like assignment target."""
    targets: list[ast.expr] = []
    if isinstance(statement, ast.Assign):
        targets = list(statement.targets)
    elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
        targets = [statement.target]
    written: list[tuple[str, int]] = []
    for target in targets:
        elements = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
        for element in elements:
            name = _target_name(element)
            if name is not None and _TARGET_NAME.search(name):
                written.append((name, element.lineno))
    return written


def _has_projection(function: ast.AST) -> bool:
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _PROJECTION_FUNCTIONS:
                return True
            if isinstance(func, ast.Attribute) and func.attr in _PROJECTION_FUNCTIONS:
                return True
    return False


_VALIDATOR_NAME = re.compile(r"validate|check|require", re.IGNORECASE)


def _has_validation_guard(function: ast.AST) -> bool:
    """A raising guard, inline or delegated to a ``validate_*`` helper."""
    for node in ast.walk(function):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name is not None and _VALIDATOR_NAME.search(name):
                return True
    return False


class UnprojectedUpdateRule(Rule):
    rule_id = "R3"
    title = "price/gamma writes must flow through a projection or guard"
    severity = Severity.ERROR
    rationale = (
        "eq. 12-13 project prices onto the non-negative orthant and section "
        "4.2 clamps gamma to [0.001, 0.1]; an unprojected write breaks dual "
        "feasibility"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if context.module not in _SCOPED_MODULES:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            writes = [
                written
                for statement in ast.walk(node)
                if isinstance(statement, ast.stmt)
                for written in _written_targets(statement)
            ]
            if not writes:
                continue
            if _has_projection(node) or _has_validation_guard(node):
                continue
            for name, line in writes:
                yield self.finding(
                    context,
                    line,
                    f"assignment to {name!r} in {node.name}() has no "
                    "max/min/clamp projection and no raising validation guard",
                )
