"""R11 — deterministic iteration on paths feeding trace events and replay.

Live-vs-replay bit-identity (PR 5) and the PYTHONHASHSEED-independence CI
legs both die the moment an unordered collection is iterated on a path
that feeds the event stream: set iteration order depends on the process
hash seed, ``os.listdir``/``glob`` order on the filesystem.  Two runs of
the *same* seeded experiment can then emit events in different orders, and
the replayed fold diverges from the live one.

Interprocedural: the sinks are the trace/replay surfaces (telemetry
``emit`` methods, the replay engine, trace rendering, runtime scheduling
internals); the checked set is every function from which a sink is
reachable.  Inside those functions the rule flags ``for`` loops and
comprehensions over set-typed expressions, ``os.listdir``, ``os.scandir``,
``glob`` and ``Path.iterdir`` — unless already wrapped in ``sorted(...)``.

The fix is mechanical (wrap the iterable in ``sorted(...)``), so findings
carry a :class:`~repro.analysis.engine.FixSpec` and ``repro lint --fix``
can apply it.  Plain ``dict`` iteration is deliberately *not* flagged:
dicts are insertion-ordered, and the insertion sites are where determinism
is enforced.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, FixSpec, Rule, Severity
from repro.analysis.project import (
    FunctionInfo,
    ProjectContext,
    resolve_dotted,
)

#: Calls that return unordered (or order-unstable) iterables.
_UNORDERED_CALLS = {
    "set": "set",
    "frozenset": "frozenset",
    "os.listdir": "os.listdir()",
    "os.scandir": "os.scandir()",
    "glob.glob": "glob.glob()",
    "glob.iglob": "glob.iglob()",
}

#: Method names returning unordered iterables regardless of receiver.
_UNORDERED_METHODS = {"iterdir": "Path.iterdir()"}

#: Annotation heads that type a name as a set.
_SET_ANNOTATIONS = ("set", "frozenset", "Set", "AbstractSet", "MutableSet", "FrozenSet")

#: Runtime scheduling internals that order the event stream.
_SINK_METHODS = frozenset({"_dispatch", "_schedule", "_send", "_deliver"})

#: Modules that *are* the trace/replay surface.
_SINK_MODULE_PREFIXES = ("repro.obs.replay", "repro.core.trace")


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    head = annotation
    if isinstance(head, ast.Subscript):
        head = head.value
    if isinstance(head, ast.Attribute):
        return head.attr in _SET_ANNOTATIONS
    return isinstance(head, ast.Name) and head.id in _SET_ANNOTATIONS


def _set_typed_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    return {
        arg.arg
        for arg in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs)
        if _annotation_is_set(arg.annotation)
    }


def _set_typed_attrs(class_node: ast.ClassDef, imports: dict[str, str]) -> set[str]:
    """Attributes any method assigns (or annotates) as a set."""
    attrs: set[str] = set()
    for node in ast.walk(class_node):
        if isinstance(node, ast.Assign):
            if _builds_set(node.value, imports):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
        elif isinstance(node, ast.AnnAssign) and _annotation_is_set(node.annotation):
            target = node.target
            if isinstance(target, ast.Name):
                attrs.add(target.id)
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
    return attrs


def _builds_set(expr: ast.expr, imports: dict[str, str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        resolved = resolve_dotted(expr.func, imports)
        return resolved in {"set", "frozenset"}
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _builds_set(expr.left, imports) or _builds_set(expr.right, imports)
    return False


def _set_typed_locals(
    node: ast.FunctionDef | ast.AsyncFunctionDef, imports: dict[str, str]
) -> set[str]:
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Assign) and _builds_set(child.value, imports):
            for target in child.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif (
            isinstance(child, ast.AnnAssign)
            and isinstance(child.target, ast.Name)
            and _annotation_is_set(child.annotation)
        ):
            names.add(child.target.id)
    return names


def _is_sink(info: FunctionInfo, project: ProjectContext) -> bool:
    if info.module.startswith(_SINK_MODULE_PREFIXES):
        return True
    if info.name == "emit" and info.module.startswith("repro.obs"):
        return True
    return info.module.startswith("repro.runtime") and info.name in _SINK_METHODS


class DeterministicIterationRule(Rule):
    rule_id = "R11"
    title = "no unordered iteration feeding trace events or replay"
    severity = Severity.ERROR
    rationale = (
        "bit-identical replay: set/listdir/glob iteration order varies with "
        "PYTHONHASHSEED and the filesystem, so event order would too"
    )

    def project_check(self, project: object) -> Iterator[Finding]:
        assert isinstance(project, ProjectContext)
        sinks = [
            info.qualname
            for info in project.functions.values()
            if _is_sink(info, project)
        ]
        feeding = project.reaching(sinks)
        for qualname in sorted(feeding):
            info = project.functions[qualname]
            yield from self._check_function(info, project)

    def _check_function(
        self, info: FunctionInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        symbols = project.modules[info.module]
        imports = symbols.imports
        params = _set_typed_params(info.node)
        local_sets = _set_typed_locals(info.node, imports)
        owner = project.class_of(info)
        attr_sets = (
            _set_typed_attrs(owner.node, imports) if owner is not None else set()
        )

        def unordered(expr: ast.expr) -> str | None:
            """Description when ``expr`` iterates in unstable order."""
            if isinstance(expr, (ast.Set, ast.SetComp)):
                return "a set literal"
            if isinstance(expr, ast.Call):
                resolved = resolve_dotted(expr.func, imports)
                if resolved in _UNORDERED_CALLS:
                    return _UNORDERED_CALLS[resolved]
                if (
                    isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in _UNORDERED_METHODS
                ):
                    return _UNORDERED_METHODS[expr.func.attr]
                return None
            if isinstance(expr, ast.BinOp) and _builds_set(expr, imports):
                return "a set expression"
            if isinstance(expr, ast.Name) and (
                expr.id in params or expr.id in local_sets
            ):
                return f"set-typed '{expr.id}'"
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in attr_sets
            ):
                return f"set-typed 'self.{expr.attr}'"
            return None

        for node in ast.walk(info.node):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters = [generator.iter for generator in node.generators]
            for expr in iters:
                description = unordered(expr)
                if description is None:
                    continue
                yield self.finding(
                    info.context,
                    expr.lineno,
                    f"iterating {description} in '{info.qualname}', which "
                    "feeds trace events/message scheduling/replay; iteration "
                    "order varies with the hash seed — wrap in sorted(...)",
                    fix=self._sorted_fix(info, expr),
                )

    def _sorted_fix(self, info: FunctionInfo, expr: ast.expr) -> FixSpec | None:
        segment = ast.get_source_segment(info.context.source, expr)
        if segment is None or expr.end_lineno is None or expr.end_col_offset is None:
            return None
        return FixSpec(
            start_line=expr.lineno,
            start_col=expr.col_offset,
            end_line=expr.end_lineno,
            end_col=expr.end_col_offset,
            replacement=f"sorted({segment})",
        )
