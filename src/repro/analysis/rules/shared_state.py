"""R9 — no shared mutable state across agent/runtime callback boundaries.

The LRGP deployment argument (section 3.5) and its staleness-tolerance
extension both assume agents are *share-nothing*: every observable
interaction travels as a protocol message.  A module-level list, dict, set
or ndarray that two different agent or runtime callback classes can reach
— directly or through any chain of calls — is a race waiting for the
parallel sweep farm and the asyncio control plane (ROADMAP items 2–3): the
synchronous runtime hides the hazard, the asynchronous one turns it into
iteration-order-dependent corruption.

This is the flagship interprocedural rule: it combines the project symbol
table (module-level mutable globals), per-function global-reference sets,
and reverse call-graph reachability to ask, for each global, *which
callback classes can reach code that touches it*.  Two or more distinct
classes → finding at the global's definition site.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.engine import Finding, Rule, Severity
from repro.analysis.project import FunctionInfo, ProjectContext

#: Class-name suffixes that mark message-driven callback owners.
_CALLBACK_SUFFIXES = ("Agent", "Runtime")


def _entry_class(info: FunctionInfo, project: ProjectContext) -> str | None:
    """Qualname of the callback class owning ``info``, if it is one."""
    owner = project.class_of(info)
    if owner is None:
        return None
    names = (owner.name, *owner.bases)
    if any(name.endswith(_CALLBACK_SUFFIXES) for name in names):
        return owner.qualname
    return None


class SharedMutableStateRule(Rule):
    rule_id = "R9"
    title = "no module-level mutable state shared across agent boundaries"
    severity = Severity.ERROR
    rationale = (
        "section 3.5: agents are share-nothing; a mutable global reachable "
        "from two callback classes is a data race once execution overlaps"
    )

    def project_check(self, project: object) -> Iterator[Finding]:
        assert isinstance(project, ProjectContext)
        for global_var in project.mutable_globals.values():
            touching = [
                info
                for info in project.functions.values()
                if global_var.qualname in info.global_refs
            ]
            if not touching:
                continue
            owners: set[str] = set()
            for info in touching:
                for caller in project.reaching([info.qualname]):
                    entry = _entry_class(project.functions[caller], project)
                    if entry is not None:
                        owners.add(entry)
            if len(owners) < 2:
                continue
            context = project.context_for(global_var.module)
            if context is None:
                continue
            listed = ", ".join(sorted(owners))
            yield self.finding(
                context,
                global_var.line,
                f"module-level mutable {global_var.kind} "
                f"'{global_var.name}' is reachable from {len(owners)} "
                f"agent/runtime callback classes ({listed}); shared mutable "
                "state breaks agent isolation — pass state explicitly or "
                "freeze it",
            )
