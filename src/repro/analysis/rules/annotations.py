"""R6 — public functions in the strictly-typed modules are fully typed.

``repro`` ships ``py.typed``: downstream users type-check against these
signatures, and the strict-mypy CI lane only works if every public entry
point in ``repro.core``, ``repro.model`` and ``repro.solve`` annotates
all parameters (including ``*args``/``**kwargs``) and the return type.
Private helpers (leading underscore, excluding dunders) and nested
functions are exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule, Severity

_SCOPED_PREFIXES = (
    "repro.core",
    "repro.model",
    "repro.solve",
    # The causal-tracing and replay layers entered strict scope in PR 5:
    # their outputs feed CLI reports and regression tests, so unannotated
    # publics poison inference the same way core/model ones do.
    "repro.obs.causal",
    "repro.obs.replay",
)


def _is_public(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")


def _missing_annotations(
    node: ast.FunctionDef | ast.AsyncFunctionDef, *, is_method: bool
) -> list[str]:
    missing: list[str] = []
    positional = [*node.args.posonlyargs, *node.args.args]
    skip_first = is_method and not any(
        isinstance(decorator, ast.Name) and decorator.id == "staticmethod"
        for decorator in node.decorator_list
    )
    for index, arg in enumerate(positional):
        if index == 0 and skip_first:
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in node.args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if node.args.vararg is not None and node.args.vararg.annotation is None:
        missing.append(f"*{node.args.vararg.arg}")
    if node.args.kwarg is not None and node.args.kwarg.annotation is None:
        missing.append(f"**{node.args.kwarg.arg}")
    if node.returns is None:
        missing.append("return")
    return missing


class PublicAnnotationRule(Rule):
    rule_id = "R6"
    title = "public core/model/solve functions must be fully type-annotated"
    severity = Severity.WARNING
    rationale = (
        "the package ships py.typed and CI runs mypy --strict on "
        "repro.core/repro.model/repro.solve; unannotated publics "
        "poison inference"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.module.startswith(_SCOPED_PREFIXES):
            return
        for owner, function in self._public_functions(context.tree):
            missing = _missing_annotations(function, is_method=owner is not None)
            if missing:
                qualified = (
                    f"{owner}.{function.name}" if owner else function.name
                )
                yield self.finding(
                    context,
                    function.lineno,
                    f"public function {qualified}() is missing annotations "
                    f"for: {', '.join(missing)}",
                )

    @staticmethod
    def _public_functions(
        tree: ast.Module,
    ) -> Iterator[tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(node.name):
                    yield None, node
            elif isinstance(node, ast.ClassDef) and _is_public(node.name):
                for member in node.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and _is_public(member.name):
                        yield node.name, member
