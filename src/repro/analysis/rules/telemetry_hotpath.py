"""R13 — no telemetry event construction ahead of the enabled guard.

The telemetry layer's contract (docs/observability.md) is that a disabled
:class:`~repro.obs.telemetry.Telemetry` — the ``NULL_TELEMETRY`` default —
costs nothing on the hot path: *no event object is even constructed*.
That is what keeps instrumented-but-disabled runs within the <5% overhead
budget the perf suite enforces.  The pattern every call site must follow:

.. code-block:: python

    if telemetry.enabled:
        telemetry.emit(IterationEvent(...))

This rule flags any ``*Event(...)`` construction (classes imported from
:mod:`repro.obs.events`) that is not dominated by an ``.enabled`` check —
either an enclosing ``if ... .enabled`` / ``if ... is not None`` test or
an early ``if not ... .enabled: return`` ahead of it in the same suite.

Exempt: :mod:`repro.obs` itself (the layer's internals construct events by
design) and :mod:`repro.core.trace` (offline trace rendering — there is no
hot path to protect once events are being materialized from disk).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Sequence

from repro.analysis.engine import Finding, ModuleContext, Rule, Severity

_EXEMPT_PREFIXES = ("repro.obs", "repro.core.trace", "repro.analysis")


def _event_names(tree: ast.Module) -> set[str]:
    """Local names bound to event classes from ``repro.obs.events``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "repro.obs.events":
            for alias in node.names:
                if alias.name.endswith("Event"):
                    names.add(alias.asname or alias.name)
    return names


def _test_guards(test: ast.expr) -> bool:
    """True when ``test`` checks ``.enabled`` or ``... is not None``."""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "enabled":
            return True
        if isinstance(node, ast.Compare) and any(
            isinstance(op, ast.IsNot) for op in node.ops
        ):
            return True
    return False


def _test_rejects(test: ast.expr) -> bool:
    """True for ``not ....enabled`` / ``... is None`` early-exit tests."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return any(
            isinstance(node, ast.Attribute) and node.attr == "enabled"
            for node in ast.walk(test.operand)
        )
    if isinstance(test, ast.Compare):
        return any(isinstance(op, ast.Is) for op in test.ops) and any(
            isinstance(comparator, ast.Constant) and comparator.value is None
            for comparator in test.comparators
        )
    return False


def _exits(body: Sequence[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


class TelemetryHotPathRule(Rule):
    rule_id = "R13"
    title = "telemetry events must be constructed behind the enabled guard"
    severity = Severity.ERROR
    rationale = (
        "<5% overhead invariant: NULL_TELEMETRY runs must not allocate "
        "event objects; construction belongs inside `if telemetry.enabled:`"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.module or context.module.startswith(_EXEMPT_PREFIXES):
            return
        events = _event_names(context.tree)
        if not events:
            return
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_suite(context, node.body, events, False)

    def _check_suite(
        self,
        context: ModuleContext,
        body: Sequence[ast.stmt],
        events: set[str],
        guarded: bool,
    ) -> Iterator[Finding]:
        dominated = guarded
        for statement in body:
            if isinstance(statement, ast.If):
                if _test_guards(statement.test):
                    yield from self._check_suite(
                        context, statement.body, events, True
                    )
                    yield from self._check_suite(
                        context, statement.orelse, events, dominated
                    )
                else:
                    yield from self._check_suite(
                        context, statement.body, events, dominated
                    )
                    yield from self._check_suite(
                        context, statement.orelse, events, dominated
                    )
                    # `if not telemetry.enabled: return` guards the rest of
                    # this suite.
                    if _test_rejects(statement.test) and _exits(statement.body):
                        dominated = True
                continue
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_suite(context, statement.body, events, False)
                continue
            nested = [
                child
                for attr in ("body", "orelse", "finalbody", "handlers")
                for child in getattr(statement, attr, [])
            ]
            if nested:
                suites: list[Sequence[ast.stmt]] = []
                for attr in ("body", "orelse", "finalbody"):
                    suite = getattr(statement, attr, None)
                    if suite:
                        suites.append(suite)
                for handler in getattr(statement, "handlers", []):
                    suites.append(handler.body)
                for suite in suites:
                    yield from self._check_suite(context, suite, events, dominated)
                continue
            if not dominated:
                yield from self._flag_constructions(context, statement, events)

    def _flag_constructions(
        self, context: ModuleContext, statement: ast.stmt, events: set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(statement):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in events
            ):
                yield self.finding(
                    context,
                    node.lineno,
                    f"'{node.func.id}(...)' constructed outside an "
                    "`.enabled` guard; event allocation on the hot path "
                    "violates the <5% telemetry overhead budget — wrap in "
                    "`if telemetry.enabled:`",
                )
