"""R10 — simulated-time purity on runtime delivery and replay paths.

The asynchronous runtime owns a *virtual* clock: latencies are drawn from
a seeded RNG and the event queue orders deliveries by simulated timestamps.
The bit-identical replay guarantee (PR 5) holds only if nothing on a
message-delivery or replay path consults the real world — a
``time.time()`` read, a ``sleep``, a file or socket touched mid-delivery
all produce values (or timing) the trace cannot reproduce.

Interprocedural: roots are the runtime/replay entry points, and the rule
walks the call graph from them, flagging any reachable function that calls
a wall-clock or I/O primitive.  The telemetry layer is allowlisted —
``repro.obs.events.now_ns`` stamps events with ``time.monotonic_ns`` for
latency accounting, and sinks legitimately write trace files; both are
observability outputs, not inputs to the simulation, so traversal stops at
the allowlisted modules and their internals are never scanned.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.engine import Finding, Rule, Severity
from repro.analysis.project import FunctionInfo, ProjectContext

#: Wall-clock and blocking primitives banned on simulated-time paths.
_BANNED = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.sleep": "real-time sleep",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "open": "file I/O",
    "io.open": "file I/O",
}

#: Dotted prefixes whose calls are banned wholesale (network / process I/O).
_BANNED_PREFIXES = ("socket.", "urllib.", "requests.", "subprocess.", "http.")

#: Telemetry/observability modules: exempt from scanning and traversal —
#: their monotonic stamps and trace-file writes are observability outputs,
#: not simulation inputs.  This is the R10 allowlist from docs/analysis.md.
ALLOWLIST = (
    "repro.obs.events",
    "repro.obs.telemetry",
    "repro.obs.registry",
    "repro.obs.sinks",
    "repro.obs.export",
)

#: Method names that mark runtime delivery entry points regardless of class.
_DELIVERY_METHODS = frozenset(
    {"receive", "step", "run", "run_until", "deliver"}
)


def _is_root(info: FunctionInfo, project: ProjectContext) -> bool:
    if info.module.startswith("repro.obs.replay"):
        return True
    if not info.module.startswith("repro.runtime"):
        return False
    owner = project.class_of(info)
    if owner is None:
        return False
    names = (owner.name, *owner.bases)
    if not any(name.endswith(("Runtime", "Agent")) for name in names):
        return False
    return info.name.startswith("_handle_") or info.name in _DELIVERY_METHODS or (
        info.name.startswith("_") and info.name != "__init__"
    )


def _violation(target: str | None) -> str | None:
    if target is None:
        return None
    if target in _BANNED:
        return _BANNED[target]
    if target.startswith(_BANNED_PREFIXES):
        return "network/process I/O"
    return None


class SimulatedTimePurityRule(Rule):
    rule_id = "R10"
    title = "no wall-clock or blocking I/O on simulated-time paths"
    severity = Severity.ERROR
    rationale = (
        "replayability: delivery and replay paths must be functions of the "
        "trace alone; wall-clock reads and I/O cannot be reproduced"
    )

    def project_check(self, project: object) -> Iterator[Finding]:
        assert isinstance(project, ProjectContext)
        roots = [
            info.qualname
            for info in project.functions.values()
            if _is_root(info, project)
        ]
        reachable = project.reachable_from(roots, stop=ALLOWLIST)
        for qualname in sorted(reachable):
            info = project.functions[qualname]
            if info.module.startswith(ALLOWLIST):
                continue
            for site in info.calls:
                kind = _violation(site.target)
                if kind is None:
                    continue
                yield self.finding(
                    info.context,
                    site.line,
                    f"{kind} '{site.target}' inside '{qualname}', which is "
                    "reachable from a runtime delivery/replay path; "
                    "simulated time must be pure — use the virtual clock or "
                    "the telemetry layer's stamps",
                )
