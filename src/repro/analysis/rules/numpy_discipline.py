"""R12 — numpy aliasing and dtype discipline in the compiled core.

The compiled problem representation (:mod:`repro.core.compiled`) is a set
of float64 arrays shared by every vectorized kernel.  Two silent ways to
corrupt it:

* **dtype drift** — introducing ``float32`` anywhere in the pipeline makes
  later mixed-dtype arithmetic silently upcast or, worse, round: the
  vectorized and reference engines then disagree at the 1e-7 level, which
  the equivalence tests only catch on some workloads;
* **view aliasing** — an in-place operator applied to a *view* (a slice,
  ``.T``, ``reshape``, ``ravel``) writes through to the parent array, so a
  kernel that thinks it is updating a scratch buffer is mutating the
  compiled problem under every other kernel's feet.

Scoped to ``repro.core`` (where the compiled arrays live).  Per-module:
both patterns are visible locally.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule, Severity
from repro.analysis.project import collect_import_aliases, resolve_dotted

_SCOPED_PREFIX = "repro.core"

#: numpy attributes that introduce a 32-bit float dtype.
_FLOAT32_ATTRS = {"numpy.float32", "numpy.single", "numpy.half", "numpy.float16"}

#: Method calls returning views of their receiver.
_VIEW_METHODS = frozenset(
    {"reshape", "ravel", "view", "transpose", "swapaxes", "diagonal"}
)


def _scoped(module: str) -> bool:
    return module == _SCOPED_PREFIX or module.startswith(_SCOPED_PREFIX + ".")


def _is_view_expr(expr: ast.expr) -> bool:
    """Expressions that (for ndarrays) alias their source's buffer."""
    if isinstance(expr, ast.Subscript):
        sl = expr.slice
        if isinstance(sl, ast.Slice):
            return True
        if isinstance(sl, ast.Tuple) and any(
            isinstance(element, ast.Slice) for element in sl.elts
        ):
            return True
        return False
    if isinstance(expr, ast.Attribute):
        return expr.attr == "T"
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        return expr.func.attr in _VIEW_METHODS
    return False


class NumpyDisciplineRule(Rule):
    rule_id = "R12"
    title = "no float32 drift or in-place ops on array views in repro.core"
    severity = Severity.ERROR
    rationale = (
        "engine equivalence: the compiled core is float64 end to end, and "
        "in-place writes through views mutate the shared problem arrays"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not _scoped(context.module):
            return
        imports = collect_import_aliases(context.tree)
        if "numpy" not in imports.values() and not any(
            target.startswith("numpy.") for target in imports.values()
        ):
            return
        yield from self._check_float32(context, imports)
        yield from self._check_view_aliasing(context)

    def _check_float32(
        self, context: ModuleContext, imports: dict[str, str]
    ) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Attribute):
                resolved = resolve_dotted(node, imports)
                if resolved in _FLOAT32_ATTRS:
                    yield self.finding(
                        context,
                        node.lineno,
                        f"'{resolved}' introduces a 32-bit float into the "
                        "compiled core; the pipeline is float64 end to end "
                        "(engine-equivalence tolerance assumes it)",
                    )
            elif isinstance(node, ast.keyword) and node.arg == "dtype":
                value = node.value
                if isinstance(value, ast.Constant) and value.value in {
                    "float32",
                    "single",
                    "half",
                    "float16",
                }:
                    yield self.finding(
                        context,
                        value.lineno,
                        f"dtype={value.value!r} introduces a 32-bit float "
                        "into the compiled core; use float64",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
            ):
                for argument in node.args:
                    if isinstance(argument, ast.Constant) and argument.value in {
                        "float32",
                        "single",
                        "half",
                        "float16",
                    }:
                        yield self.finding(
                            context,
                            argument.lineno,
                            f"astype({argument.value!r}) narrows to 32-bit "
                            "float in the compiled core; use float64",
                        )

    def _check_view_aliasing(self, context: ModuleContext) -> Iterator[Finding]:
        for function in ast.walk(context.tree):
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            view_locals: dict[str, int] = {}
            for node in ast.walk(function):
                if isinstance(node, ast.Assign) and _is_view_expr(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            view_locals[target.id] = node.lineno
                elif (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.target, ast.Name)
                    and node.target.id in view_locals
                ):
                    name = node.target.id
                    yield self.finding(
                        context,
                        node.lineno,
                        f"in-place op on '{name}' (bound to a view at line "
                        f"{view_locals[name]}) writes through to the parent "
                        "array; operate on a copy or write out-of-place",
                    )
