"""Mechanical fix application for findings that carry a ``FixSpec``.

Some rules know the exact source edit that resolves them (R11's
``sorted(...)`` wrap); those findings carry a
:class:`~repro.analysis.engine.FixSpec` and ``repro lint --fix`` applies
them here.  ``--fix-dry-run`` is the CI variant: exit non-zero when
mechanically fixable findings exist, so a PR can never merge with a fix
the tool could have written itself.

Application is per-file and bottom-up (later edits first), so earlier
offsets stay valid; overlapping fixes are refused rather than guessed at.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

from repro.analysis.engine import Finding, FixSpec


def fixable(findings: Iterable[Finding]) -> list[Finding]:
    """The subset of findings carrying a mechanical fix."""
    return [finding for finding in findings if finding.fix is not None]


def _position(line: int, col: int, line_offsets: list[int]) -> int:
    return line_offsets[line - 1] + col


def _line_offsets(source: str) -> list[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _apply_to_source(source: str, fixes: list[FixSpec]) -> str:
    offsets = _line_offsets(source)
    spans = sorted(
        (
            _position(fix.start_line, fix.start_col, offsets),
            _position(fix.end_line, fix.end_col, offsets),
            fix.replacement,
        )
        for fix in fixes
    )
    previous_end = -1
    for start, end, _ in spans:
        if start < previous_end:
            raise ValueError("overlapping fixes; re-run lint after applying")
        previous_end = end
    for start, end, replacement in reversed(spans):
        source = source[:start] + replacement + source[end:]
    return source


def apply_fixes(findings: Iterable[Finding]) -> dict[str, int]:
    """Apply every carried fix, grouped per file.

    Returns ``{display_path: fixes_applied}``.  Paths in findings are
    display paths (cwd-relative or absolute as rendered); files are
    resolved from the current working directory, matching how the lint
    CLI invoked the analyzer.
    """
    by_path: dict[str, list[FixSpec]] = {}
    for finding in fixable(findings):
        assert finding.fix is not None
        by_path.setdefault(finding.path, []).append(finding.fix)
    applied: dict[str, int] = {}
    for display_path in sorted(by_path):
        target = Path(display_path)
        source = target.read_text(encoding="utf-8")
        target.write_text(
            _apply_to_source(source, by_path[display_path]), encoding="utf-8"
        )
        applied[display_path] = len(by_path[display_path])
    return applied
