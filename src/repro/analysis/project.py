"""Whole-project symbol table, call graph and dataflow for the domain linter.

PR 1's rules are per-file: each sees one module's AST and nothing else.
The invariants that matter at scale — no shared mutable state across agent
boundaries, no wall-clock reads on simulated-time paths, no unordered
iteration feeding the replay-critical event stream — are *cross-module
dataflow* properties: the offending call is usually three stack frames away
from the runtime entry point that makes it dangerous.  This module builds
the project-level facts those rules need:

* a **symbol table** per module: alias-aware import resolution
  (``import numpy as np``, ``from time import sleep``), function/method
  definitions with qualified names, class definitions with base names, and
  module-level mutable globals;
* a **call graph** over qualified names.  Calls that resolve statically
  (module-level functions, imported names, ``self.method()`` inside a
  class) get precise edges; calls through objects of unknown type
  (``obj.emit(...)``) get *method-name edges*, expanded conservatively to
  every project function of that name — an over-approximation, which is
  the right direction for a linter (reachability may over-report, never
  under-report);
* **reachability** in both directions: :meth:`ProjectContext.reachable_from`
  (what can a runtime entry point end up executing?) and
  :meth:`ProjectContext.reaching` (which functions can feed the
  trace-event stream?).

Everything is a plain AST pass — no imports of analyzed code, no
third-party dependencies — so ``repro lint --project`` stays safe to run
on broken working trees and finishes in well under the 10 s budget.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.engine import (
    Finding,
    ModuleContext,
    build_context,
    find_design_equations,
    iter_python_files,
)

#: A bare method-name call (``obj.emit(...)``) is expanded to every project
#: function of that name — unless more than this many share it, at which
#: point the name is too generic to carry signal.
_METHOD_FANOUT_LIMIT = 12

#: Container/stdlib vocabulary; expanding these would wire the whole graph
#: together through ``dict.get`` lookalikes.
_GENERIC_METHOD_NAMES = frozenset(
    {
        "add",
        "append",
        "clear",
        "copy",
        "count",
        "decode",
        "discard",
        "encode",
        "endswith",
        "extend",
        "format",
        "get",
        "index",
        "items",
        "join",
        "keys",
        "partition",
        "pop",
        "read",
        "remove",
        "replace",
        "setdefault",
        "sort",
        "split",
        "startswith",
        "strip",
        "values",
        "write",
    }
)

#: Constructors whose result is a mutable container; module-level bindings
#: to these are shared-mutable-state candidates (R9).
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "OrderedDict", "Counter"}
)

_MUTABLE_NUMPY_FACTORIES = frozenset({"array", "empty", "full", "ones", "zeros"})


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    #: Dotted target when resolution succeeded: an internal qualname
    #: (``repro.core.lrgp.LRGP.step``), an external dotted name
    #: (``time.sleep``), or a bare builtin name (``open``).  ``None`` for
    #: calls through objects of unknown type.
    target: str | None
    #: Bare attribute name for ``obj.name(...)`` calls (set even when
    #: ``target`` resolved, for method-name matching).
    method: str | None
    line: int


@dataclass(frozen=True)
class MutableGlobal:
    """A module-level binding to a mutable container."""

    qualname: str  #: e.g. ``repro.runtime.registry.PENDING``
    module: str
    name: str
    line: int
    kind: str  #: ``list`` / ``dict`` / ``set`` / ``call:deque`` / ``ndarray:zeros``


@dataclass
class FunctionInfo:
    """One function or method definition, with project-wide identity."""

    qualname: str  #: e.g. ``repro.runtime.agents.SourceAgent.act``
    module: str
    name: str
    #: Enclosing class name (``SourceAgent``) or ``None`` at module level.
    owner: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    context: ModuleContext
    is_async: bool
    calls: list[CallSite] = field(default_factory=list)
    #: Qualnames of module-level mutable globals (any module) this function
    #: reads or writes.
    global_refs: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class ClassInfo:
    """One class definition with its textual base names."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...]


@dataclass
class ModuleSymbols:
    """Per-module symbol table."""

    module: str
    context: ModuleContext
    #: local alias -> dotted target: ``import numpy as np`` maps ``np ->
    #: numpy``; ``from time import sleep`` maps ``sleep -> time.sleep``.
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    mutable_globals: dict[str, MutableGlobal] = field(default_factory=dict)
    #: Module-level function name -> qualname (bare-name call resolution).
    toplevel_functions: dict[str, str] = field(default_factory=dict)


class ProjectContext:
    """Everything a project-level rule may inspect about the analyzed tree.

    Built once per ``repro lint --project`` run; the same parsed
    :class:`ModuleContext` objects back both the per-module rules and the
    project passes, so no file is read or parsed twice.
    """

    def __init__(self, contexts: Sequence[ModuleContext]) -> None:
        #: Every analyzed module (including ones outside a ``repro`` tree).
        self.contexts: list[ModuleContext] = list(contexts)
        #: Modules with a resolvable ``repro.*`` dotted name.
        self.modules: dict[str, ModuleSymbols] = {}
        #: All function/method definitions across the project.
        self.functions: dict[str, FunctionInfo] = {}
        #: All class definitions across the project.
        self.classes: dict[str, ClassInfo] = {}
        #: All module-level mutable globals across the project.
        self.mutable_globals: dict[str, MutableGlobal] = {}
        self._by_method_name: dict[str, list[str]] = {}
        self._edges: dict[str, set[str]] = {}
        self._reverse: dict[str, set[str]] = {}

        for context in self.contexts:
            if not context.module:
                continue
            symbols = _collect_module(context)
            self.modules[symbols.module] = symbols
            self.functions.update(symbols.functions)
            self.classes.update(symbols.classes)
            self.mutable_globals.update(symbols.mutable_globals)

        for info in self.functions.values():
            self._by_method_name.setdefault(info.name, []).append(info.qualname)
        for symbols in self.modules.values():
            for info in symbols.functions.values():
                _scan_function(info, symbols, self)
        self._build_edges()

    # -- graph construction ---------------------------------------------------

    def _build_edges(self) -> None:
        for info in self.functions.values():
            edges = self._edges.setdefault(info.qualname, set())
            for site in info.calls:
                edges.update(self.expand_call(site))
        for caller, callees in self._edges.items():
            for callee in callees:
                self._reverse.setdefault(callee, set()).add(caller)

    def expand_call(self, site: CallSite) -> Iterator[str]:
        """Project-internal callee qualnames one call site may reach."""
        if site.target is not None and site.target in self.functions:
            yield site.target
            return
        method = site.method
        if method is None or method in _GENERIC_METHOD_NAMES:
            return
        candidates = self._by_method_name.get(method, ())
        if len(candidates) <= _METHOD_FANOUT_LIMIT:
            yield from candidates

    # -- queries --------------------------------------------------------------

    def callees(self, qualname: str) -> frozenset[str]:
        return frozenset(self._edges.get(qualname, ()))

    def callers(self, qualname: str) -> frozenset[str]:
        return frozenset(self._reverse.get(qualname, ()))

    def reachable_from(
        self,
        roots: Iterable[str],
        *,
        stop: Iterable[str] = (),
    ) -> set[str]:
        """Transitive call-graph closure from ``roots`` (inclusive).

        ``stop`` lists dotted module prefixes whose functions are included
        when reached but never traversed *through* — the allowlist
        mechanism R10 uses to keep the exempt telemetry layer from leaking
        its own callees into the reachable set.
        """
        return self._closure(roots, self._edges, tuple(stop))

    def reaching(self, sinks: Iterable[str]) -> set[str]:
        """All functions from which any of ``sinks`` is reachable (inclusive)."""
        return self._closure(sinks, self._reverse, ())

    def _closure(
        self,
        seeds: Iterable[str],
        edges: dict[str, set[str]],
        stop_prefixes: tuple[str, ...],
    ) -> set[str]:
        seen: set[str] = set()
        queue: deque[str] = deque()
        for seed in seeds:
            if seed in self.functions and seed not in seen:
                seen.add(seed)
                queue.append(seed)
        while queue:
            current = queue.popleft()
            info = self.functions[current]
            if any(_prefixed(info.module, prefix) for prefix in stop_prefixes):
                continue
            for neighbour in edges.get(current, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        return seen

    def functions_in(self, prefix: str) -> Iterator[FunctionInfo]:
        """All functions whose module matches ``prefix`` (dotted-prefix)."""
        for info in self.functions.values():
            if _prefixed(info.module, prefix):
                yield info

    def class_of(self, info: FunctionInfo) -> ClassInfo | None:
        if info.owner is None:
            return None
        return self.classes.get(f"{info.module}.{info.owner}")

    def context_for(self, module: str) -> ModuleContext | None:
        symbols = self.modules.get(module)
        return symbols.context if symbols else None


def _prefixed(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


# -- per-module collection -----------------------------------------------------


def _collect_module(context: ModuleContext) -> ModuleSymbols:
    symbols = ModuleSymbols(module=context.module, context=context)
    _collect_imports(context.tree, symbols)
    _collect_globals(context, symbols)
    _collect_functions(context, symbols)
    for info in symbols.functions.values():
        if info.owner is None:
            symbols.toplevel_functions[info.name] = info.qualname
    return symbols


def collect_import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local alias -> dotted target for every import in ``tree``.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import sleep``
    maps ``sleep -> time.sleep``.  Relative imports are skipped (their
    absolute target is unknowable without package layout assumptions).
    """
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports are out of scope for resolution
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _collect_imports(tree: ast.Module, symbols: ModuleSymbols) -> None:
    symbols.imports.update(collect_import_aliases(tree))


def _mutable_kind(node: ast.expr, symbols: ModuleSymbols) -> str | None:
    """``list``/``dict``/... when ``node`` builds a mutable container."""
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        resolved = resolve_dotted(node.func, symbols.imports)
        if resolved is None:
            return None
        head, _, tail = resolved.rpartition(".")
        if tail not in _MUTABLE_FACTORIES and tail not in _MUTABLE_NUMPY_FACTORIES:
            return None
        if not head and tail in _MUTABLE_FACTORIES:
            return f"call:{tail}"
        if head == "collections" and tail in _MUTABLE_FACTORIES:
            return f"call:{tail}"
        if head == "numpy" and tail in _MUTABLE_NUMPY_FACTORIES:
            return f"ndarray:{tail}"
    return None


def _collect_globals(context: ModuleContext, symbols: ModuleSymbols) -> None:
    for node in context.tree.body:
        targets: list[ast.expr]
        value: ast.expr | None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        else:
            continue
        if value is None:
            continue
        kind = _mutable_kind(value, symbols)
        if kind is None:
            continue
        for target in targets:
            if not isinstance(target, ast.Name) or target.id == "__all__":
                continue
            qualname = f"{symbols.module}.{target.id}"
            symbols.mutable_globals[qualname] = MutableGlobal(
                qualname=qualname,
                module=symbols.module,
                name=target.id,
                line=target.lineno,
                kind=kind,
            )


def _collect_functions(context: ModuleContext, symbols: ModuleSymbols) -> None:
    def visit(body: Sequence[ast.stmt], owner: str | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                prefix = f"{symbols.module}.{owner}." if owner else f"{symbols.module}."
                qualname = f"{prefix}{node.name}"
                symbols.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    module=symbols.module,
                    name=node.name,
                    owner=owner,
                    node=node,
                    context=context,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                )
                # Nested defs fold into the enclosing function (its body
                # walk covers them), so no recursion into node.body here.
            elif isinstance(node, ast.ClassDef):
                info = ClassInfo(
                    qualname=f"{symbols.module}.{node.name}",
                    module=symbols.module,
                    name=node.name,
                    node=node,
                    bases=tuple(
                        name
                        for name in (_base_name(base) for base in node.bases)
                        if name
                    ),
                )
                symbols.classes[info.qualname] = info
                visit(node.body, node.name)

    visit(context.tree.body, None)


def _base_name(base: ast.expr) -> str:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return ""


def resolve_dotted(node: ast.expr, imports: dict[str, str]) -> str | None:
    """``np.random.default_rng`` -> ``numpy.random.default_rng``.

    Resolves a Name/Attribute chain against the module's import aliases;
    bare un-imported names resolve to themselves (builtins like ``open``).
    Returns ``None`` for chains rooted at anything else (calls, subscripts,
    ``self`` ...).
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(imports.get(current.id, current.id))
    return ".".join(reversed(parts))


# -- call and global-reference resolution --------------------------------------


def _local_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally (params and assignments): these shadow globals."""
    args = node.args
    names = {
        arg.arg
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
    }
    for child in ast.walk(node):
        bound: list[ast.expr] = []
        if isinstance(child, ast.Assign):
            bound = list(child.targets)
        elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
            bound = [child.target]
        elif isinstance(child, (ast.For, ast.AsyncFor)):
            bound = [child.target]
        elif isinstance(child, ast.comprehension):
            bound = [child.target]
        elif isinstance(child, (ast.With, ast.AsyncWith)):
            bound = [
                item.optional_vars
                for item in child.items
                if item.optional_vars is not None
            ]
        elif isinstance(child, ast.Global):
            # ``global NAME`` explicitly un-shadows: assignments to it are
            # writes to the module global, not local bindings.
            names.difference_update(child.names)
            continue
        for target in bound:
            for leaf in ast.walk(target):
                # Store context only: ``PENDING[key] = v`` subscripts the
                # *global* (Load), it does not bind a local ``PENDING``.
                if isinstance(leaf, ast.Name) and isinstance(leaf.ctx, ast.Store):
                    names.add(leaf.id)
    return names


def _scan_function(
    info: FunctionInfo, symbols: ModuleSymbols, project: ProjectContext
) -> None:
    """Populate ``info.calls`` and ``info.global_refs``."""
    module_globals = {g.name: g.qualname for g in symbols.mutable_globals.values()}
    globals_declared = {
        name
        for child in ast.walk(info.node)
        if isinstance(child, ast.Global)
        for name in child.names
    }
    locals_here = _local_names(info.node)
    shadowed = {
        name
        for name in module_globals
        if name in locals_here and name not in globals_declared
    }
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            info.calls.append(_call_site(node, info, symbols))
        elif isinstance(node, ast.Name):
            if node.id in module_globals and node.id not in shadowed:
                info.global_refs.add(module_globals[node.id])
            else:
                # ``from other.module import SHARED`` — the alias resolves
                # to a foreign module's global.
                imported = symbols.imports.get(node.id)
                if imported is not None and imported in project.mutable_globals:
                    info.global_refs.add(imported)
        elif isinstance(node, ast.Attribute):
            resolved = resolve_dotted(node, symbols.imports)
            if resolved is not None and resolved in project.mutable_globals:
                info.global_refs.add(resolved)


def _call_site(node: ast.Call, info: FunctionInfo, symbols: ModuleSymbols) -> CallSite:
    func = node.func
    line = node.lineno
    if isinstance(func, ast.Name):
        qualname = symbols.toplevel_functions.get(func.id)
        if qualname is not None and func.id not in symbols.imports:
            return CallSite(target=qualname, method=None, line=line)
        # Imported name, class constructor, or builtin: keep the dotted /
        # bare name so rules can match externals like ``open``.
        return CallSite(
            target=symbols.imports.get(func.id, func.id), method=None, line=line
        )
    if isinstance(func, ast.Attribute):
        # ``self.method()`` inside a class resolves precisely.
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and info.owner is not None
        ):
            qualname = f"{info.module}.{info.owner}.{func.attr}"
            return CallSite(target=qualname, method=func.attr, line=line)
        resolved = resolve_dotted(func, symbols.imports)
        return CallSite(target=resolved, method=func.attr, line=line)
    return CallSite(target=None, method=None, line=line)


# -- project building ----------------------------------------------------------


def build_project(paths: Sequence[Path | str]) -> tuple[ProjectContext, list[Finding]]:
    """Parse files/trees into a :class:`ProjectContext`.

    Returns the project plus parse-error findings for files the compiler
    rejected (those files contribute no project facts).
    """
    contexts: list[ModuleContext] = []
    errors: list[Finding] = []
    equation_cache: dict[Path, frozenset[int] | None] = {}
    for path in iter_python_files(paths):
        anchor = path.resolve().parent
        if anchor not in equation_cache:
            equation_cache[anchor] = find_design_equations(anchor)
        result = build_context(path, known_equations=equation_cache[anchor])
        if isinstance(result, Finding):
            errors.append(result)
        else:
            contexts.append(result)
    project = ProjectContext(contexts)
    for context in contexts:
        context.project = project
    return project, errors
