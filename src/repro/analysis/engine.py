"""Domain-aware static analysis engine for the LRGP reproduction.

The LRGP decomposition is only correct when a handful of silent invariants
hold — prices stay in the non-negative orthant (eq. 12-13), the adaptive
step size stays clamped (section 4.2), agents exchange state only through
protocol messages, and the optimizer treats the :class:`~repro.model.problem.Problem`
as frozen.  None of those invariants is visible to a general-purpose linter,
so this module provides a small AST-based rule engine that encodes them as
machine-checked rules (see :mod:`repro.analysis.rules`).

The engine is deliberately tiny: a findings model, a per-module context
handed to every rule, inline-suppression parsing, a file walker, and the two
reporters (human and JSON) used by ``python -m repro lint``.
"""

from __future__ import annotations

import ast
import enum
import json
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

#: Inline suppression, e.g. ``x == 0.0  # repro-lint: disable=R2`` or
#: ``# repro-lint: disable-file=R6,R7`` anywhere in the file.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?=(?P<ids>[A-Za-z0-9_,\s]+)"
)

#: Equation tags as they appear in docstrings and in DESIGN.md: ``eq. 12``,
#: ``eqs. 4-5``, ``equations 6-9`` (hyphen or en-dash ranges).
EQUATION_TAG_RE = re.compile(
    r"\beq(?:s|uations?)?\.?\s*(?P<first>\d+)(?:\s*[-–]\s*(?P<last>\d+))?",
    re.IGNORECASE,
)


class Severity(enum.Enum):
    """How bad a finding is; ``--strict`` treats both as fatal."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class FixSpec:
    """A mechanical source edit that resolves one finding.

    Offsets follow the AST convention: lines are 1-based, columns 0-based,
    and the end column is exclusive.  ``repro lint --fix`` applies these
    bottom-up per file; ``--fix-dry-run`` fails if any are outstanding.
    """

    start_line: int
    start_col: int
    end_line: int
    end_col: int
    replacement: str


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    message: str
    #: Mechanical fix, when the rule knows one (compare ``ruff --fix``).
    #: Excluded from :meth:`fingerprint` and :meth:`to_dict` — it is an
    #: editor hint, not part of the finding's identity.
    fix: FixSpec | None = None

    def fingerprint(self) -> str:
        """Location-insensitive identity used by the baseline machinery.

        The line number is deliberately excluded so that unrelated edits
        above a baselined finding do not un-baseline it.
        """
        return f"{self.rule_id}::{self.path}::{self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


def _sort_key(finding: Finding) -> tuple[str, int, str, str]:
    return (finding.path, finding.line, finding.rule_id, finding.message)


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one analyzed module."""

    path: Path
    display_path: str
    module: str
    source: str
    tree: ast.Module
    #: Equation numbers defined by DESIGN.md, or ``None`` when no DESIGN.md
    #: was found (equation-tag checks are then skipped).
    known_equations: frozenset[int] | None = None
    #: Back-reference to the enclosing :class:`repro.analysis.project.ProjectContext`
    #: when analyzing in project mode; ``None`` in per-file mode.  Typed
    #: loosely to keep the engine import-free of the project layer.
    project: object | None = None
    _line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    _file_suppressions: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        for lineno, raw in enumerate(self.source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(raw)
            if match is None:
                continue
            ids = {part.strip().upper() for part in match.group("ids").split(",")}
            ids.discard("")
            if match.group("scope"):
                self._file_suppressions |= ids
            else:
                self._line_suppressions.setdefault(lineno, set()).update(ids)

    def suppressed(self, finding: Finding) -> bool:
        for ids in (
            self._file_suppressions,
            self._line_suppressions.get(finding.line, set()),
        ):
            if "ALL" in ids or finding.rule_id.upper() in ids:
                return True
        return False


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`, which
    yields findings for one module.  Rules must be stateless across modules
    (one instance is reused for a whole run).
    """

    rule_id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    #: One-line justification, referencing the paper invariant it protects.
    rationale: str = ""

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Per-module pass; default is empty so project-only rules may
        implement :meth:`project_check` alone."""
        return iter(())

    def project_check(self, project: object) -> Iterator[Finding]:
        """Whole-project pass, called once per run with the
        :class:`repro.analysis.project.ProjectContext`.  Interprocedural
        rules (R9–R11) live here; the default is empty so per-module rules
        need not care."""
        return iter(())

    def finding(
        self,
        context: ModuleContext,
        line: int,
        message: str,
        *,
        fix: FixSpec | None = None,
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=context.display_path,
            line=line,
            message=message,
            fix=fix,
        )


def module_name(path: Path) -> str:
    """Dotted module name, anchored at the last ``repro`` directory.

    ``src/repro/core/prices.py`` maps to ``repro.core.prices``; paths
    outside a ``repro`` tree map to the empty string, which path-scoped
    rules treat as out of scope.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return ""


def equations_from_text(text: str) -> frozenset[int]:
    """All equation numbers named in free text, with ranges expanded."""
    numbers: set[int] = set()
    for match in EQUATION_TAG_RE.finditer(text):
        first = int(match.group("first"))
        last = int(match.group("last") or first)
        if first <= last and last - first <= 100:
            numbers.update(range(first, last + 1))
    return frozenset(numbers)


def find_design_equations(start: Path) -> frozenset[int] | None:
    """Equation numbers from the nearest ``DESIGN.md`` above ``start``."""
    for directory in [start, *start.parents]:
        candidate = directory / "DESIGN.md"
        if candidate.is_file():
            return equations_from_text(candidate.read_text(encoding="utf-8"))
    return None


def iter_python_files(paths: Sequence[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not any(part.startswith(".") for part in p.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


_DISCOVER = object()  # sentinel: look known_equations up from DESIGN.md


def build_context(
    path: Path,
    *,
    known_equations: object = _DISCOVER,
) -> ModuleContext | Finding:
    """Parse one file into a :class:`ModuleContext`.

    Returns a parse-error :class:`Finding` instead when the file does not
    parse — a file the compiler rejects can satisfy no invariant.
    """
    source = path.read_text(encoding="utf-8")
    display = _display_path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return Finding(
            rule_id="E000",
            severity=Severity.ERROR,
            path=display,
            line=error.lineno or 1,
            message=f"file does not parse: {error.msg}",
        )
    if known_equations is _DISCOVER:
        equations = find_design_equations(path.resolve().parent)
    else:
        equations = known_equations  # type: ignore[assignment]
    return ModuleContext(
        path=path,
        display_path=display,
        module=module_name(path),
        source=source,
        tree=tree,
        known_equations=equations,  # type: ignore[arg-type]
    )


def _run_rules(
    contexts: Sequence[ModuleContext],
    rules: Sequence[Rule],
    *,
    project: bool,
) -> list[Finding]:
    """Per-module passes plus (optionally) the whole-project passes.

    Inline suppressions apply uniformly: a project-pass finding is matched
    back to its module by display path, so ``# repro-lint: disable=R9``
    silences interprocedural findings exactly like local ones.
    """
    findings = [
        finding
        for context in contexts
        for rule in rules
        for finding in rule.check(context)
        if not context.suppressed(finding)
    ]
    if project and contexts:
        from repro.analysis.project import ProjectContext

        project_context = ProjectContext(contexts)
        for context in contexts:
            context.project = project_context
        by_path = {context.display_path: context for context in contexts}
        for rule in rules:
            for finding in rule.project_check(project_context):
                owner = by_path.get(finding.path)
                if owner is None or not owner.suppressed(finding):
                    findings.append(finding)
    return sorted(findings, key=_sort_key)


def analyze_file(
    path: Path,
    rules: Sequence[Rule],
    *,
    known_equations: object = _DISCOVER,
    project: bool = True,
) -> list[Finding]:
    """Run ``rules`` over one file, honouring inline suppressions.

    Project mode still applies — the file becomes a single-module project —
    so interprocedural rules fire on self-contained violations.
    """
    context = build_context(path, known_equations=known_equations)
    if isinstance(context, Finding):
        return [context]
    return _run_rules([context], rules, project=project)


def analyze_paths(
    paths: Sequence[Path | str],
    rules: Sequence[Rule] | None = None,
    *,
    project: bool = True,
) -> list[Finding]:
    """Run the given rules (default: the full registry) over files/trees.

    With ``project=True`` (the default, and what ``repro lint --project``
    uses) every file is parsed once into a shared
    :class:`repro.analysis.project.ProjectContext` before any rule runs, so
    interprocedural rules see the whole call graph; ``project=False``
    restores the PR 1 per-file behaviour (``repro lint --no-project``).
    """
    if rules is None:
        from repro.analysis.rules import all_rules

        rules = all_rules()
    equation_cache: dict[Path, frozenset[int] | None] = {}
    contexts: list[ModuleContext] = []
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        anchor = path.resolve().parent
        if anchor not in equation_cache:
            equation_cache[anchor] = find_design_equations(anchor)
        result = build_context(path, known_equations=equation_cache[anchor])
        if isinstance(result, Finding):
            findings.append(result)
        else:
            contexts.append(result)
    findings.extend(_run_rules(contexts, rules, project=project))
    return sorted(findings, key=_sort_key)


# -- reporters ---------------------------------------------------------------


def render_human(findings: Iterable[Finding]) -> str:
    """GCC-style one-line-per-finding report with a trailing summary."""
    ordered = sorted(findings, key=_sort_key)
    lines = [
        f"{f.path}:{f.line}: {f.rule_id} {f.severity}: {f.message}" for f in ordered
    ]
    errors = sum(1 for f in ordered if f.severity is Severity.ERROR)
    warnings = len(ordered) - errors
    if ordered:
        files = len({f.path for f in ordered})
        lines.append(
            f"{len(ordered)} finding{'s' if len(ordered) != 1 else ''} "
            f"({errors} error{'s' if errors != 1 else ''}, "
            f"{warnings} warning{'s' if warnings != 1 else ''}) "
            f"in {files} file{'s' if files != 1 else ''}"
        )
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report (stable schema, see docs/analysis.md)."""
    ordered = sorted(findings, key=_sort_key)
    payload = {
        "version": 1,
        "count": len(ordered),
        "errors": sum(1 for f in ordered if f.severity is Severity.ERROR),
        "warnings": sum(1 for f in ordered if f.severity is Severity.WARNING),
        "findings": [f.to_dict() for f in ordered],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
