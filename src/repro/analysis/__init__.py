"""Domain-aware static analysis for the LRGP reproduction.

Usage::

    from repro.analysis import analyze_paths, render_human
    findings = analyze_paths(["src"])
    print(render_human(findings))

or from the command line: ``python -m repro lint --strict src``.
See ``docs/analysis.md`` for the rule catalogue and suppression syntax.
"""

from __future__ import annotations

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.engine import (
    Finding,
    ModuleContext,
    Rule,
    Severity,
    analyze_file,
    analyze_paths,
    render_human,
    render_json,
)
from repro.analysis.rules import RULES, all_rules, rules_for

__all__ = [
    "Finding",
    "ModuleContext",
    "RULES",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "apply_baseline",
    "load_baseline",
    "render_human",
    "render_json",
    "rules_for",
    "write_baseline",
]
