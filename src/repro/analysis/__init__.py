"""Domain-aware static analysis for the LRGP reproduction.

Usage::

    from repro.analysis import analyze_paths, render_human
    findings = analyze_paths(["src"])
    print(render_human(findings))

or from the command line: ``python -m repro lint --strict src``.
See ``docs/analysis.md`` for the rule catalogue and suppression syntax.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    prune_baseline,
    stale_entries,
    write_baseline,
)
from repro.analysis.engine import (
    Finding,
    FixSpec,
    ModuleContext,
    Rule,
    Severity,
    analyze_file,
    analyze_paths,
    render_human,
    render_json,
)
from repro.analysis.fixes import apply_fixes, fixable
from repro.analysis.project import ProjectContext, build_project
from repro.analysis.rules import RULES, all_rules, rules_for
from repro.analysis.sarif import render_sarif

__all__ = [
    "Finding",
    "FixSpec",
    "ModuleContext",
    "ProjectContext",
    "RULES",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "apply_baseline",
    "apply_fixes",
    "build_project",
    "fixable",
    "load_baseline",
    "prune_baseline",
    "render_human",
    "render_json",
    "render_sarif",
    "rules_for",
    "stale_entries",
    "write_baseline",
]
