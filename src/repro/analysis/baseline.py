"""Findings baselines: ratchet rule severity without a flag day.

``repro lint --write-baseline FILE`` snapshots the current findings;
``repro lint --baseline FILE`` subtracts that snapshot from later runs so
only *new* violations fail the build.  Fingerprints deliberately exclude
line numbers (see :meth:`repro.analysis.engine.Finding.fingerprint`), so
edits elsewhere in a file do not resurrect baselined findings.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable
from pathlib import Path

from repro.analysis.engine import Finding

_VERSION = 1


def write_baseline(findings: Iterable[Finding], path: Path) -> int:
    """Snapshot fingerprint counts to ``path``; returns the finding count."""
    counts = Counter(finding.fingerprint() for finding in findings)
    payload = {
        "version": _VERSION,
        "fingerprints": dict(sorted(counts.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return sum(counts.values())


def load_baseline(path: Path) -> Counter[str]:
    """Load a snapshot; raises ``ValueError`` on an unknown schema."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise ValueError(f"unsupported baseline format in {path}")
    fingerprints = payload.get("fingerprints", {})
    counts: Counter[str] = Counter()
    for fingerprint, count in fingerprints.items():
        counts[str(fingerprint)] = int(count)
    return counts


def apply_baseline(
    findings: Iterable[Finding], baseline: Counter[str]
) -> list[Finding]:
    """Drop findings covered by the baseline (counted per fingerprint)."""
    remaining = Counter(baseline)
    kept: list[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint()
        if remaining[fingerprint] > 0:
            remaining[fingerprint] -= 1
        else:
            kept.append(finding)
    return kept


def stale_entries(
    findings: Iterable[Finding], baseline: Counter[str]
) -> Counter[str]:
    """Baseline entries no current finding consumes (violations since fixed).

    A baseline is a ratchet: once a violation is gone its entry must go
    too, or the fingerprint budget silently shelters a regression of the
    same rule+file+message.  The count is per-fingerprint excess, mirroring
    :func:`apply_baseline`'s counting.
    """
    current = Counter(finding.fingerprint() for finding in findings)
    stale: Counter[str] = Counter()
    for fingerprint, count in baseline.items():
        excess = count - current.get(fingerprint, 0)
        if excess > 0:
            stale[fingerprint] = excess
    return stale


def prune_baseline(findings: Iterable[Finding], path: Path) -> int:
    """Drop stale entries from the baseline at ``path`` in place.

    Returns the number of entries removed.  The file is rewritten only
    when something was actually pruned, so a clean run leaves mtimes (and
    diffs) untouched.
    """
    baseline = load_baseline(path)
    stale = stale_entries(findings, baseline)
    if not stale:
        return 0
    pruned = Counter(baseline)
    pruned.subtract(stale)
    remaining = Counter({fp: count for fp, count in pruned.items() if count > 0})
    payload = {
        "version": _VERSION,
        "fingerprints": dict(sorted(remaining.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return sum(stale.values())
