"""SARIF 2.1.0 export for ``repro lint`` findings.

The Static Analysis Results Interchange Format is what GitHub
code-scanning ingests (``github/codeql-action/upload-sarif``), turning
lint findings into inline PR annotations.  This writer emits the minimal
valid subset: one run, one tool driver carrying the rule catalog
(id, title, severity), one result per finding with a physical location.

Deliberately dependency-free and deterministic: rules and results are
sorted, so the same findings always produce byte-identical SARIF — the CI
artifact diffs cleanly between runs.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence

from repro.analysis.engine import Finding, Rule, Severity

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: SARIF result levels by finding severity.
_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_entry(rule: Rule) -> dict[str, object]:
    return {
        "id": rule.rule_id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }


def _result(finding: Finding) -> dict[str, object]:
    return {
        "ruleId": finding.rule_id,
        "level": _LEVELS.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {"startLine": max(finding.line, 1)},
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint()},
    }


def render_sarif(
    findings: Iterable[Finding], rules: Sequence[Rule] = ()
) -> str:
    """Render findings (and the rule catalog) as a SARIF 2.1.0 document."""
    ordered = sorted(
        findings, key=lambda f: (f.path, f.line, f.rule_id, f.message)
    )
    catalog = sorted(rules, key=lambda rule: rule.rule_id)
    document = {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": [_rule_entry(rule) for rule in catalog],
                    }
                },
                "results": [_result(finding) for finding in ordered],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
