"""Centralized block-coordinate ascent: a near-optimality certificate.

Section 3.5 discusses centralizing LRGP; this module implements the
strongest centralized scheme the problem's block structure admits:

* **Rate stage** (populations fixed): the objective is concave in ``r``
  and — crucially — the node constraints become *linear* in ``r`` once
  ``n`` is frozen (``Σ_i (F_{b,i} + Σ_j G_{b,j} n_j) r_i ≤ c_b``), so the
  stage is a concave maximization over a polytope, solved exactly (to
  solver tolerance) with SLSQP.
* **Population stage** (rates fixed): the objective and the node
  constraints are linear in ``n``, so per node the problem is a bounded
  fractional knapsack whose greedy benefit/cost fill is optimal up to the
  one truncated item — we reuse LRGP's greedy allocation.

Alternating the stages ascends monotonically (each stage only improves)
and terminates at a *partial optimum*: no better rates given the
populations, and no better populations given the rates.  Two findings on
the paper's workloads (``benchmarks/test_extension_coordinate.py``):

1. LRGP's output is a **fixpoint** of this alternation — a partial-
   optimality certificate for the distributed algorithm;
2. the alternation started cold (or from random rates, even best-of-8)
   lands in *worse* partial optima than LRGP on the base workload —
   evidence that the benefit/cost price linking of the two subproblems
   (the paper's "key insight") does real work beyond mere alternation.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from repro.core.consumer_allocation import allocate_all_consumers
from repro.model.allocation import (
    Allocation,
    is_feasible,
    total_utility,
    zero_allocation,
)
from repro.model.problem import Problem


@dataclass(frozen=True)
class CoordinateResult:
    """Outcome of the alternating optimization."""

    best_utility: float
    best_allocation: Allocation
    stages: int
    runtime_seconds: float
    converged: bool


def _solve_rate_stage(problem: Problem, allocation: Allocation) -> dict[str, float]:
    """Exactly maximize utility over rates with populations frozen."""
    flow_ids = sorted(problem.flows)
    index = {flow_id: position for position, flow_id in enumerate(flow_ids)}
    lower = np.array([problem.flows[f].rate_min for f in flow_ids])
    upper = np.array([problem.flows[f].rate_max for f in flow_ids])

    # Per-class (flow position, population, utility) for the objective.
    terms = []
    for class_id, cls in problem.classes.items():
        population = allocation.population(class_id)
        if population > 0:
            terms.append((index[cls.flow_id], population, cls.utility))

    def negative_utility(rates: np.ndarray) -> float:
        total = 0.0
        for position, population, utility in terms:
            total += population * utility.value(float(rates[position]))
        return -total

    def negative_gradient(rates: np.ndarray) -> np.ndarray:
        grad = np.zeros_like(rates)
        for position, population, utility in terms:
            grad[position] -= population * utility.derivative(float(rates[position]))
        return grad

    # Linear resource constraints: A r <= b.
    rows = []
    bounds_rhs = []
    for node_id, node in problem.nodes.items():
        if math.isinf(node.capacity):
            continue
        row = np.zeros(len(flow_ids))
        for flow_id in problem.flows_at_node(node_id):
            coefficient = problem.costs.flow_node(node_id, flow_id)
            for class_id in problem.classes_of_flow_at_node(flow_id, node_id):
                coefficient += problem.costs.consumer(
                    node_id, class_id
                ) * allocation.population(class_id)
            row[index[flow_id]] = coefficient
        rows.append(row)
        bounds_rhs.append(node.capacity)
    for link_id, link in problem.links.items():
        if math.isinf(link.capacity):
            continue
        row = np.zeros(len(flow_ids))
        for flow_id in problem.flows_on_link(link_id):
            row[index[flow_id]] = problem.costs.link(link_id, flow_id)
        rows.append(row)
        bounds_rhs.append(link.capacity)

    constraints = []
    if rows:
        matrix = np.array(rows)
        rhs = np.array(bounds_rhs)
        constraints.append(
            {
                "type": "ineq",
                "fun": lambda r: rhs - matrix @ r,
                "jac": lambda r: -matrix,
            }
        )

    start = np.array([allocation.rate(f) for f in flow_ids])
    start = np.clip(start, lower, upper)
    result = minimize(
        negative_utility,
        start,
        jac=negative_gradient,
        bounds=list(zip(lower, upper)),
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 200, "ftol": 1e-12},
    )
    rates = np.clip(result.x, lower, upper)
    return {flow_id: float(rates[index[flow_id]]) for flow_id in flow_ids}


def _solve_population_stage(
    problem: Problem, rates: dict[str, float]
) -> dict[str, int]:
    """Greedy benefit/cost fill per node (optimal up to item truncation)."""
    populations = {class_id: 0 for class_id in problem.classes}
    for result in allocate_all_consumers(problem, rates).values():
        populations.update(result.populations)
    return populations


def _project_rates(problem: Problem, rates: dict[str, float]) -> dict[str, float]:
    """Clamp rates into their bounds and scale them down until the
    population-free resource constraints hold (links: ``Σ L r ≤ c_l``;
    nodes: ``Σ F r ≤ c_b``), so the alternation starts feasible."""
    projected = {
        flow_id: problem.flows[flow_id].clamp(rates.get(flow_id, 0.0))
        for flow_id in problem.flows
    }
    scale = 1.0
    for link_id, link in problem.links.items():
        if math.isinf(link.capacity):
            continue
        usage = sum(
            problem.costs.link(link_id, flow_id) * projected[flow_id]
            for flow_id in problem.flows_on_link(link_id)
        )
        if usage > link.capacity:
            scale = min(scale, link.capacity / usage)
    for node_id, node in problem.nodes.items():
        if math.isinf(node.capacity):
            continue
        usage = sum(
            problem.costs.flow_node(node_id, flow_id) * projected[flow_id]
            for flow_id in problem.flows_at_node(node_id)
        )
        if usage > node.capacity:
            scale = min(scale, node.capacity / usage)
    if scale < 1.0:
        # Scaling may push below rate_min; the clamp keeps bounds, and if
        # rate_min itself is resource-infeasible no start can fix that.
        projected = {
            flow_id: problem.flows[flow_id].clamp(rate * scale * (1.0 - 1e-12))
            for flow_id, rate in projected.items()
        }
    return projected


def alternating_optimization(
    problem: Problem,
    max_stages: int = 50,
    tolerance: float = 1e-6,
    initial: Allocation | None = None,
) -> CoordinateResult:
    """Alternate exact rate and greedy population stages to a fixpoint.

    The initial rates are projected into the population-free feasible
    region first (random starts may violate link constraints, and the
    utility of an infeasible state must never be reported).
    ``tolerance`` is the relative utility improvement below which the
    alternation stops; only feasible post-stage states are candidates for
    the returned best.
    """
    if max_stages < 1:
        raise ValueError("max_stages must be at least 1")
    started = time.perf_counter()
    allocation = (initial or zero_allocation(problem)).copy()
    allocation.rates = _project_rates(problem, allocation.rates)
    allocation.populations = _solve_population_stage(problem, allocation.rates)

    best_utility = float("-inf")
    best_allocation = allocation.copy()
    if is_feasible(problem, allocation, rtol=1e-6):
        best_utility = total_utility(problem, allocation)
    previous = best_utility

    stages = 0
    converged = False
    while stages < max_stages:
        stages += 1
        allocation.rates = _solve_rate_stage(problem, allocation)
        allocation.populations = _solve_population_stage(problem, allocation.rates)
        new_utility = total_utility(problem, allocation)
        if is_feasible(problem, allocation, rtol=1e-6) and new_utility > best_utility:
            best_utility = new_utility
            best_allocation = allocation.copy()
        if new_utility <= previous + tolerance * max(1.0, abs(previous)):
            converged = True
            break
        previous = new_utility

    return CoordinateResult(
        best_utility=best_utility,
        best_allocation=best_allocation,
        stages=stages,
        runtime_seconds=time.perf_counter() - started,
        converged=converged,
    )


def multistart_alternating(
    problem: Problem,
    starts: int = 8,
    seed: int = 0,
    max_stages: int = 50,
) -> CoordinateResult:
    """Best of several alternating runs from random initial rates.

    Block-coordinate ascent has many partial optima on these nonconvex
    instances (single-start runs on the base workload land anywhere between
    ~0.6M and ~1.3M); multistart is the standard mitigation and the fair
    version of this baseline.
    """
    import random

    if starts < 1:
        raise ValueError("starts must be at least 1")
    rng = random.Random(seed)
    best: CoordinateResult | None = None
    total_runtime = 0.0
    for _ in range(starts):
        rates = {
            flow_id: rng.uniform(flow.rate_min, flow.rate_max)
            for flow_id, flow in problem.flows.items()
        }
        result = alternating_optimization(
            problem,
            max_stages=max_stages,
            initial=Allocation(rates=rates, populations={}),
        )
        total_runtime += result.runtime_seconds
        if best is None or result.best_utility > best.best_utility:
            best = result
    assert best is not None
    return CoordinateResult(
        best_utility=best.best_utility,
        best_allocation=best.best_allocation,
        stages=best.stages,
        runtime_seconds=total_runtime,
        converged=best.converged,
    )
