"""Hill climbing and random search baselines.

Not in the paper's evaluation, but useful calibration points around the
simulated-annealing comparison: hill climbing is SA at temperature zero
(pure greedy over the same move kernel), random restart sampling bounds how
much of SA's performance comes from the walk at all.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.baselines.incremental import IncrementalState
from repro.baselines.moves import MoveConfig, MoveProposer
from repro.core.consumer_allocation import allocate_all_consumers
from repro.model.allocation import Allocation, total_utility, zero_allocation
from repro.model.problem import Problem


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a local/random search run."""

    best_utility: float
    best_allocation: Allocation
    steps: int
    runtime_seconds: float


def hill_climb(
    problem: Problem,
    max_steps: int = 10**5,
    seed: int = 0,
    initial: Allocation | None = None,
    move_config: MoveConfig | None = None,
) -> SearchResult:
    """First-improvement stochastic hill climbing over the SA move kernel.

    Accepts only strictly improving feasible moves; equivalent to annealing
    at temperature zero.
    """
    if max_steps < 1:
        raise ValueError("max_steps must be at least 1")
    rng = random.Random(seed)
    state = IncrementalState(problem, initial or zero_allocation(problem))
    proposer = MoveProposer(problem, rng, move_config)
    started = time.perf_counter()
    for _ in range(max_steps):
        move = proposer.propose(state)
        if move is not None and move.utility_delta > 0.0:
            state.apply(move)
    return SearchResult(
        best_utility=state.utility,
        best_allocation=state.allocation(),
        steps=max_steps,
        runtime_seconds=time.perf_counter() - started,
    )


def random_search(
    problem: Problem,
    samples: int = 1000,
    seed: int = 0,
) -> SearchResult:
    """Best of ``samples`` random feasible allocations.

    Each sample draws uniform rates inside the bounds and then fills
    populations with the greedy consumer allocation in a random class order
    — i.e. it is repair-based sampling: populations are always feasible
    given the rates.
    """
    if samples < 1:
        raise ValueError("samples must be at least 1")
    rng = random.Random(seed)
    best_utility = float("-inf")
    best_allocation: Allocation | None = None
    started = time.perf_counter()

    class_ids = sorted(problem.classes)
    for _ in range(samples):
        rates = {
            flow_id: rng.uniform(flow.rate_min, flow.rate_max)
            for flow_id, flow in problem.flows.items()
        }
        # Random-priority greedy fill: like the LRGP node allocation but
        # with shuffled (not benefit/cost sorted) class order.
        populations: dict[str, int] = {class_id: 0 for class_id in class_ids}
        budgets = {
            node_id: problem.nodes[node_id].capacity
            - sum(
                problem.costs.flow_node(node_id, flow_id) * rates[flow_id]
                for flow_id in problem.flows_at_node(node_id)
            )
            for node_id in problem.consumer_nodes()
        }
        order = list(class_ids)
        rng.shuffle(order)
        for class_id in order:
            cls = problem.classes[class_id]
            unit_cost = problem.costs.consumer(cls.node, class_id) * rates[cls.flow_id]
            if unit_cost <= 0.0:
                populations[class_id] = cls.max_consumers
                continue
            budget = budgets.get(cls.node, 0.0)
            if budget <= 0.0:
                continue
            admitted = min(cls.max_consumers, int(budget / unit_cost))
            populations[class_id] = admitted
            budgets[cls.node] = budget - admitted * unit_cost

        allocation = Allocation(rates=rates, populations=populations)
        utility = total_utility(problem, allocation)
        if utility > best_utility:
            best_utility = utility
            best_allocation = allocation

    assert best_allocation is not None
    return SearchResult(
        best_utility=best_utility,
        best_allocation=best_allocation,
        steps=samples,
        runtime_seconds=time.perf_counter() - started,
    )


def greedy_fixed_rates(problem: Problem, rates: dict[str, float]) -> SearchResult:
    """The pure-greedy baseline: fix rates, run the LRGP consumer allocation
    once at every node.  Useful to isolate how much LRGP's price loop adds
    over one-shot greedy admission."""
    started = time.perf_counter()
    node_allocations = allocate_all_consumers(problem, rates)
    populations: dict[str, int] = {class_id: 0 for class_id in problem.classes}
    for result in node_allocations.values():
        populations.update(result.populations)
    allocation = Allocation(rates=dict(rates), populations=populations)
    return SearchResult(
        best_utility=total_utility(problem, allocation),
        best_allocation=allocation,
        steps=1,
        runtime_seconds=time.perf_counter() - started,
    )
