"""The randomized move kernel shared by annealing and hill climbing.

One proposal is either a rate move (perturb one flow's rate by a Gaussian
step) or a population move (shift one class's population by a log-uniform
signed step).  Moves that would leave the bounds or violate a resource
constraint evaluate to ``None`` and count as rejected.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.baselines.incremental import IncrementalState, Move
from repro.model.problem import Problem
from repro.utility.tolerance import is_zero


@dataclass(frozen=True)
class MoveConfig:
    """Proposal distribution knobs.

    The four proposal kinds and their weights:

    * ``rate`` — perturb one flow's rate (reject if infeasible);
    * ``rate_evict`` — perturb one flow's rate, evicting cheapest-value
      consumers as needed to stay feasible;
    * ``population`` — shift one class's population;
    * ``swap`` — transfer node budget from one class to a colocated one.

    The compound kinds let the walk cross constraint valleys (a full node
    blocks every primitive uphill move) in a single Metropolis step.
    """

    rate_weight: float = 0.2
    rate_evict_weight: float = 0.2
    population_weight: float = 0.3
    swap_weight: float = 0.3
    #: Gaussian rate-step scale, relative to the flow's rate span.
    rate_step_fraction: float = 0.1
    #: Population steps are drawn log-uniformly in [1, fraction * n^max].
    population_step_fraction: float = 0.1

    def __post_init__(self) -> None:
        weights = (
            self.rate_weight,
            self.rate_evict_weight,
            self.population_weight,
            self.swap_weight,
        )
        if any(w < 0.0 for w in weights) or sum(weights) <= 0.0:
            raise ValueError("move weights must be non-negative with positive sum")
        if self.rate_step_fraction <= 0.0:
            raise ValueError("rate_step_fraction must be positive")
        if self.population_step_fraction <= 0.0:
            raise ValueError("population_step_fraction must be positive")


class MoveProposer:
    """Draws random moves against an :class:`IncrementalState`."""

    def __init__(
        self,
        problem: Problem,
        rng: random.Random,
        config: MoveConfig | None = None,
    ) -> None:
        self._problem = problem
        self._rng = rng
        self._config = config or MoveConfig()
        self._flow_ids = sorted(problem.flows)
        self._class_ids = sorted(problem.classes)
        self._classes_by_node = {
            node_id: sorted(problem.classes_at_node(node_id))
            for node_id in problem.consumer_nodes()
        }
        self._swap_nodes = [
            node_id
            for node_id, class_ids in self._classes_by_node.items()
            if len(class_ids) >= 2
        ]
        if not self._flow_ids:
            raise ValueError("problem has no flows")
        config = self._config
        self._kinds = ["rate", "rate_evict", "population", "swap"]
        self._weights = [
            config.rate_weight,
            config.rate_evict_weight,
            config.population_weight if self._class_ids else 0.0,
            config.swap_weight if self._swap_nodes else 0.0,
        ]
        if sum(self._weights) <= 0.0:
            raise ValueError("no applicable move kinds for this problem")

    def propose(self, state: IncrementalState) -> Move | None:
        """One random proposal; ``None`` when out of bounds or infeasible."""
        kind = self._rng.choices(self._kinds, weights=self._weights)[0]
        if kind == "rate":
            return self._propose_rate(state, evict=False)
        if kind == "rate_evict":
            return self._propose_rate(state, evict=True)
        if kind == "population":
            return self._propose_population(state)
        return self._propose_swap(state)

    def _log_uniform_step(self, max_step: int) -> int:
        """Log-uniform magnitude: many small corrections, occasional jumps."""
        magnitude = int(math.exp(self._rng.uniform(0.0, math.log(max_step + 1.0))))
        return max(1, min(magnitude, max_step))

    def _propose_rate(self, state: IncrementalState, evict: bool) -> Move | None:
        flow_id = self._rng.choice(self._flow_ids)
        flow = self._problem.flows[flow_id]
        span = flow.rate_max - flow.rate_min
        if span <= 0.0:
            return None
        step = self._rng.gauss(0.0, self._config.rate_step_fraction * span)
        new_rate = flow.clamp(state.rates[flow_id] + step)
        if is_zero(new_rate - state.rates[flow_id]):
            return None
        if evict:
            return state.evaluate_rate_move_with_eviction(flow_id, new_rate)
        return state.evaluate_rate_move(flow_id, new_rate)

    def _propose_population(self, state: IncrementalState) -> Move | None:
        class_id = self._rng.choice(self._class_ids)
        cls = self._problem.classes[class_id]
        if cls.max_consumers == 0:
            return None
        max_step = max(
            1, int(self._config.population_step_fraction * cls.max_consumers)
        )
        magnitude = self._log_uniform_step(max_step)
        sign = 1 if self._rng.random() < 0.5 else -1
        new_population = state.populations[class_id] + sign * magnitude
        new_population = max(0, min(new_population, cls.max_consumers))
        if new_population == state.populations[class_id]:
            return None
        return state.evaluate_population_move(class_id, new_population)

    def _propose_swap(self, state: IncrementalState) -> Move | None:
        node_id = self._rng.choice(self._swap_nodes)
        class_from, class_to = self._rng.sample(self._classes_by_node[node_id], 2)
        population = state.populations[class_from]
        if population == 0:
            return None
        evict = self._log_uniform_step(population)
        return state.evaluate_swap_move(class_from, class_to, evict)
