"""Incremental solution state for local-search baselines.

Simulated annealing and hill climbing evaluate millions of single-variable
moves; recomputing eq. 1/4/5 from scratch per move would be O(problem size)
each.  :class:`IncrementalState` maintains the objective and all resource
usages under two move types — change one flow's rate, change one class's
population — in O(affected entities) per move, with exact feasibility
checking before a move is applied.

The key cached quantity is, per (node, flow),

    coeff[b, i] = F_{b,i} + sum_{j in attachMap_i(b)} G_{b,j} n_j

so a rate change of flow ``i`` shifts node ``b``'s usage by
``coeff[b, i] * (r' - r)``, and a population change of class ``j`` shifts
both its node's usage and ``coeff`` by ``G_{b,j} * dn`` (times the rate, for
the usage).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.allocation import Allocation
from repro.model.entities import ClassId, FlowId, LinkId, NodeId
from repro.model.problem import Problem

#: Relative capacity slack tolerated when accepting a move, matching
#: :data:`repro.model.allocation.FEASIBILITY_RTOL`.
_CAPACITY_RTOL = 1e-9


@dataclass(frozen=True)
class RateMove:
    """Replace flow ``flow_id``'s rate with ``new_rate``."""

    flow_id: FlowId
    new_rate: float
    utility_delta: float


@dataclass(frozen=True)
class PopulationMove:
    """Replace class ``class_id``'s population with ``new_population``."""

    class_id: ClassId
    new_population: int
    utility_delta: float


@dataclass(frozen=True)
class CompositeMove:
    """A sequence of primitive moves applied atomically.

    Used for proposals that must cross a constraint "valley" in one step —
    e.g. evict low-value consumers *and* raise a rate, or transfer node
    budget between two classes.  The embedded primitive deltas are computed
    sequentially (each against the state left by its predecessors), so
    ``utility_delta`` is exact.
    """

    moves: tuple["RateMove | PopulationMove", ...]
    utility_delta: float


Move = RateMove | PopulationMove | CompositeMove


class InfeasibleMoveError(ValueError):
    """Raised when applying a move that violates a constraint."""


class IncrementalState:
    """A mutable feasible solution with O(1)-ish move evaluation."""

    def __init__(self, problem: Problem, allocation: Allocation) -> None:
        self._problem = problem
        self.rates: dict[FlowId, float] = {
            flow_id: allocation.rate(flow_id) for flow_id in problem.flows
        }
        self.populations: dict[ClassId, int] = {
            class_id: allocation.population(class_id) for class_id in problem.classes
        }
        self._rebuild_caches()

    def _rebuild_caches(self) -> None:
        problem = self._problem
        self.utility = 0.0
        for class_id, cls in problem.classes.items():
            population = self.populations[class_id]
            if population > 0:
                self.utility += population * cls.utility.value(self.rates[cls.flow_id])

        # coeff[b, i] = F + sum G n   (per node, per flow reaching it)
        self._coeff: dict[tuple[NodeId, FlowId], float] = {}
        self.node_used: dict[NodeId, float] = {}
        for node_id in problem.nodes:
            used = 0.0
            for flow_id in problem.flows_at_node(node_id):
                coefficient = problem.costs.flow_node(node_id, flow_id)
                for class_id in problem.classes_of_flow_at_node(flow_id, node_id):
                    coefficient += (
                        problem.costs.consumer(node_id, class_id)
                        * self.populations[class_id]
                    )
                self._coeff[(node_id, flow_id)] = coefficient
                used += coefficient * self.rates[flow_id]
            self.node_used[node_id] = used

        self.link_used: dict[LinkId, float] = {}
        for link_id in problem.links:
            self.link_used[link_id] = sum(
                problem.costs.link(link_id, flow_id) * self.rates[flow_id]
                for flow_id in problem.flows_on_link(link_id)
            )

    # -- move evaluation ----------------------------------------------------

    def evaluate_rate_move(self, flow_id: FlowId, new_rate: float) -> RateMove | None:
        """Return the move if feasible (with its utility delta), else None."""
        problem = self._problem
        flow = problem.flows[flow_id]
        if not flow.rate_min <= new_rate <= flow.rate_max:
            return None
        old_rate = self.rates[flow_id]
        delta_rate = new_rate - old_rate

        route = problem.route(flow_id)
        if delta_rate > 0.0:  # decreases can never violate resources
            for node_id in route.nodes:
                capacity = problem.nodes[node_id].capacity
                if math.isinf(capacity):
                    continue
                new_used = (
                    self.node_used[node_id]
                    + self._coeff[(node_id, flow_id)] * delta_rate
                )
                if new_used > capacity * (1.0 + _CAPACITY_RTOL):
                    return None
            for link_id in route.links:
                capacity = problem.links[link_id].capacity
                if math.isinf(capacity):
                    continue
                new_used = (
                    self.link_used[link_id]
                    + problem.costs.link(link_id, flow_id) * delta_rate
                )
                if new_used > capacity * (1.0 + _CAPACITY_RTOL):
                    return None

        utility_delta = 0.0
        for class_id in problem.classes_of_flow(flow_id):
            population = self.populations[class_id]
            if population > 0:
                utility = problem.classes[class_id].utility
                utility_delta += population * (
                    utility.value(new_rate) - utility.value(old_rate)
                )
        return RateMove(flow_id=flow_id, new_rate=new_rate, utility_delta=utility_delta)

    def evaluate_population_move(
        self, class_id: ClassId, new_population: int
    ) -> PopulationMove | None:
        """Return the move if feasible (with its utility delta), else None."""
        problem = self._problem
        cls = problem.classes[class_id]
        if not 0 <= new_population <= cls.max_consumers:
            return None
        old_population = self.populations[class_id]
        delta = new_population - old_population
        rate = self.rates[cls.flow_id]
        unit_cost = problem.costs.consumer(cls.node, class_id)

        if delta > 0:
            capacity = problem.nodes[cls.node].capacity
            if not math.isinf(capacity):
                new_used = self.node_used[cls.node] + unit_cost * delta * rate
                if new_used > capacity * (1.0 + _CAPACITY_RTOL):
                    return None

        utility_delta = delta * cls.utility.value(rate)
        return PopulationMove(
            class_id=class_id,
            new_population=new_population,
            utility_delta=utility_delta,
        )

    def evaluate_swap_move(
        self, class_from: ClassId, class_to: ClassId, evict: int
    ) -> CompositeMove | None:
        """Transfer node budget between two classes at the same node.

        Unadmits ``evict`` consumers of ``class_from`` and admits as many
        consumers of ``class_to`` as the freed (plus any existing) headroom
        allows.  Returns ``None`` when the classes are not colocated, the
        eviction is impossible, or nothing would be admitted.
        """
        problem = self._problem
        src = problem.classes[class_from]
        dst = problem.classes[class_to]
        if src.node != dst.node or class_from == class_to:
            return None
        if evict < 1 or evict > self.populations[class_from]:
            return None
        capacity = problem.nodes[src.node].capacity
        rate_from = self.rates[src.flow_id]
        rate_to = self.rates[dst.flow_id]
        unit_from = problem.costs.consumer(src.node, class_from) * rate_from
        unit_to = problem.costs.consumer(dst.node, class_to) * rate_to

        headroom = (capacity - self.node_used[src.node]) + unit_from * evict
        if unit_to <= 0.0:
            admit = dst.max_consumers - self.populations[class_to]
        else:
            admit = min(
                dst.max_consumers - self.populations[class_to],
                int(headroom / unit_to + _CAPACITY_RTOL) if headroom > 0.0 else 0,
            )
        if admit <= 0:
            return None

        first = PopulationMove(
            class_id=class_from,
            new_population=self.populations[class_from] - evict,
            utility_delta=-evict * src.utility.value(rate_from),
        )
        second = PopulationMove(
            class_id=class_to,
            new_population=self.populations[class_to] + admit,
            utility_delta=admit * dst.utility.value(rate_to),
        )
        return CompositeMove(
            moves=(first, second),
            utility_delta=first.utility_delta + second.utility_delta,
        )

    def evaluate_rate_move_with_eviction(
        self, flow_id: FlowId, new_rate: float
    ) -> Move | None:
        """A rate change that evicts consumers to stay feasible.

        When raising ``flow_id``'s rate would overload a node on its route,
        consumers at that node are (virtually) unadmitted in increasing
        benefit/cost order until the new rate fits; the returned composite
        applies the evictions and then the rate change.  Falls back to the
        plain rate move when no eviction is needed; returns ``None`` when a
        *link* on the route cannot fit the new rate (links have no
        consumers to evict) or eviction cannot create enough room.
        """
        problem = self._problem
        flow = problem.flows[flow_id]
        if not flow.rate_min <= new_rate <= flow.rate_max:
            return None
        old_rate = self.rates[flow_id]
        delta_rate = new_rate - old_rate
        plain = self.evaluate_rate_move(flow_id, new_rate)
        if plain is not None:
            return plain
        route = problem.route(flow_id)
        for link_id in route.links:
            capacity = problem.links[link_id].capacity
            if math.isinf(capacity):
                continue
            new_used = (
                self.link_used[link_id]
                + problem.costs.link(link_id, flow_id) * delta_rate
            )
            if new_used > capacity * (1.0 + _CAPACITY_RTOL):
                return None  # cannot evict on a link

        # Virtual populations: evictions planned so far, per class.
        virtual: dict[ClassId, int] = {}
        evictions: list[PopulationMove] = []
        for node_id in route.nodes:
            capacity = problem.nodes[node_id].capacity
            if math.isinf(capacity):
                continue
            coefficient = self._coeff[(node_id, flow_id)]
            excess = (
                self.node_used[node_id] + coefficient * delta_rate - capacity
            )
            if excess <= capacity * _CAPACITY_RTOL:
                continue
            # Evict in increasing benefit/cost order (cheapest value first).
            candidates = []
            for cand_id in problem.classes_at_node(node_id):
                population = virtual.get(cand_id, self.populations[cand_id])
                if population == 0:
                    continue
                cand = problem.classes[cand_id]
                cand_rate = (
                    new_rate if cand.flow_id == flow_id else self.rates[cand.flow_id]
                )
                unit = problem.costs.consumer(node_id, cand_id) * cand_rate
                if unit <= 0.0:
                    continue  # evicting free consumers releases nothing
                ratio = cand.utility.value(cand_rate) / unit
                candidates.append((ratio, cand_id, population, unit, cand))
            candidates.sort(key=lambda item: (item[0], item[1]))
            for _, cand_id, population, unit, cand in candidates:
                if excess <= 0.0:
                    break
                count = min(population, int(excess / unit) + 1)
                virtual[cand_id] = population - count
                # Utility delta of the eviction at the *current* rate; the
                # rate-move delta below then uses post-eviction populations.
                evictions.append(
                    PopulationMove(
                        class_id=cand_id,
                        new_population=population - count,
                        utility_delta=-count
                        * cand.utility.value(self.rates[cand.flow_id]),
                    )
                )
                excess -= count * unit
            if excess > 0.0:
                return None  # even a consumer-free node cannot fit the rate

        utility_delta = 0.0
        for class_id in problem.classes_of_flow(flow_id):
            population = virtual.get(class_id, self.populations[class_id])
            if population > 0:
                utility = problem.classes[class_id].utility
                utility_delta += population * (
                    utility.value(new_rate) - utility.value(old_rate)
                )
        rate_move = RateMove(
            flow_id=flow_id, new_rate=new_rate, utility_delta=utility_delta
        )
        total = sum(move.utility_delta for move in evictions) + utility_delta
        return CompositeMove(
            moves=(*evictions, rate_move), utility_delta=total
        )

    # -- move application --------------------------------------------------------

    def apply(self, move: Move) -> None:
        """Commit a move returned by one of the evaluate methods."""
        problem = self._problem
        if isinstance(move, CompositeMove):
            for part in move.moves:
                self.apply(part)
            # Primitive applications already accumulated the utility.
            return
        if isinstance(move, RateMove):
            flow_id = move.flow_id
            delta_rate = move.new_rate - self.rates[flow_id]
            route = problem.route(flow_id)
            for node_id in route.nodes:
                self.node_used[node_id] += (
                    self._coeff[(node_id, flow_id)] * delta_rate
                )
            for link_id in route.links:
                self.link_used[link_id] += (
                    problem.costs.link(link_id, flow_id) * delta_rate
                )
            self.rates[flow_id] = move.new_rate
        elif isinstance(move, PopulationMove):
            cls = problem.classes[move.class_id]
            delta = move.new_population - self.populations[move.class_id]
            unit_cost = problem.costs.consumer(cls.node, move.class_id)
            rate = self.rates[cls.flow_id]
            self.node_used[cls.node] += unit_cost * delta * rate
            self._coeff[(cls.node, cls.flow_id)] += unit_cost * delta
            self.populations[move.class_id] = move.new_population
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown move type {type(move).__name__}")
        self.utility += move.utility_delta

    def allocation(self) -> Allocation:
        return Allocation(rates=dict(self.rates), populations=dict(self.populations))
