"""Centralized simulated annealing baseline (section 4.4).

The paper compares LRGP against simulated annealing [17] with this cooling
schedule: a start temperature in {5, 10, 50, 100}; temperature multiplied by
0.999 at the end of each simulation round; simulation ends when temperature
drops to <= 1; a limit on total steps in {1e6, 1e7, 1e8}, divided equally
among the annealing temperatures.

We reproduce the schedule exactly; only the step budget is scaled down by
default so a benchmark run finishes in minutes rather than the paper's
23-357 minutes (the budget is a parameter — pass the paper's values to match
their compute).  The search stays inside the feasible region: infeasible
proposals are rejected outright, and the walk starts from the
zero allocation (minimum rates, nobody admitted), which is feasible for
every workload in the paper.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass

from repro.baselines.incremental import IncrementalState
from repro.baselines.moves import MoveConfig, MoveProposer
from repro.model.allocation import Allocation, zero_allocation
from repro.model.problem import Problem

#: The paper's cooling parameters (section 4.4).
PAPER_START_TEMPERATURES = (5.0, 10.0, 50.0, 100.0)
PAPER_STEP_LIMITS = (10**6, 10**7, 10**8)
COOLING_FACTOR = 0.999
END_TEMPERATURE = 1.0


def temperature_levels(start_temperature: float) -> int:
    """Number of annealing temperatures between start and end.

    The schedule multiplies by 0.999 per round and stops at <= 1, so the
    count is ``ceil(log(start) / -log(0.999))`` (at least 1).
    """
    if start_temperature <= END_TEMPERATURE:
        return 1
    return max(
        1, math.ceil(math.log(start_temperature / END_TEMPERATURE) / -math.log(COOLING_FACTOR))
    )


@dataclass(frozen=True)
class AnnealingConfig:
    """One simulated-annealing run's parameters."""

    start_temperature: float = 50.0
    max_steps: int = 10**6
    seed: int = 0
    move_config: MoveConfig | None = None

    def __post_init__(self) -> None:
        if self.start_temperature <= 0.0:
            raise ValueError("start_temperature must be positive")
        if self.max_steps < 1:
            raise ValueError("max_steps must be at least 1")


@dataclass(frozen=True)
class AnnealingResult:
    """Outcome of one run."""

    best_utility: float
    best_allocation: Allocation
    final_utility: float
    steps: int
    accepted: int
    start_temperature: float
    runtime_seconds: float

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.steps if self.steps else 0.0


def simulated_annealing(
    problem: Problem,
    config: AnnealingConfig | None = None,
    initial: Allocation | None = None,
) -> AnnealingResult:
    """Run simulated annealing with the paper's cooling schedule."""
    config = config or AnnealingConfig()
    rng = random.Random(config.seed)
    state = IncrementalState(problem, initial or zero_allocation(problem))
    proposer = MoveProposer(problem, rng, config.move_config)

    levels = temperature_levels(config.start_temperature)
    steps_per_level = max(1, config.max_steps // levels)

    best_utility = state.utility
    best_allocation = state.allocation()
    temperature = config.start_temperature
    steps = 0
    accepted = 0
    started = time.perf_counter()

    while temperature > END_TEMPERATURE and steps < config.max_steps:
        for _ in range(steps_per_level):
            if steps >= config.max_steps:
                break
            steps += 1
            move = proposer.propose(state)
            if move is None:
                continue
            delta = move.utility_delta
            # Maximization: always take uphill moves, take downhill moves
            # with Metropolis probability exp(delta / T).
            if delta >= 0.0 or rng.random() < math.exp(delta / temperature):
                state.apply(move)
                accepted += 1
                if state.utility > best_utility:
                    best_utility = state.utility
                    best_allocation = state.allocation()
        temperature *= COOLING_FACTOR

    return AnnealingResult(
        best_utility=best_utility,
        best_allocation=best_allocation,
        final_utility=state.utility,
        steps=steps,
        accepted=accepted,
        start_temperature=config.start_temperature,
        runtime_seconds=time.perf_counter() - started,
    )


def best_of_temperatures(
    problem: Problem,
    start_temperatures: tuple[float, ...] = PAPER_START_TEMPERATURES,
    max_steps: int = 10**6,
    seed: int = 0,
) -> AnnealingResult:
    """The paper's protocol: run once per start temperature, report the best.

    (The paper also sweeps step limits; callers wanting the full 12-run grid
    can loop over :data:`PAPER_STEP_LIMITS` themselves.)
    """
    best: AnnealingResult | None = None
    for index, start_temperature in enumerate(start_temperatures):
        result = simulated_annealing(
            problem,
            AnnealingConfig(
                start_temperature=start_temperature,
                max_steps=max_steps,
                seed=seed + index,
            ),
        )
        if best is None or result.best_utility > best.best_utility:
            best = result
    assert best is not None
    return best
