"""Analytic upper bounds on the achievable total utility.

The exact problem is nonconvex, but cheap relaxations bound the optimum
from above, giving tests and experiments an absolute yardstick:

* :func:`demand_bound` — ignore all resource constraints: every consumer
  admitted at the maximum rate.
* :func:`capacity_density_bound` — all utility is produced by admitted
  consumers, and a consumer of class ``j`` run at rate ``r`` produces
  ``U_j(r)`` utility for ``G_{b,j} * r`` node resource.  One unit of node
  resource therefore yields at most ``max_r U_j(r) / (G_{b,j} r)`` utility,
  so node ``b`` contributes at most ``c_b * max_j density_j``, additionally
  capped by the node's total demand.  Summing over nodes is a valid (often
  much tighter) upper bound because classes attach to single nodes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.entities import NodeId
from repro.model.problem import Problem

#: Grid resolution used to maximize the utility-per-resource density over r.
_DENSITY_GRID_POINTS = 512


def demand_bound(problem: Problem) -> float:
    """``sum_j n_j^max * U_j(r_i^max)`` — the no-resource-limits ceiling."""
    total = 0.0
    for cls in problem.classes.values():
        flow = problem.flows[cls.flow_id]
        total += cls.max_consumers * cls.utility.value(flow.rate_max)
    return total


def _max_density(problem: Problem, node_id: NodeId, class_id: str) -> float:
    """``max_{r in [r_min, r_max]} U_j(r) / (G_{b,j} * r)``, by dense grid.

    The ratio of a concave increasing function to a linear one is unimodal,
    so a dense grid is accurate; we take the grid max (a slight
    underestimate) times a one-grid-step safety factor to stay a true upper
    bound within practical tolerance.
    """
    cls = problem.classes[class_id]
    flow = problem.flows[cls.flow_id]
    unit = problem.costs.consumer(node_id, class_id)
    if unit <= 0.0:
        return float("inf")
    low = max(flow.rate_min, 1e-9)
    rates = np.linspace(low, flow.rate_max, _DENSITY_GRID_POINTS)
    densities = [cls.utility.value(float(r)) / (unit * float(r)) for r in rates]
    return max(densities)


def node_demand(problem: Problem, node_id: NodeId) -> float:
    """Maximum utility the node's classes could ever produce."""
    total = 0.0
    for class_id in problem.classes_at_node(node_id):
        cls = problem.classes[class_id]
        flow = problem.flows[cls.flow_id]
        total += cls.max_consumers * cls.utility.value(flow.rate_max)
    return total


def capacity_density_bound(problem: Problem) -> float:
    """Per-node capacity-times-best-density bound (see module docstring).

    Nodes hosting a zero-cost class (infinite density) fall back to their
    demand bound.
    """
    total = 0.0
    for node_id in problem.consumer_nodes():
        capacity = problem.nodes[node_id].capacity
        demand = node_demand(problem, node_id)
        if math.isinf(capacity):
            total += demand
            continue
        best_density = max(
            (
                _max_density(problem, node_id, class_id)
                for class_id in problem.classes_at_node(node_id)
            ),
            default=0.0,
        )
        if math.isinf(best_density):
            total += demand
        else:
            total += min(demand, capacity * best_density)
    return total


def utility_upper_bound(problem: Problem) -> float:
    """The tightest of the available analytic bounds."""
    return min(demand_bound(problem), capacity_density_bound(problem))
