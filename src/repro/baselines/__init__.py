"""Baselines and bounds LRGP is evaluated against.

* :func:`simulated_annealing` / :func:`best_of_temperatures` — the paper's
  comparison algorithm (section 4.4), with its exact cooling schedule.
* :func:`hill_climb`, :func:`random_search`, :func:`greedy_fixed_rates` —
  calibration baselines around SA.
* :func:`exhaustive_search` — ground truth on tiny instances.
* :func:`utility_upper_bound` and friends — analytic optimality yardsticks.
"""

from repro.baselines.annealing import (
    PAPER_START_TEMPERATURES,
    PAPER_STEP_LIMITS,
    AnnealingConfig,
    AnnealingResult,
    best_of_temperatures,
    simulated_annealing,
    temperature_levels,
)
from repro.baselines.coordinate import (
    CoordinateResult,
    alternating_optimization,
    multistart_alternating,
)
from repro.baselines.bounds import (
    capacity_density_bound,
    demand_bound,
    utility_upper_bound,
)
from repro.baselines.exhaustive import ExhaustiveResult, exhaustive_search
from repro.baselines.incremental import (
    IncrementalState,
    InfeasibleMoveError,
    Move,
    PopulationMove,
    RateMove,
)
from repro.baselines.local_search import (
    SearchResult,
    greedy_fixed_rates,
    hill_climb,
    random_search,
)
from repro.baselines.moves import MoveConfig, MoveProposer

__all__ = [
    "PAPER_START_TEMPERATURES",
    "PAPER_STEP_LIMITS",
    "AnnealingConfig",
    "AnnealingResult",
    "CoordinateResult",
    "ExhaustiveResult",
    "alternating_optimization",
    "multistart_alternating",
    "IncrementalState",
    "InfeasibleMoveError",
    "Move",
    "MoveConfig",
    "MoveProposer",
    "PopulationMove",
    "RateMove",
    "SearchResult",
    "best_of_temperatures",
    "capacity_density_bound",
    "demand_bound",
    "exhaustive_search",
    "greedy_fixed_rates",
    "hill_climb",
    "random_search",
    "simulated_annealing",
    "temperature_levels",
    "utility_upper_bound",
]
