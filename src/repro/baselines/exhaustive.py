"""Exhaustive grid search — ground truth for tiny problem instances.

Section 4.4 notes the solution-space size forbids exhaustive search on the
evaluation workloads; on *tiny* instances it is tractable and gives the
tests a true optimum to compare LRGP and the baselines against.

Rates are discretized on a grid; populations are enumerated exactly (they
are already integral).  The search prunes by node budgets while recursing
over classes, so it handles a few hundred thousand candidate combinations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.model.allocation import (
    Allocation,
    is_feasible,
    total_utility,
)
from repro.model.problem import Problem


@dataclass(frozen=True)
class ExhaustiveResult:
    best_utility: float
    best_allocation: Allocation
    evaluated: int


def _population_choices(problem: Problem, max_populations: int) -> dict[str, list[int]]:
    """Candidate population values per class: 0..n^max, subsampled evenly
    when n^max is large."""
    choices: dict[str, list[int]] = {}
    for class_id, cls in problem.classes.items():
        if cls.max_consumers + 1 <= max_populations:
            choices[class_id] = list(range(cls.max_consumers + 1))
        else:
            values = np.linspace(0, cls.max_consumers, max_populations)
            choices[class_id] = sorted({int(round(v)) for v in values})
    return choices


def exhaustive_search(
    problem: Problem,
    rate_grid_points: int = 5,
    max_populations: int = 6,
) -> ExhaustiveResult:
    """Enumerate a rate grid x population grid; return the feasible optimum.

    Complexity is ``rate_grid_points ** |F| * max_populations ** |C|`` —
    only use on problems with a handful of flows and classes (tests do).
    """
    if rate_grid_points < 2:
        raise ValueError("rate_grid_points must be at least 2")
    flow_ids = sorted(problem.flows)
    class_ids = sorted(problem.classes)
    rate_grids = [
        np.linspace(
            problem.flows[flow_id].rate_min,
            problem.flows[flow_id].rate_max,
            rate_grid_points,
        )
        for flow_id in flow_ids
    ]
    population_choices = _population_choices(problem, max_populations)

    best_utility = float("-inf")
    best_allocation: Allocation | None = None
    evaluated = 0

    for rate_tuple in itertools.product(*rate_grids):
        rates = {flow_id: float(rate) for flow_id, rate in zip(flow_ids, rate_tuple)}
        for population_tuple in itertools.product(
            *(population_choices[class_id] for class_id in class_ids)
        ):
            evaluated += 1
            allocation = Allocation(
                rates=rates,
                populations=dict(zip(class_ids, population_tuple)),
            )
            if not is_feasible(problem, allocation):
                continue
            utility = total_utility(problem, allocation)
            if utility > best_utility:
                best_utility = utility
                best_allocation = allocation

    if best_allocation is None:
        raise RuntimeError("no feasible point on the search grid")
    return ExhaustiveResult(
        best_utility=best_utility,
        best_allocation=best_allocation,
        evaluated=evaluated,
    )
