"""Allocation state and objective/constraint evaluation.

An :class:`Allocation` is a full assignment of flow rates and class
populations.  It knows how to compute the paper's objective (eq. 1), the
per-resource usages (left-hand sides of eq. 4 and 5), and feasibility.

Both LRGP and the baselines manipulate allocations; the evaluation helpers
here are the single source of truth for "what is the utility of this
solution", so algorithms cannot disagree about the objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.entities import ClassId, FlowId, LinkId, NodeId
from repro.model.problem import Problem

#: Relative slack tolerated when checking resource constraints, to absorb
#: floating-point noise in usages computed incrementally.
FEASIBILITY_RTOL = 1e-9


@dataclass
class Allocation:
    """Rates ``r_i`` and populations ``n_j`` for a problem instance."""

    rates: dict[FlowId, float] = field(default_factory=dict)
    populations: dict[ClassId, int] = field(default_factory=dict)

    def copy(self) -> "Allocation":
        return Allocation(rates=dict(self.rates), populations=dict(self.populations))

    def rate(self, flow_id: FlowId) -> float:
        return self.rates.get(flow_id, 0.0)

    def population(self, class_id: ClassId) -> int:
        return self.populations.get(class_id, 0)


def zero_allocation(problem: Problem) -> Allocation:
    """All rates at their minimum, no consumers admitted — always feasible
    with respect to node constraints unless minimum rates alone violate
    them."""
    return Allocation(
        rates={f: flow.rate_min for f, flow in problem.flows.items()},
        populations={c: 0 for c in problem.classes},
    )


def full_allocation(problem: Problem) -> Allocation:
    """All rates at their maximum, every consumer admitted — usually
    infeasible; used as an optimistic upper-bound seed."""
    return Allocation(
        rates={f: flow.rate_max for f, flow in problem.flows.items()},
        populations={c: cls.max_consumers for c, cls in problem.classes.items()},
    )


def total_utility(problem: Problem, allocation: Allocation) -> float:
    """The objective (eq. 1): ``sum_i sum_{j in C_i} n_j U_j(r_i)``."""
    utility = 0.0
    for class_id, cls in problem.classes.items():
        population = allocation.population(class_id)
        if population > 0:
            utility += population * cls.utility.value(allocation.rate(cls.flow_id))
    return utility


def link_usage(problem: Problem, allocation: Allocation, link_id: LinkId) -> float:
    """LHS of the link constraint (eq. 4): ``sum_i L_{l,i} r_i``."""
    return sum(
        problem.costs.link(link_id, flow_id) * allocation.rate(flow_id)
        for flow_id in problem.flows_on_link(link_id)
    )


def node_usage(problem: Problem, allocation: Allocation, node_id: NodeId) -> float:
    """LHS of the node constraint (eq. 5):

    ``sum_i ( F_{b,i} r_i + sum_{j in attachMap_i(b)} G_{b,j} n_j r_i )``.
    """
    usage = 0.0
    for flow_id in problem.flows_at_node(node_id):
        rate = allocation.rate(flow_id)
        usage += problem.costs.flow_node(node_id, flow_id) * rate
        for class_id in problem.classes_of_flow_at_node(flow_id, node_id):
            usage += (
                problem.costs.consumer(node_id, class_id)
                * allocation.population(class_id)
                * rate
            )
    return usage


def node_flow_usage(problem: Problem, allocation: Allocation, node_id: NodeId) -> float:
    """The consumer-independent part of node usage: ``sum_i F_{b,i} r_i``."""
    return sum(
        problem.costs.flow_node(node_id, flow_id) * allocation.rate(flow_id)
        for flow_id in problem.flows_at_node(node_id)
    )


@dataclass(frozen=True)
class Violation:
    """A single constraint violation found by :func:`violations`."""

    kind: str  # "rate", "population", "link", "node"
    subject: str
    amount: float  # how far past the bound, in the constraint's units

    def __str__(self) -> str:
        return f"{self.kind} constraint violated at {self.subject} by {self.amount:g}"


def violations(
    problem: Problem, allocation: Allocation, rtol: float = FEASIBILITY_RTOL
) -> list[Violation]:
    """Return every violated constraint (eq. 2-5), empty if feasible."""
    found: list[Violation] = []
    for flow_id, flow in problem.flows.items():
        rate = allocation.rate(flow_id)
        if rate < flow.rate_min - rtol * max(flow.rate_min, 1.0):
            found.append(Violation("rate", flow_id, flow.rate_min - rate))
        if rate > flow.rate_max + rtol * max(flow.rate_max, 1.0):
            found.append(Violation("rate", flow_id, rate - flow.rate_max))
    for class_id, cls in problem.classes.items():
        population = allocation.population(class_id)
        if population < 0:
            found.append(Violation("population", class_id, float(-population)))
        if population > cls.max_consumers:
            found.append(
                Violation("population", class_id, float(population - cls.max_consumers))
            )
    for link_id, link in problem.links.items():
        usage = link_usage(problem, allocation, link_id)
        if usage > link.capacity * (1.0 + rtol):
            found.append(Violation("link", link_id, usage - link.capacity))
    for node_id, node in problem.nodes.items():
        usage = node_usage(problem, allocation, node_id)
        if usage > node.capacity * (1.0 + rtol):
            found.append(Violation("node", node_id, usage - node.capacity))
    return found


def is_feasible(
    problem: Problem, allocation: Allocation, rtol: float = FEASIBILITY_RTOL
) -> bool:
    """True when the allocation satisfies eq. 2-5 (within ``rtol``)."""
    return not violations(problem, allocation, rtol)
