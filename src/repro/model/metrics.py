"""Allocation quality metrics beyond raw utility.

The objective (eq. 1) is pure utilitarian welfare; operators also ask
*who* got served.  These metrics quantify the admission pattern:

* per-class admitted fraction and utility share;
* Jain's fairness index over admitted fractions (1 = everyone served the
  same fraction of their demand, 1/n = one class takes everything);
* service counts by rank band, exposing the greedy allocation's
  prioritization of high-rank classes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.allocation import Allocation, total_utility
from repro.model.entities import ClassId
from repro.model.problem import Problem
from repro.utility.tolerance import is_zero


@dataclass(frozen=True)
class ClassService:
    """How one consumer class fared under an allocation."""

    class_id: ClassId
    admitted: int
    connected: int
    rate: float
    utility: float

    @property
    def admitted_fraction(self) -> float:
        if self.connected == 0:
            return 1.0
        return self.admitted / self.connected


def class_service(problem: Problem, allocation: Allocation) -> list[ClassService]:
    """Per-class service report, sorted by class id."""
    report = []
    for class_id in sorted(problem.classes):
        cls = problem.classes[class_id]
        admitted = allocation.population(class_id)
        rate = allocation.rate(cls.flow_id)
        utility = admitted * cls.utility.value(rate) if admitted > 0 else 0.0
        report.append(
            ClassService(
                class_id=class_id,
                admitted=admitted,
                connected=cls.max_consumers,
                rate=rate,
                utility=utility,
            )
        )
    return report


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)`` in ``[1/n, 1]``.

    An all-zero vector is conventionally perfectly fair (index 1).
    """
    if not values:
        raise ValueError("no values")
    if any(value < 0.0 for value in values):
        raise ValueError("values must be non-negative")
    total = sum(values)
    if is_zero(total):
        return 1.0
    squares = sum(value * value for value in values)
    return (total * total) / (len(values) * squares)


def admission_fairness(problem: Problem, allocation: Allocation) -> float:
    """Jain's index over per-class admitted fractions."""
    report = class_service(problem, allocation)
    return jain_index([service.admitted_fraction for service in report])


def utility_concentration(problem: Problem, allocation: Allocation) -> float:
    """Fraction of total utility captured by the top 20% of classes
    (by utility) — a quick concentration read-out."""
    report = class_service(problem, allocation)
    utilities = sorted((service.utility for service in report), reverse=True)
    total = sum(utilities)
    if is_zero(total):
        return 0.0
    top = max(1, len(utilities) // 5)
    return sum(utilities[:top]) / total


@dataclass(frozen=True)
class AllocationSummary:
    """One-stop quality summary of an allocation."""

    utility: float
    admitted: int
    connected: int
    fairness: float
    concentration: float

    @property
    def admitted_fraction(self) -> float:
        if self.connected == 0:
            return 1.0
        return self.admitted / self.connected


def summarize(problem: Problem, allocation: Allocation) -> AllocationSummary:
    report = class_service(problem, allocation)
    return AllocationSummary(
        utility=total_utility(problem, allocation),
        admitted=sum(service.admitted for service in report),
        connected=sum(service.connected for service in report),
        fairness=admission_fairness(problem, allocation),
        concentration=utility_concentration(problem, allocation),
    )
