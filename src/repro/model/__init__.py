"""System model: entities, topology, costs, problem instances, allocations.

This package is the substrate every algorithm operates on.  A
:class:`Problem` holds the validated, immutable description of an
event-driven infrastructure (section 2 of the paper); an
:class:`Allocation` holds a candidate solution; the module-level helpers
evaluate the objective (eq. 1) and constraints (eq. 2-5).
"""

from repro.model.allocation import (
    Allocation,
    Violation,
    full_allocation,
    is_feasible,
    link_usage,
    node_flow_usage,
    node_usage,
    total_utility,
    violations,
    zero_allocation,
)
from repro.model.costs import (
    GRYPHON_CONSUMER_COST,
    GRYPHON_FLOW_NODE_COST,
    GRYPHON_NODE_CAPACITY,
    CostModel,
    CostModelBuilder,
)
from repro.model.entities import (
    ClassId,
    ConsumerClass,
    Flow,
    FlowId,
    Link,
    LinkId,
    Node,
    NodeId,
    Route,
)
from repro.model.problem import Problem, ProblemValidationError, build_problem
from repro.model.serialization import (
    SerializationError,
    allocation_from_dict,
    allocation_from_json,
    allocation_to_dict,
    allocation_to_json,
    problem_from_dict,
    problem_from_json,
    problem_to_dict,
    problem_to_json,
)
from repro.model.topology import Overlay, RoutingError, line_overlay, star_overlay

__all__ = [
    "GRYPHON_CONSUMER_COST",
    "GRYPHON_FLOW_NODE_COST",
    "GRYPHON_NODE_CAPACITY",
    "Allocation",
    "ClassId",
    "ConsumerClass",
    "CostModel",
    "CostModelBuilder",
    "Flow",
    "FlowId",
    "Link",
    "LinkId",
    "Node",
    "NodeId",
    "Overlay",
    "Problem",
    "ProblemValidationError",
    "Route",
    "RoutingError",
    "SerializationError",
    "Violation",
    "allocation_from_dict",
    "allocation_from_json",
    "allocation_to_dict",
    "allocation_to_json",
    "build_problem",
    "problem_from_dict",
    "problem_from_json",
    "problem_to_dict",
    "problem_to_json",
    "full_allocation",
    "is_feasible",
    "line_overlay",
    "link_usage",
    "node_flow_usage",
    "node_usage",
    "star_overlay",
    "total_utility",
    "violations",
    "zero_allocation",
]
