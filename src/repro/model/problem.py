"""The optimization problem instance (section 2).

:class:`Problem` bundles the entity sets, the routes and the cost model, and
precomputes the index maps the paper names:

* ``flowMap(j)``      -> :meth:`Problem.flow_of_class`
* ``C_i``             -> :meth:`Problem.classes_of_flow`
* ``attachMap_i(b)``  -> :meth:`Problem.classes_of_flow_at_node`
* ``nodeClasses(b)``  -> :meth:`Problem.classes_at_node`
* ``linkMap(l)``      -> :meth:`Problem.flows_on_link`
* ``nodeMap(b)``      -> :meth:`Problem.flows_at_node`
* ``L_i`` / ``B_i``   -> :meth:`Problem.route` (links / nodes of a flow)

Construction validates cross-references and caches the maps, so algorithm
code never walks raw entity lists.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.model.costs import CostModel
from repro.model.entities import (
    ClassId,
    ConsumerClass,
    Flow,
    FlowId,
    Link,
    LinkId,
    Node,
    NodeId,
    Route,
)


class ProblemValidationError(ValueError):
    """Raised when a problem instance is internally inconsistent."""


@dataclass(frozen=True)
class Problem:
    """An immutable, validated problem instance.

    Use :func:`build_problem` (or a workload builder from
    :mod:`repro.workloads`) rather than constructing directly, so the
    derived maps are populated.
    """

    nodes: Mapping[NodeId, Node]
    links: Mapping[LinkId, Link]
    flows: Mapping[FlowId, Flow]
    classes: Mapping[ClassId, ConsumerClass]
    routes: Mapping[FlowId, Route]
    costs: CostModel
    # Derived maps (built by build_problem).
    _classes_of_flow: Mapping[FlowId, tuple[ClassId, ...]]
    _classes_at_node: Mapping[NodeId, tuple[ClassId, ...]]
    _flows_at_node: Mapping[NodeId, tuple[FlowId, ...]]
    _flows_on_link: Mapping[LinkId, tuple[FlowId, ...]]

    # -- the paper's index maps -------------------------------------------

    def flow_of_class(self, class_id: ClassId) -> FlowId:
        """``flowMap(j)``: the flow consumed by class ``j``."""
        return self.classes[class_id].flow_id

    def classes_of_flow(self, flow_id: FlowId) -> tuple[ClassId, ...]:
        """``C_i``: all classes consuming flow ``i``."""
        return self._classes_of_flow.get(flow_id, ())

    def classes_at_node(self, node_id: NodeId) -> tuple[ClassId, ...]:
        """``nodeClasses(b)``: all classes attached to node ``b``."""
        return self._classes_at_node.get(node_id, ())

    def classes_of_flow_at_node(
        self, flow_id: FlowId, node_id: NodeId
    ) -> tuple[ClassId, ...]:
        """``attachMap_i(b)``: classes of flow ``i`` attached to node ``b``."""
        return tuple(
            class_id
            for class_id in self._classes_at_node.get(node_id, ())
            if self.classes[class_id].flow_id == flow_id
        )

    def flows_at_node(self, node_id: NodeId) -> tuple[FlowId, ...]:
        """``nodeMap(b)``: flows whose route reaches node ``b``."""
        return self._flows_at_node.get(node_id, ())

    def flows_on_link(self, link_id: LinkId) -> tuple[FlowId, ...]:
        """``linkMap(l)``: flows traversing link ``l``."""
        return self._flows_on_link.get(link_id, ())

    def route(self, flow_id: FlowId) -> Route:
        """``B_i`` and ``L_i``: the nodes reached / links used by flow ``i``."""
        return self.routes[flow_id]

    # -- convenience -------------------------------------------------------

    def consumer_nodes(self) -> tuple[NodeId, ...]:
        """Nodes hosting at least one consumer class, in sorted order."""
        return tuple(sorted(self._classes_at_node))

    def bottleneck_links(self) -> tuple[LinkId, ...]:
        """Links with finite capacity, in sorted order."""
        return tuple(
            sorted(
                link_id
                for link_id, link in self.links.items()
                if not math.isinf(link.capacity)
            )
        )

    def without_flow(self, flow_id: FlowId) -> "Problem":
        """Return a copy with ``flow_id`` (and its classes/route) removed.

        Models a flow source leaving the system (section 4.2, figure 3).
        """
        if flow_id not in self.flows:
            raise KeyError(f"unknown flow {flow_id!r}")
        removed_classes = {
            c.class_id for c in self.classes.values() if c.flow_id == flow_id
        }
        pruned_costs = CostModel(
            link_cost={
                key: value
                for key, value in self.costs.link_cost.items()
                if key[1] != flow_id
            },
            flow_node_cost={
                key: value
                for key, value in self.costs.flow_node_cost.items()
                if key[1] != flow_id
            },
            consumer_cost={
                key: value
                for key, value in self.costs.consumer_cost.items()
                if key[1] not in removed_classes
            },
        )
        return build_problem(
            nodes=self.nodes.values(),
            links=self.links.values(),
            flows=[f for f in self.flows.values() if f.flow_id != flow_id],
            classes=[c for c in self.classes.values() if c.flow_id != flow_id],
            routes={f: r for f, r in self.routes.items() if f != flow_id},
            costs=pruned_costs,
        )

    def with_node_capacity(self, node_id: NodeId, capacity: float) -> "Problem":
        """Return a copy with one node's capacity changed.

        Models capacity dynamics (failures, co-tenancy, upgrades) the
        autonomic system must react to.
        """
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {node_id!r}")
        return build_problem(
            nodes=[
                node if node.node_id != node_id else Node(node_id, capacity=capacity)
                for node in self.nodes.values()
            ],
            links=self.links.values(),
            flows=self.flows.values(),
            classes=self.classes.values(),
            routes=self.routes,
            costs=self.costs,
        )

    def with_costs(self, costs: CostModel) -> "Problem":
        """Return a copy with a different cost model (used by the two-stage
        approximation's pruning pass)."""
        return build_problem(
            nodes=self.nodes.values(),
            links=self.links.values(),
            flows=self.flows.values(),
            classes=self.classes.values(),
            routes=self.routes,
            costs=costs,
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{len(self.flows)} flows, {len(self.consumer_nodes())} c-nodes, "
            f"{len(self.classes)} classes, {len(self.links)} links"
        )


def _validate(
    nodes: dict[NodeId, Node],
    links: dict[LinkId, Link],
    flows: dict[FlowId, Flow],
    classes: dict[ClassId, ConsumerClass],
    routes: dict[FlowId, Route],
    costs: CostModel,
) -> None:
    for link in links.values():
        for endpoint in (link.tail, link.head):
            if endpoint not in nodes:
                raise ProblemValidationError(
                    f"link {link.link_id} references unknown node {endpoint}"
                )
    for flow in flows.values():
        if flow.source not in nodes:
            raise ProblemValidationError(
                f"flow {flow.flow_id} has unknown source node {flow.source}"
            )
        route = routes.get(flow.flow_id)
        if route is None:
            raise ProblemValidationError(f"flow {flow.flow_id} has no route")
        for node_id in route.nodes:
            if node_id not in nodes:
                raise ProblemValidationError(
                    f"route of flow {flow.flow_id} visits unknown node {node_id}"
                )
        for link_id in route.links:
            if link_id not in links:
                raise ProblemValidationError(
                    f"route of flow {flow.flow_id} uses unknown link {link_id}"
                )
        if route.nodes[0] != flow.source:
            raise ProblemValidationError(
                f"route of flow {flow.flow_id} must start at its source "
                f"{flow.source}, starts at {route.nodes[0]}"
            )
    for flow_id in routes:
        if flow_id not in flows:
            raise ProblemValidationError(f"route given for unknown flow {flow_id}")
    for cls in classes.values():
        if cls.flow_id not in flows:
            raise ProblemValidationError(
                f"class {cls.class_id} consumes unknown flow {cls.flow_id}"
            )
        if cls.node not in nodes:
            raise ProblemValidationError(
                f"class {cls.class_id} attaches to unknown node {cls.node}"
            )
        if cls.node not in routes[cls.flow_id].nodes:
            raise ProblemValidationError(
                f"class {cls.class_id} attaches to node {cls.node}, which the "
                f"route of flow {cls.flow_id} does not reach"
            )
    for (link_id, flow_id) in costs.link_cost:
        if link_id not in links or flow_id not in flows:
            raise ProblemValidationError(
                f"link cost references unknown pair ({link_id}, {flow_id})"
            )
    for (node_id, flow_id) in costs.flow_node_cost:
        if node_id not in nodes or flow_id not in flows:
            raise ProblemValidationError(
                f"flow-node cost references unknown pair ({node_id}, {flow_id})"
            )
    for (node_id, class_id) in costs.consumer_cost:
        if node_id not in nodes or class_id not in classes:
            raise ProblemValidationError(
                f"consumer cost references unknown pair ({node_id}, {class_id})"
            )


def build_problem(
    nodes: Iterable[Node],
    links: Iterable[Link],
    flows: Iterable[Flow],
    classes: Iterable[ConsumerClass],
    routes: Mapping[FlowId, Route],
    costs: CostModel,
) -> Problem:
    """Validate inputs, derive the index maps and freeze a :class:`Problem`."""
    node_map = {n.node_id: n for n in nodes}
    link_map = {l.link_id: l for l in links}
    flow_map = {f.flow_id: f for f in flows}
    class_map = {c.class_id: c for c in classes}
    route_map = dict(routes)
    if len(node_map) != len(list(node_map)):
        raise ProblemValidationError("duplicate node ids")
    _validate(node_map, link_map, flow_map, class_map, route_map, costs)

    classes_of_flow: dict[FlowId, list[ClassId]] = {}
    classes_at_node: dict[NodeId, list[ClassId]] = {}
    for cls in class_map.values():
        classes_of_flow.setdefault(cls.flow_id, []).append(cls.class_id)
        classes_at_node.setdefault(cls.node, []).append(cls.class_id)

    flows_at_node: dict[NodeId, list[FlowId]] = {}
    flows_on_link: dict[LinkId, list[FlowId]] = {}
    for flow_id, route in route_map.items():
        for node_id in route.nodes:
            flows_at_node.setdefault(node_id, []).append(flow_id)
        for link_id in route.links:
            flows_on_link.setdefault(link_id, []).append(flow_id)

    return Problem(
        nodes=node_map,
        links=link_map,
        flows=flow_map,
        classes=class_map,
        routes=route_map,
        costs=costs,
        _classes_of_flow={f: tuple(sorted(v)) for f, v in classes_of_flow.items()},
        _classes_at_node={n: tuple(sorted(v)) for n, v in classes_at_node.items()},
        _flows_at_node={n: tuple(sorted(v)) for n, v in flows_at_node.items()},
        _flows_on_link={l: tuple(sorted(v)) for l, v in flows_on_link.items()},
    )
