"""Overlay topology and routing substrate.

The paper assumes each flow has a given dissemination path (section 5:
"Our optimization algorithm assumes all the flows have a given path").
This module builds those paths: it wraps a directed overlay graph
(:mod:`networkx`) and computes, for each flow, a dissemination *tree* from
the flow's source to the nodes hosting its consumer classes, recorded as a
:class:`repro.model.entities.Route`.

For the paper's evaluation workloads links are never bottlenecks
(section 4.1), so workload builders may use :func:`star_overlay` with
effectively infinite link capacities; the full routing path is still
materialized so link-price machinery is exercised end to end.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

import networkx as nx

from repro.model.entities import Link, LinkId, Node, NodeId, Route


class RoutingError(ValueError):
    """Raised when no route exists between a source and a consumer node."""


class Overlay:
    """A directed overlay of nodes and unidirectional capacitated links."""

    def __init__(self, nodes: Iterable[Node], links: Iterable[Link]) -> None:
        self._nodes = {n.node_id: n for n in nodes}
        self._links = {l.link_id: l for l in links}
        self._graph = nx.DiGraph()
        for node in self._nodes.values():
            self._graph.add_node(node.node_id)
        for link in self._links.values():
            if link.tail not in self._nodes or link.head not in self._nodes:
                raise RoutingError(
                    f"link {link.link_id} references nodes outside the overlay"
                )
            if self._graph.has_edge(link.tail, link.head):
                raise RoutingError(
                    f"parallel link between {link.tail} and {link.head}"
                )
            self._graph.add_edge(link.tail, link.head, link_id=link.link_id)

    @property
    def nodes(self) -> Mapping[NodeId, Node]:
        return self._nodes

    @property
    def links(self) -> Mapping[LinkId, Link]:
        return self._links

    def shortest_path(self, source: NodeId, target: NodeId) -> list[NodeId]:
        """Hop-count shortest path, raising :class:`RoutingError` when
        disconnected."""
        try:
            return nx.shortest_path(self._graph, source, target)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise RoutingError(f"no path from {source} to {target}") from exc

    def link_between(self, tail: NodeId, head: NodeId) -> LinkId:
        data = self._graph.get_edge_data(tail, head)
        if data is None:
            raise RoutingError(f"no link from {tail} to {head}")
        return data["link_id"]

    def dissemination_route(self, source: NodeId, targets: Sequence[NodeId]) -> Route:
        """Build the dissemination tree of a flow as a :class:`Route`.

        The tree is the union of hop-count shortest paths from ``source`` to
        each target (a standard shortest-path-tree approximation of the
        Steiner tree).  Node order is a breadth-first order of the union,
        starting at the source; each link appears once even when shared by
        several target paths.
        """
        ordered_nodes: list[NodeId] = [source]
        seen_nodes = {source}
        ordered_links: list[LinkId] = []
        seen_links: set[LinkId] = set()
        for target in targets:
            path = self.shortest_path(source, target)
            for tail, head in zip(path, path[1:]):
                link_id = self.link_between(tail, head)
                if link_id not in seen_links:
                    seen_links.add(link_id)
                    ordered_links.append(link_id)
                if head not in seen_nodes:
                    seen_nodes.add(head)
                    ordered_nodes.append(head)
        return Route(nodes=tuple(ordered_nodes), links=tuple(ordered_links))


def star_overlay(
    hub_id: NodeId,
    leaf_ids: Sequence[NodeId],
    node_capacity: float,
    link_capacity: float = math.inf,
    hub_capacity: float = math.inf,
) -> Overlay:
    """A hub-and-spoke overlay: one hub with a unidirectional link to each
    leaf.

    This is the minimal topology matching the paper's workloads: producers
    attach at the hub, consumer nodes are the leaves, and link capacities
    default to infinite so only node resources constrain the system.
    """
    nodes = [Node(hub_id, capacity=hub_capacity)] + [
        Node(leaf, capacity=node_capacity) for leaf in leaf_ids
    ]
    links = [
        Link(f"{hub_id}->{leaf}", tail=hub_id, head=leaf, capacity=link_capacity)
        for leaf in leaf_ids
    ]
    return Overlay(nodes, links)


def line_overlay(
    node_ids: Sequence[NodeId],
    node_capacity: float,
    link_capacity: float = math.inf,
) -> Overlay:
    """A unidirectional chain ``n0 -> n1 -> ... -> nk``.

    Useful for link-bottleneck experiments: every downstream flow shares the
    upstream links.
    """
    if len(node_ids) < 2:
        raise ValueError("a line overlay needs at least two nodes")
    nodes = [Node(node_id, capacity=node_capacity) for node_id in node_ids]
    links = [
        Link(f"{tail}->{head}", tail=tail, head=head, capacity=link_capacity)
        for tail, head in zip(node_ids, node_ids[1:])
    ]
    return Overlay(nodes, links)
