"""Overlay topology and routing substrate.

The paper assumes each flow has a given dissemination path (section 5:
"Our optimization algorithm assumes all the flows have a given path").
This module builds those paths: it wraps a directed overlay graph
(:mod:`networkx`) and computes, for each flow, a dissemination *tree* from
the flow's source to the nodes hosting its consumer classes, recorded as a
:class:`repro.model.entities.Route`.

For the paper's evaluation workloads links are never bottlenecks
(section 4.1), so workload builders may use :func:`star_overlay` with
effectively infinite link capacities; the full routing path is still
materialized so link-price machinery is exercised end to end.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

import networkx as nx

from repro.model.entities import Link, LinkId, Node, NodeId, Route


class RoutingError(ValueError):
    """Raised when no route exists between a source and a consumer node."""


class Overlay:
    """A directed overlay of nodes and unidirectional capacitated links."""

    def __init__(self, nodes: Iterable[Node], links: Iterable[Link]) -> None:
        self._nodes = {n.node_id: n for n in nodes}
        self._links = {l.link_id: l for l in links}
        self._graph = nx.DiGraph()
        for node in self._nodes.values():
            self._graph.add_node(node.node_id)
        for link in self._links.values():
            if link.tail not in self._nodes or link.head not in self._nodes:
                raise RoutingError(
                    f"link {link.link_id} references nodes outside the overlay"
                )
            if self._graph.has_edge(link.tail, link.head):
                raise RoutingError(
                    f"parallel link between {link.tail} and {link.head}"
                )
            self._graph.add_edge(link.tail, link.head, link_id=link.link_id)

    @property
    def nodes(self) -> Mapping[NodeId, Node]:
        return self._nodes

    @property
    def links(self) -> Mapping[LinkId, Link]:
        return self._links

    def shortest_path(self, source: NodeId, target: NodeId) -> list[NodeId]:
        """Hop-count shortest path, raising :class:`RoutingError` when
        disconnected."""
        try:
            return nx.shortest_path(self._graph, source, target)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise RoutingError(f"no path from {source} to {target}") from exc

    def link_between(self, tail: NodeId, head: NodeId) -> LinkId:
        data = self._graph.get_edge_data(tail, head)
        if data is None:
            raise RoutingError(f"no link from {tail} to {head}")
        return data["link_id"]

    def dissemination_route(self, source: NodeId, targets: Sequence[NodeId]) -> Route:
        """Build the dissemination tree of a flow as a :class:`Route`.

        The tree is the union of hop-count shortest paths from ``source`` to
        each target (a standard shortest-path-tree approximation of the
        Steiner tree).  Node order is a breadth-first order of the union,
        starting at the source; each link appears once even when shared by
        several target paths.
        """
        ordered_nodes: list[NodeId] = [source]
        seen_nodes = {source}
        ordered_links: list[LinkId] = []
        seen_links: set[LinkId] = set()
        for target in targets:
            path = self.shortest_path(source, target)
            for tail, head in zip(path, path[1:]):
                link_id = self.link_between(tail, head)
                if link_id not in seen_links:
                    seen_links.add(link_id)
                    ordered_links.append(link_id)
                if head not in seen_nodes:
                    seen_nodes.add(head)
                    ordered_nodes.append(head)
        return Route(nodes=tuple(ordered_nodes), links=tuple(ordered_links))


def star_overlay(
    hub_id: NodeId,
    leaf_ids: Sequence[NodeId],
    node_capacity: float,
    link_capacity: float = math.inf,
    hub_capacity: float = math.inf,
) -> Overlay:
    """A hub-and-spoke overlay: one hub with a unidirectional link to each
    leaf.

    This is the minimal topology matching the paper's workloads: producers
    attach at the hub, consumer nodes are the leaves, and link capacities
    default to infinite so only node resources constrain the system.
    """
    nodes = [Node(hub_id, capacity=hub_capacity)] + [
        Node(leaf, capacity=node_capacity) for leaf in leaf_ids
    ]
    links = [
        Link(f"{hub_id}->{leaf}", tail=hub_id, head=leaf, capacity=link_capacity)
        for leaf in leaf_ids
    ]
    return Overlay(nodes, links)


def leaf_spine_overlay(
    spines: int,
    leaves: int,
    leaf_capacity: float,
    link_capacity: float = math.inf,
    hub_capacity: float = math.inf,
    spine_capacity: float = math.inf,
    hub_id: NodeId = "hub",
) -> Overlay:
    """A two-tier leaf-spine fabric fed by one producer hub.

    The hub (where producers attach) links to every spine, and every spine
    links to every leaf — the standard datacenter Clos fabric, downstream
    direction only (dissemination flows hub → spine → leaf).  Consumer
    classes live on the leaves; spines and the hub default to infinite
    capacity so they are pure transit.  Every leaf is reachable through
    *every* spine, so the fabric is multipath: workload builders pick the
    spine per flow (ECMP-style) rather than letting BFS tie-breaking
    collapse all routes onto the first spine.

    Node ids are ``spine{i}`` / ``leaf{j}``; link ids are ``tail->head``.
    With ``S`` spines and ``L`` leaves the overlay has ``S + S*L`` links —
    ``spines=100, leaves=100`` gives the 10k+ link fabric the scale bench
    runs.
    """
    if spines < 1 or leaves < 1:
        raise ValueError("a leaf-spine overlay needs at least one spine and leaf")
    spine_ids = [f"spine{i}" for i in range(spines)]
    leaf_ids = [f"leaf{j}" for j in range(leaves)]
    nodes = (
        [Node(hub_id, capacity=hub_capacity)]
        + [Node(sid, capacity=spine_capacity) for sid in spine_ids]
        + [Node(lid, capacity=leaf_capacity) for lid in leaf_ids]
    )
    links = [
        Link(f"{hub_id}->{sid}", tail=hub_id, head=sid, capacity=link_capacity)
        for sid in spine_ids
    ]
    for sid in spine_ids:
        for lid in leaf_ids:
            links.append(
                Link(f"{sid}->{lid}", tail=sid, head=lid, capacity=link_capacity)
            )
    return Overlay(nodes, links)


def fat_tree_overlay(
    k: int,
    edge_capacity: float,
    link_capacity: float = math.inf,
    hub_capacity: float = math.inf,
    transit_capacity: float = math.inf,
    hub_id: NodeId = "hub",
) -> Overlay:
    """A three-tier k-ary fat tree fed by one producer hub.

    The canonical ``k``-pod fat tree (``k`` even): ``(k/2)^2`` core
    switches, ``k`` pods of ``k/2`` aggregation and ``k/2`` edge switches
    each.  Core ``c`` connects to aggregation switch ``c // (k/2)`` of
    every pod, and aggregation switches connect to every edge switch in
    their pod — downstream direction only, with the hub linked to every
    core.  Consumer classes live on the edge switches; everything above
    defaults to infinite capacity (pure transit).  Like the leaf-spine
    fabric, the tree is multipath from the hub (one path per core), and
    workload builders pick the core per flow.

    Node ids are ``core{c}`` / ``agg{p}_{a}`` / ``edge{p}_{e}``.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError("a fat tree needs an even k >= 2")
    half = k // 2
    core_ids = [f"core{c}" for c in range(half * half)]
    nodes = [Node(hub_id, capacity=hub_capacity)] + [
        Node(cid, capacity=transit_capacity) for cid in core_ids
    ]
    links = [
        Link(f"{hub_id}->{cid}", tail=hub_id, head=cid, capacity=link_capacity)
        for cid in core_ids
    ]
    for pod in range(k):
        agg_ids = [f"agg{pod}_{a}" for a in range(half)]
        edge_ids = [f"edge{pod}_{e}" for e in range(half)]
        nodes.extend(Node(aid, capacity=transit_capacity) for aid in agg_ids)
        nodes.extend(Node(eid, capacity=edge_capacity) for eid in edge_ids)
        for c, cid in enumerate(core_ids):
            aid = agg_ids[c // half]
            links.append(
                Link(f"{cid}->{aid}", tail=cid, head=aid, capacity=link_capacity)
            )
        for aid in agg_ids:
            for eid in edge_ids:
                links.append(
                    Link(f"{aid}->{eid}", tail=aid, head=eid, capacity=link_capacity)
                )
    return Overlay(nodes, links)


def line_overlay(
    node_ids: Sequence[NodeId],
    node_capacity: float,
    link_capacity: float = math.inf,
) -> Overlay:
    """A unidirectional chain ``n0 -> n1 -> ... -> nk``.

    Useful for link-bottleneck experiments: every downstream flow shares the
    upstream links.
    """
    if len(node_ids) < 2:
        raise ValueError("a line overlay needs at least two nodes")
    nodes = [Node(node_id, capacity=node_capacity) for node_id in node_ids]
    links = [
        Link(f"{tail}->{head}", tail=tail, head=head, capacity=link_capacity)
        for tail, head in zip(node_ids, node_ids[1:])
    ]
    return Overlay(nodes, links)
