"""JSON (de)serialization for problems and allocations.

A deployment needs to ship workload descriptions between tools (workload
generators, the optimizer, dashboards) and to persist enacted allocations.
The format is a plain JSON object, versioned, with utilities encoded
through a small type registry.

Round-trip guarantee: ``problem_from_dict(problem_to_dict(p))`` equals
``p`` (verified by tests for every entity and cost entry).
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.model.allocation import Allocation
from repro.model.costs import CostModel
from repro.model.entities import ConsumerClass, Flow, Link, Node, Route
from repro.model.problem import Problem, build_problem
from repro.utility.base import UtilityFunction
from repro.utility.functions import (
    ExponentialSaturationUtility,
    LogUtility,
    PowerUtility,
    ScaledUtility,
)

FORMAT_VERSION = 1

#: Sentinel for infinite capacities in JSON (JSON has no Infinity).
_INF = "inf"


class SerializationError(ValueError):
    """Raised on malformed or unsupported serialized data."""


def _encode_capacity(value: float) -> float | str:
    return _INF if math.isinf(value) else value


def _decode_capacity(value: float | str) -> float:
    if value == _INF:
        return math.inf
    if isinstance(value, (int, float)):
        return float(value)
    raise SerializationError(f"bad capacity value {value!r}")


# -- utilities ---------------------------------------------------------------


def utility_to_dict(utility: UtilityFunction) -> dict[str, Any]:
    if isinstance(utility, LogUtility):
        return {"type": "log", "scale": utility.scale, "offset": utility.offset}
    if isinstance(utility, PowerUtility):
        return {"type": "power", "scale": utility.scale, "exponent": utility.exponent}
    if isinstance(utility, ExponentialSaturationUtility):
        return {"type": "saturation", "scale": utility.scale, "knee": utility.knee}
    if isinstance(utility, ScaledUtility):
        return {
            "type": "scaled",
            "factor": utility.factor,
            "base": utility_to_dict(utility.base),
        }
    raise SerializationError(
        f"no serializer for utility type {type(utility).__name__}"
    )


def utility_from_dict(data: dict[str, Any]) -> UtilityFunction:
    try:
        kind = data["type"]
    except (KeyError, TypeError):
        raise SerializationError(f"bad utility record {data!r}") from None
    if kind == "log":
        return LogUtility(scale=data["scale"], offset=data["offset"])
    if kind == "power":
        return PowerUtility(scale=data["scale"], exponent=data["exponent"])
    if kind == "saturation":
        return ExponentialSaturationUtility(scale=data["scale"], knee=data["knee"])
    if kind == "scaled":
        return ScaledUtility(
            base=utility_from_dict(data["base"]), factor=data["factor"]
        )
    raise SerializationError(f"unknown utility type {kind!r}")


# -- problems ------------------------------------------------------------------


def problem_to_dict(problem: Problem) -> dict[str, Any]:
    """Encode a problem as a JSON-serializable dict."""
    return {
        "version": FORMAT_VERSION,
        "nodes": [
            {"id": node.node_id, "capacity": _encode_capacity(node.capacity)}
            for node in problem.nodes.values()
        ],
        "links": [
            {
                "id": link.link_id,
                "tail": link.tail,
                "head": link.head,
                "capacity": _encode_capacity(link.capacity),
            }
            for link in problem.links.values()
        ],
        "flows": [
            {
                "id": flow.flow_id,
                "source": flow.source,
                "rate_min": flow.rate_min,
                "rate_max": _encode_capacity(flow.rate_max),
            }
            for flow in problem.flows.values()
        ],
        "classes": [
            {
                "id": cls.class_id,
                "flow": cls.flow_id,
                "node": cls.node,
                "max_consumers": cls.max_consumers,
                "utility": utility_to_dict(cls.utility),
            }
            for cls in problem.classes.values()
        ],
        "routes": {
            flow_id: {"nodes": list(route.nodes), "links": list(route.links)}
            for flow_id, route in problem.routes.items()
        },
        "costs": {
            "link": [
                [link_id, flow_id, cost]
                for (link_id, flow_id), cost in problem.costs.link_cost.items()
            ],
            "flow_node": [
                [node_id, flow_id, cost]
                for (node_id, flow_id), cost in problem.costs.flow_node_cost.items()
            ],
            "consumer": [
                [node_id, class_id, cost]
                for (node_id, class_id), cost in problem.costs.consumer_cost.items()
            ],
        },
    }


def problem_from_dict(data: dict[str, Any]) -> Problem:
    """Decode a problem from :func:`problem_to_dict`'s format (validated)."""
    try:
        version = data["version"]
    except (KeyError, TypeError):
        raise SerializationError("missing format version") from None
    if version != FORMAT_VERSION:
        raise SerializationError(f"unsupported format version {version!r}")
    try:
        nodes = [
            Node(rec["id"], capacity=_decode_capacity(rec["capacity"]))
            for rec in data["nodes"]
        ]
        links = [
            Link(
                rec["id"],
                tail=rec["tail"],
                head=rec["head"],
                capacity=_decode_capacity(rec["capacity"]),
            )
            for rec in data["links"]
        ]
        flows = [
            Flow(
                rec["id"],
                source=rec["source"],
                rate_min=rec["rate_min"],
                rate_max=_decode_capacity(rec["rate_max"]),
            )
            for rec in data["flows"]
        ]
        classes = [
            ConsumerClass(
                rec["id"],
                flow_id=rec["flow"],
                node=rec["node"],
                max_consumers=rec["max_consumers"],
                utility=utility_from_dict(rec["utility"]),
            )
            for rec in data["classes"]
        ]
        routes = {
            flow_id: Route(nodes=tuple(rec["nodes"]), links=tuple(rec["links"]))
            for flow_id, rec in data["routes"].items()
        }
        costs = CostModel(
            link_cost={
                (link_id, flow_id): cost
                for link_id, flow_id, cost in data["costs"]["link"]
            },
            flow_node_cost={
                (node_id, flow_id): cost
                for node_id, flow_id, cost in data["costs"]["flow_node"]
            },
            consumer_cost={
                (node_id, class_id): cost
                for node_id, class_id, cost in data["costs"]["consumer"]
            },
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed problem record: {exc}") from exc
    return build_problem(nodes, links, flows, classes, routes, costs)


def problem_to_json(problem: Problem, indent: int | None = 2) -> str:
    return json.dumps(problem_to_dict(problem), indent=indent, sort_keys=True)


def problem_from_json(text: str) -> Problem:
    return problem_from_dict(json.loads(text))


# -- allocations --------------------------------------------------------------


def allocation_to_dict(allocation: Allocation) -> dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "rates": dict(allocation.rates),
        "populations": dict(allocation.populations),
    }


def allocation_from_dict(data: dict[str, Any]) -> Allocation:
    try:
        if data["version"] != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported format version {data['version']!r}"
            )
        rates = {str(k): float(v) for k, v in data["rates"].items()}
        populations = {str(k): int(v) for k, v in data["populations"].items()}
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed allocation record: {exc}") from exc
    return Allocation(rates=rates, populations=populations)


def allocation_to_json(allocation: Allocation, indent: int | None = 2) -> str:
    return json.dumps(allocation_to_dict(allocation), indent=indent, sort_keys=True)


def allocation_from_json(text: str) -> Allocation:
    return allocation_from_dict(json.loads(text))
