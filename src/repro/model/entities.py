"""Core entities of the system model (section 2.1).

An overlay of :class:`Node` objects connected by unidirectional
:class:`Link` objects carries :class:`Flow` message streams from producers to
:class:`ConsumerClass` populations.  All entities are immutable value
objects; mutable optimization state lives in
:class:`repro.model.allocation.Allocation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.utility.base import UtilityFunction

NodeId = str
LinkId = str
FlowId = str
ClassId = str


def _require_finite_positive(value: float, name: str, *, allow_inf: bool = False) -> None:
    if math.isnan(value) or value <= 0.0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    if math.isinf(value) and not allow_inf:
        raise ValueError(f"{name} must be finite, got infinity")


@dataclass(frozen=True)
class Node:
    """A broker node with a CPU capacity ``c_b`` (resource units/second).

    Capacity may be ``math.inf`` for nodes that are never a bottleneck
    (e.g. pure producer-hosting nodes in the paper's workloads, whose
    resources are not modeled).
    """

    node_id: NodeId
    capacity: float = math.inf

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValueError("node_id must be non-empty")
        _require_finite_positive(self.capacity, "capacity", allow_inf=True)


@dataclass(frozen=True)
class Link:
    """A unidirectional link with bandwidth capacity ``c_l``."""

    link_id: LinkId
    tail: NodeId
    head: NodeId
    capacity: float = math.inf

    def __post_init__(self) -> None:
        if not self.link_id:
            raise ValueError("link_id must be non-empty")
        if self.tail == self.head:
            raise ValueError(f"link {self.link_id} is a self-loop at {self.tail}")
        _require_finite_positive(self.capacity, "capacity", allow_inf=True)


@dataclass(frozen=True)
class Flow:
    """A message flow injected at ``source`` with rate bounds (eq. 3).

    The rate ``r_i`` refers to the injection rate at the source node; the
    resource-cost coefficients compensate for in-network rate changes
    (section 2.4, point 1).
    """

    flow_id: FlowId
    source: NodeId
    rate_min: float = 0.0
    rate_max: float = math.inf

    def __post_init__(self) -> None:
        if not self.flow_id:
            raise ValueError("flow_id must be non-empty")
        if math.isnan(self.rate_min) or self.rate_min < 0.0:
            raise ValueError(f"rate_min must be non-negative, got {self.rate_min}")
        if math.isnan(self.rate_max) or self.rate_max < self.rate_min:
            raise ValueError(
                f"rate_max ({self.rate_max}) must be >= rate_min ({self.rate_min})"
            )

    def clamp(self, rate: float) -> float:
        """Project a rate onto ``[rate_min, rate_max]``."""
        return min(max(rate, self.rate_min), self.rate_max)


@dataclass(frozen=True)
class ConsumerClass:
    """A population of identical consumers of one flow at one node.

    ``max_consumers`` is ``n_j^max`` (eq. 2) — the number of consumers
    currently connected (admitted or not).  All members share ``utility``;
    a class spanning several nodes is modeled as one class per node with
    identical utilities (section 2.2).
    """

    class_id: ClassId
    flow_id: FlowId
    node: NodeId
    max_consumers: int
    utility: UtilityFunction

    def __post_init__(self) -> None:
        if not self.class_id:
            raise ValueError("class_id must be non-empty")
        if self.max_consumers < 0:
            raise ValueError(
                f"max_consumers must be non-negative, got {self.max_consumers}"
            )


@dataclass(frozen=True)
class Route:
    """The dissemination path of a flow: the links it traverses and the
    nodes it reaches (including the source node first).

    The routing substrate (:mod:`repro.model.topology`) builds routes as
    trees over the overlay; for the paper's workloads, where links are never
    bottlenecks, routes may list consumer nodes only.
    """

    nodes: tuple[NodeId, ...]
    links: tuple[LinkId, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a route must reach at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"route visits a node twice: {self.nodes}")
        if len(set(self.links)) != len(self.links):
            raise ValueError(f"route uses a link twice: {self.links}")
