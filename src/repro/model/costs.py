"""The linear resource-cost model (section 2.3).

Three coefficient families translate flow rates into resource consumption:

* ``L[l, i]`` — link cost: resource used on link ``l`` per unit rate of
  flow ``i`` (0 if the flow does not traverse the link);
* ``F[b, i]`` — flow-node cost: resource used at node ``b`` per unit rate of
  flow ``i``, independent of consumers (0 if the flow does not reach ``b``);
* ``G[b, j]`` — consumer-node cost: resource used at node ``b`` per admitted
  consumer of class ``j``, per unit rate of the class's flow.

The linearity of this model was validated on the Gryphon pub/sub system
(paper section 2.3, reference [3]); our event simulator
(:mod:`repro.events`) re-derives it by metering a discrete-event broker.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.model.entities import ClassId, FlowId, LinkId, NodeId


def _check_coefficient(value: float, name: str) -> None:
    if math.isnan(value) or math.isinf(value) or value < 0.0:
        raise ValueError(f"{name} must be finite and non-negative, got {value!r}")


@dataclass(frozen=True)
class CostModel:
    """Sparse storage of the three coefficient families.

    Missing entries are zero, matching the paper's convention that ``L`` and
    ``F`` vanish where a flow is absent.  The Gryphon-measured defaults used
    throughout the evaluation are ``F = 3`` and ``G = 19`` (section 4.1);
    build those with :func:`uniform_costs`.
    """

    link_cost: Mapping[tuple[LinkId, FlowId], float] = field(default_factory=dict)
    flow_node_cost: Mapping[tuple[NodeId, FlowId], float] = field(default_factory=dict)
    consumer_cost: Mapping[tuple[NodeId, ClassId], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key, value in self.link_cost.items():
            _check_coefficient(value, f"link_cost{key}")
        for key, value in self.flow_node_cost.items():
            _check_coefficient(value, f"flow_node_cost{key}")
        for key, value in self.consumer_cost.items():
            _check_coefficient(value, f"consumer_cost{key}")

    def link(self, link_id: LinkId, flow_id: FlowId) -> float:
        """``L_{l,i}``."""
        return self.link_cost.get((link_id, flow_id), 0.0)

    def flow_node(self, node_id: NodeId, flow_id: FlowId) -> float:
        """``F_{b,i}``."""
        return self.flow_node_cost.get((node_id, flow_id), 0.0)

    def consumer(self, node_id: NodeId, class_id: ClassId) -> float:
        """``G_{b,j}``."""
        return self.consumer_cost.get((node_id, class_id), 0.0)

    def pruned(
        self,
        dropped_flow_nodes: set[tuple[NodeId, FlowId]],
        dropped_flow_links: set[tuple[LinkId, FlowId]],
    ) -> "CostModel":
        """Return a copy with the given ``F`` and ``L`` entries zeroed.

        This implements the coefficient surgery of the two-stage
        approximation (section 2.4, point 2): after a first optimization,
        branches where no consumer was admitted are pruned by zeroing the
        corresponding coefficients.
        """
        return CostModel(
            link_cost={
                key: value
                for key, value in self.link_cost.items()
                if key not in dropped_flow_links
            },
            flow_node_cost={
                key: value
                for key, value in self.flow_node_cost.items()
                if key not in dropped_flow_nodes
            },
            consumer_cost=dict(self.consumer_cost),
        )


#: Gryphon-measured defaults (paper section 4.1).
GRYPHON_FLOW_NODE_COST = 3.0
GRYPHON_CONSUMER_COST = 19.0
GRYPHON_NODE_CAPACITY = 9.0e5


class CostModelBuilder:
    """Incremental builder for :class:`CostModel`.

    Workload generators add coefficients as they route flows; calling
    :meth:`build` freezes the result.
    """

    def __init__(self) -> None:
        self._link: dict[tuple[LinkId, FlowId], float] = {}
        self._flow_node: dict[tuple[NodeId, FlowId], float] = {}
        self._consumer: dict[tuple[NodeId, ClassId], float] = {}

    def set_link(self, link_id: LinkId, flow_id: FlowId, cost: float) -> "CostModelBuilder":
        _check_coefficient(cost, "link cost")
        self._link[(link_id, flow_id)] = cost
        return self

    def set_flow_node(
        self, node_id: NodeId, flow_id: FlowId, cost: float
    ) -> "CostModelBuilder":
        _check_coefficient(cost, "flow-node cost")
        self._flow_node[(node_id, flow_id)] = cost
        return self

    def set_consumer(
        self, node_id: NodeId, class_id: ClassId, cost: float
    ) -> "CostModelBuilder":
        _check_coefficient(cost, "consumer cost")
        self._consumer[(node_id, class_id)] = cost
        return self

    def build(self) -> CostModel:
        return CostModel(
            link_cost=dict(self._link),
            flow_node_cost=dict(self._flow_node),
            consumer_cost=dict(self._consumer),
        )
