"""Enactment policies: when computed allocations are applied to the system.

Section 2.1: "making very frequent admission control decisions may be
disruptive to consumers using the system, so the decisions may not be
enacted until their values are sufficiently different from the previous
enacted values, or may be enacted periodically (say once every few
minutes)".  LRGP iterates continuously; an :class:`Enactor` sits between the
optimizer and the system and decides which computed allocations actually
take effect, tracking the disruption (consumer churn) each enactment causes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.model.allocation import Allocation


class EnactmentPolicy(ABC):
    """Decides whether a newly computed allocation should be enacted."""

    @abstractmethod
    def should_enact(
        self,
        iteration: int,
        computed: Allocation,
        enacted: Allocation | None,
    ) -> bool:
        """Return True when ``computed`` should replace ``enacted``."""


@dataclass(frozen=True)
class PeriodicEnactment(EnactmentPolicy):
    """Enact every ``period`` iterations (the "once every few minutes"
    option)."""

    period: int = 10

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be at least 1, got {self.period}")

    def should_enact(
        self, iteration: int, computed: Allocation, enacted: Allocation | None
    ) -> bool:
        del computed
        if enacted is None:
            return True
        return iteration % self.period == 0


@dataclass(frozen=True)
class ThresholdEnactment(EnactmentPolicy):
    """Enact when values are "sufficiently different" from the enacted ones.

    Triggers when any flow rate changed by more than ``rate_rel_change``
    (relative) or any class population changed by more than
    ``population_abs_change`` consumers.
    """

    rate_rel_change: float = 0.05
    population_abs_change: int = 10

    def __post_init__(self) -> None:
        if self.rate_rel_change < 0.0:
            raise ValueError("rate_rel_change must be non-negative")
        if self.population_abs_change < 0:
            raise ValueError("population_abs_change must be non-negative")

    def should_enact(
        self, iteration: int, computed: Allocation, enacted: Allocation | None
    ) -> bool:
        del iteration
        if enacted is None:
            return True
        for flow_id, rate in computed.rates.items():
            old = enacted.rates.get(flow_id, 0.0)
            scale = max(abs(old), 1e-12)
            if abs(rate - old) / scale > self.rate_rel_change:
                return True
        for class_id, population in computed.populations.items():
            old = enacted.populations.get(class_id, 0)
            if abs(population - old) > self.population_abs_change:
                return True
        # A flow or class that disappeared entirely is also a change.
        if set(enacted.rates) - set(computed.rates):
            return True
        return bool(set(enacted.populations) - set(computed.populations))


def consumer_churn(previous: Allocation | None, current: Allocation) -> int:
    """Total admissions plus evictions an enactment causes:
    ``sum_j |n_j - n_j_old|`` (classes absent on one side count in full)."""
    if previous is None:
        return sum(current.populations.values())
    churn = 0
    class_ids = set(previous.populations) | set(current.populations)
    for class_id in class_ids:
        churn += abs(
            current.populations.get(class_id, 0) - previous.populations.get(class_id, 0)
        )
    return churn


@dataclass
class Enactor:
    """Applies an :class:`EnactmentPolicy` to a stream of computed
    allocations and keeps disruption statistics.

    Feed it one computed allocation per LRGP iteration via :meth:`offer`;
    read :attr:`enacted` for the allocation the system is actually running.
    """

    policy: EnactmentPolicy
    enacted: Allocation | None = None
    enactments: int = 0
    total_churn: int = 0
    offers: int = 0
    _history: list[tuple[int, int]] = field(default_factory=list)

    def offer(self, iteration: int, computed: Allocation) -> bool:
        """Offer a computed allocation; returns True if it was enacted."""
        self.offers += 1
        if not self.policy.should_enact(iteration, computed, self.enacted):
            return False
        churn = consumer_churn(self.enacted, computed)
        self.enacted = computed.copy()
        self.enactments += 1
        self.total_churn += churn
        self._history.append((iteration, churn))
        return True

    @property
    def history(self) -> list[tuple[int, int]]:
        """(iteration, churn) for each enactment, in order."""
        return list(self._history)
