"""Multirate LRGP — the paper's deferred future work (section 5).

The paper's model delivers every flow at one rate everywhere.  Multicast
flow-control literature ([15], [29] in the paper) allows *multirate*
delivery: downstream nodes thin the stream, so different receivers see
different rates.  Section 5 notes that doing this with node resource
constraints "would become harder" and defers it; this module supplies that
extension on top of the LRGP machinery.

Model extension
---------------
Each consumer-hosting node ``b`` may thin flow ``i`` to a local delivery
rate ``r_{b,i} <= r_i``.  Consumers at ``b`` draw utility from the local
rate, and the node constraint (eq. 5) is evaluated at the local rate:

    sum_i ( F_{b,i} r_{b,i} + sum_j G_{b,j} n_j r_{b,i} ) <= c_b

Links upstream of ``b`` still carry the source rate (thinning happens at
the delivery node).  Because every feasible single-rate allocation is a
feasible multirate allocation (set all local rates to the source rate),
the multirate optimum weakly dominates the single-rate optimum.

Algorithm
---------
One extra message per iteration closes the loop:

1. **Node demand**: each node computes, per flow, its locally optimal
   delivery rate — exactly the Lagrangian subproblem (eq. 7) with the
   node's *own* price: ``d_{b,i} = argmax_r sum_j n_j U_j(r) - p_b
   (F_{b,i} + sum_j G_{b,j} n_j) r`` — and sends it upstream.
2. **Source rate**: the source needs ``r_i`` only as a *cap*; nodes thin
   down to their demands.  With link prices ``PL_i`` the source maximizes
   ``sum_b W_b(min(r, d_b)) - r * PL_i`` where ``W_b`` is node ``b``'s
   surplus — a piecewise-concave function whose maximum lies at one of the
   demands (or a bound), so the source evaluates those candidates.
3. **Thinning + greedy populations**: node ``b`` serves flow ``i`` at
   ``min(r_i, d_{b,i})`` and runs the usual greedy consumer allocation and
   price update (eq. 12) at its local rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.consumer_allocation import allocate_consumers
from repro.core.gamma import AdaptiveGamma, GammaSchedule
from repro.core.prices import LinkPriceController, NodePriceController
from repro.model.allocation import Allocation
from repro.model.entities import ClassId, FlowId, LinkId, NodeId
from repro.model.problem import Problem
from repro.utility.calculus import solve_rate, weighted_value


@dataclass(frozen=True)
class MultirateConfig:
    """Knobs for the multirate driver (mirrors :class:`LRGPConfig`)."""

    node_gamma: GammaSchedule = field(default_factory=AdaptiveGamma)
    link_gamma: float = 1e-4


@dataclass
class MultirateAllocation:
    """Source rates, per-node delivery rates, and populations."""

    source_rates: dict[FlowId, float]
    local_rates: dict[tuple[NodeId, FlowId], float]
    populations: dict[ClassId, int]

    def to_single_rate(self) -> Allocation:
        """Project onto the single-rate model (source rates only) — used to
        compare against plain LRGP allocations."""
        return Allocation(
            rates=dict(self.source_rates), populations=dict(self.populations)
        )


def multirate_total_utility(
    problem: Problem, allocation: MultirateAllocation
) -> float:
    """Objective under local delivery rates:
    ``sum_j n_j U_j(r_{node(j), flow(j)})``."""
    utility = 0.0
    for class_id, cls in problem.classes.items():
        population = allocation.populations.get(class_id, 0)
        if population > 0:
            local_rate = allocation.local_rates.get(
                (cls.node, cls.flow_id), allocation.source_rates.get(cls.flow_id, 0.0)
            )
            utility += population * cls.utility.value(local_rate)
    return utility


def node_demand(
    problem: Problem,
    node_id: NodeId,
    flow_id: FlowId,
    populations: dict[ClassId, int],
    node_price: float,
) -> float:
    """The node's locally optimal delivery rate for a flow: eq. 7 solved
    with the node's own price (step 1 of the multirate algorithm)."""
    flow = problem.flows[flow_id]
    class_ids = problem.classes_of_flow_at_node(flow_id, node_id)
    terms = [
        (float(populations.get(class_id, 0)), problem.classes[class_id].utility)
        for class_id in class_ids
    ]
    coefficient = problem.costs.flow_node(node_id, flow_id)
    for class_id in class_ids:
        coefficient += problem.costs.consumer(node_id, class_id) * populations.get(
            class_id, 0
        )
    return solve_rate(terms, node_price * coefficient, flow.rate_min, flow.rate_max)


def node_surplus(
    problem: Problem,
    node_id: NodeId,
    flow_id: FlowId,
    populations: dict[ClassId, int],
    node_price: float,
    rate: float,
) -> float:
    """``W_b(rate)``: the node's priced surplus from receiving the flow at
    ``rate`` — utility of its admitted consumers minus the resource the
    delivery burns, valued at the node price."""
    class_ids = problem.classes_of_flow_at_node(flow_id, node_id)
    terms = [
        (float(populations.get(class_id, 0)), problem.classes[class_id].utility)
        for class_id in class_ids
    ]
    coefficient = problem.costs.flow_node(node_id, flow_id)
    for class_id in class_ids:
        coefficient += problem.costs.consumer(node_id, class_id) * populations.get(
            class_id, 0
        )
    return weighted_value(terms, rate) - node_price * coefficient * rate


def source_cap(
    problem: Problem,
    flow_id: FlowId,
    demands: dict[NodeId, float],
    populations: dict[ClassId, int],
    node_prices: dict[NodeId, float],
    link_price: float,
) -> float:
    """Step 2: the source rate cap maximizing total priced surplus
    ``Σ_b W_b(min(r, d_b)) − r · PL_i``.

    The objective is piecewise concave with breakpoints at the demands, so
    the maximum lies at a demand or a rate bound; all candidates are
    evaluated.
    """
    flow = problem.flows[flow_id]
    if not demands:
        return flow.rate_min if link_price > 0.0 else flow.rate_max
    candidates = sorted({flow.rate_min, flow.rate_max, *demands.values()})
    best_rate = flow.rate_min
    best_value = float("-inf")
    for rate in candidates:
        value = sum(
            node_surplus(
                problem,
                node_id,
                flow_id,
                populations,
                node_prices.get(node_id, 0.0),
                min(rate, demand),
            )
            for node_id, demand in demands.items()
        ) - rate * link_price
        if value > best_value:
            best_value = value
            best_rate = rate
    return best_rate


def multirate_node_usage(
    problem: Problem, allocation: MultirateAllocation, node_id: NodeId
) -> float:
    """Eq. 5's LHS evaluated at the node's local delivery rates."""
    usage = 0.0
    for flow_id in problem.flows_at_node(node_id):
        rate = allocation.local_rates.get(
            (node_id, flow_id), allocation.source_rates.get(flow_id, 0.0)
        )
        usage += problem.costs.flow_node(node_id, flow_id) * rate
        for class_id in problem.classes_of_flow_at_node(flow_id, node_id):
            usage += (
                problem.costs.consumer(node_id, class_id)
                * allocation.populations.get(class_id, 0)
                * rate
            )
    return usage


class MultirateLRGP:
    """LRGP with per-node flow thinning."""

    def __init__(self, problem: Problem, config: MultirateConfig | None = None) -> None:
        self._problem = problem
        self._config = config or MultirateConfig()
        self._populations: dict[ClassId, int] = {c: 0 for c in problem.classes}
        self._source_rates: dict[FlowId, float] = {
            flow_id: flow.rate_min for flow_id, flow in problem.flows.items()
        }
        self._local_rates: dict[tuple[NodeId, FlowId], float] = {}
        self._node_controllers = {
            node_id: NodePriceController(
                capacity=problem.nodes[node_id].capacity,
                gamma_under=self._config.node_gamma.clone(),
            )
            for node_id in problem.consumer_nodes()
        }
        self._link_controllers: dict[LinkId, LinkPriceController] = {
            link_id: LinkPriceController(
                capacity=problem.links[link_id].capacity, gamma=self._config.link_gamma
            )
            for link_id in problem.bottleneck_links()
        }
        self.utilities: list[float] = []

    # -- accessors ----------------------------------------------------------

    @property
    def problem(self) -> Problem:
        return self._problem

    def allocation(self) -> MultirateAllocation:
        return MultirateAllocation(
            source_rates=dict(self._source_rates),
            local_rates=dict(self._local_rates),
            populations=dict(self._populations),
        )

    def node_prices(self) -> dict[NodeId, float]:
        return {n: c.price for n, c in self._node_controllers.items()}

    # -- the loop ---------------------------------------------------------------

    def step(self) -> float:
        """One multirate iteration; returns the resulting utility."""
        problem = self._problem
        node_prices = self.node_prices()

        # 1. Node demands per (consumer node, flow reaching it).
        demands: dict[FlowId, dict[NodeId, float]] = {}
        for flow_id in problem.flows:
            demands[flow_id] = {
                node_id: node_demand(
                    problem, node_id, flow_id, self._populations,
                    node_prices[node_id],
                )
                for node_id in problem.route(flow_id).nodes
                if node_id in self._node_controllers
                and problem.classes_of_flow_at_node(flow_id, node_id)
            }

        # 2. Source caps.
        for flow_id in problem.flows:
            link_price = sum(
                problem.costs.link(link_id, flow_id) * controller.price
                for link_id, controller in self._link_controllers.items()
                if flow_id in problem.flows_on_link(link_id)
            )
            self._source_rates[flow_id] = source_cap(
                problem, flow_id, demands[flow_id], self._populations,
                node_prices, link_price,
            )

        # 3. Thinned local rates + greedy populations + node prices.
        for node_id in problem.consumer_nodes():
            local = {}
            for flow_id in problem.flows_at_node(node_id):
                demand = demands.get(flow_id, {}).get(node_id)
                cap = self._source_rates[flow_id]
                local[flow_id] = cap if demand is None else min(cap, demand)
                self._local_rates[(node_id, flow_id)] = local[flow_id]
            result = allocate_consumers(problem, node_id, local)
            self._populations.update(result.populations)
            self._node_controllers[node_id].update(
                benefit_cost=result.best_unsatisfied_ratio, used=result.used
            )

        # 4. Link prices on the source rates.
        for link_id, controller in self._link_controllers.items():
            usage = sum(
                problem.costs.link(link_id, flow_id) * self._source_rates[flow_id]
                for flow_id in problem.flows_on_link(link_id)
            )
            controller.update(usage)

        utility = multirate_total_utility(problem, self.allocation())
        self.utilities.append(utility)
        return utility

    def run(self, iterations: int) -> list[float]:
        if iterations < 0:
            raise ValueError(f"iterations must be non-negative, got {iterations}")
        return [self.step() for _ in range(iterations)]
