"""Greedy consumer allocation (section 3.2) and node benefit/cost ratios.

Each consumer-hosting node, given the current flow rates, fills its capacity
with consumers in decreasing order of benefit/cost ratio

    BC_j = U_j(r_i) / (G_{b,j} r_i)          (eq. 10, i = flowMap(j))

The ratio is constant in ``n_j`` (both numerator and denominator are linear
in the population), so the greedy "+1 at a time" procedure of the paper is
equivalent to filling classes to saturation in sorted order — which is what
we implement.

The allocation also produces ``BC(b,t)`` (eq. 11): the best ratio among
classes that remain below ``n^max``, which the node-price controller tracks
(eq. 12) to price the marginal value of node capacity.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.model.entities import ClassId, FlowId, NodeId
from repro.model.problem import Problem

if TYPE_CHECKING:  # optional telemetry; obs never imports core
    from repro.obs.registry import MetricsRegistry

#: Slack added before flooring a fractional admission count, to avoid
#: dropping a consumer to floating-point noise.
_FLOOR_SLACK = 1e-9


def benefit_cost_ratio(
    problem: Problem, node_id: NodeId, class_id: ClassId, rate: float
) -> float:
    """``BC_j`` (eq. 10) for a class at its hosting node.

    Degenerate cases: when the per-consumer cost ``G_{b,j} * r`` is zero,
    admission is free — the ratio is ``+inf`` when the consumer contributes
    positive utility and ``0`` otherwise.
    """
    cls = problem.classes[class_id]
    benefit = cls.utility.value(rate)
    unit_cost = problem.costs.consumer(node_id, class_id) * rate
    if unit_cost <= 0.0:
        return math.inf if benefit > 0.0 else 0.0
    return benefit / unit_cost


@dataclass(frozen=True)
class NodeAllocation:
    """Result of one greedy consumer allocation at one node."""

    node_id: NodeId
    populations: dict[ClassId, int]
    #: ``used_b(t)``: flow-node cost plus admitted-consumer cost (eq. 5 LHS).
    used: float
    #: ``BC(b,t)`` (eq. 11); 0 when every class reached ``n^max``.
    best_unsatisfied_ratio: float
    #: The per-class ``BC_j`` values used for the greedy ordering.
    ratios: dict[ClassId, float]


def allocate_consumers(
    problem: Problem,
    node_id: NodeId,
    rates: Mapping[FlowId, float],
) -> NodeAllocation:
    """Algorithm 2, step 2: greedily admit consumers at ``node_id``.

    The budget available for consumers is the node capacity minus the
    consumer-independent flow cost ``sum_i F_{b,i} r_i``.  If the flow cost
    alone exceeds capacity, no consumer is admitted and the reported usage
    exceeds capacity, which drives the node price into the violation branch
    of eq. 12.
    """
    capacity = problem.nodes[node_id].capacity
    flow_cost = sum(
        problem.costs.flow_node(node_id, flow_id) * rates.get(flow_id, 0.0)
        for flow_id in problem.flows_at_node(node_id)
    )

    class_ids = problem.classes_at_node(node_id)
    ratios = {
        class_id: benefit_cost_ratio(
            problem,
            node_id,
            class_id,
            rates.get(problem.flow_of_class(class_id), 0.0),
        )
        for class_id in class_ids
    }
    # Decreasing ratio; ties broken by class id for determinism.
    order = sorted(class_ids, key=lambda c: (-ratios[c], c))

    populations: dict[ClassId, int] = {}
    budget = capacity - flow_cost
    consumer_cost = 0.0
    for class_id in order:
        cls = problem.classes[class_id]
        rate = rates.get(cls.flow_id, 0.0)
        unit_cost = problem.costs.consumer(node_id, class_id) * rate
        if unit_cost <= 0.0:
            # Free admission: take everyone (they consume nothing).
            populations[class_id] = cls.max_consumers
            continue
        if budget <= 0.0:
            populations[class_id] = 0
            continue
        affordable = int(budget / unit_cost + _FLOOR_SLACK)
        admitted = min(cls.max_consumers, affordable)
        populations[class_id] = admitted
        cost = admitted * unit_cost
        budget -= cost
        consumer_cost += cost

    unsatisfied = [
        ratios[class_id]
        for class_id in class_ids
        if populations[class_id] < problem.classes[class_id].max_consumers
        and math.isfinite(ratios[class_id])
    ]
    best_ratio = max(unsatisfied, default=0.0)

    return NodeAllocation(
        node_id=node_id,
        populations=populations,
        used=flow_cost + consumer_cost,
        best_unsatisfied_ratio=best_ratio,
        ratios=ratios,
    )


def allocate_all_consumers(
    problem: Problem,
    rates: Mapping[FlowId, float],
    registry: "MetricsRegistry | None" = None,
) -> dict[NodeId, NodeAllocation]:
    """Run the greedy allocation at every consumer-hosting node.

    Each node's decision is purely local (this is the point of the
    greedy-populations half of LRGP); this helper is the synchronous
    composition used by the reference driver.  Pass a
    :class:`~repro.obs.MetricsRegistry` to time the batch
    (``admission.allocate_all``) and count admitted consumers
    (``admission.admitted``).
    """

    def admit_all() -> dict[NodeId, NodeAllocation]:
        return {
            node_id: allocate_consumers(problem, node_id, rates)
            for node_id in problem.consumer_nodes()
        }

    if registry is None:
        return admit_all()
    with registry.timer("admission.allocate_all"):
        allocations = admit_all()
    admitted = sum(
        sum(result.populations.values()) for result in allocations.values()
    )
    registry.counter("admission.admitted").inc(admitted)
    return allocations
