"""Convergence detection for LRGP trajectories.

The paper's criterion (section 4.3): convergence has occurred when the
amplitude of the oscillations in utility becomes less than 0.1% of the value
of the utility.  We implement this as a sliding-window test: over the last
``window`` iterations, ``max - min <= rel_amplitude * mean``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.utility.stability import (
    CONVERGENCE_REL_AMPLITUDE,
    CONVERGENCE_WINDOW,
)
from repro.utility.tolerance import is_zero

#: The paper's 0.1% amplitude threshold, shared with the event-stream
#: diagnostics via :mod:`repro.utility.stability`.
DEFAULT_REL_AMPLITUDE = CONVERGENCE_REL_AMPLITUDE
DEFAULT_WINDOW = CONVERGENCE_WINDOW


@dataclass(frozen=True)
class ConvergenceCriterion:
    """Sliding-window relative-amplitude test."""

    window: int = DEFAULT_WINDOW
    rel_amplitude: float = DEFAULT_REL_AMPLITUDE

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError(f"window must be at least 2, got {self.window}")
        if self.rel_amplitude <= 0.0:
            raise ValueError(
                f"rel_amplitude must be positive, got {self.rel_amplitude}"
            )

    def window_converged(self, values: Sequence[float]) -> bool:
        """Test the criterion on exactly one window of values."""
        if len(values) < self.window:
            return False
        tail = values[-self.window :]
        low = min(tail)
        high = max(tail)
        mean = sum(tail) / len(tail)
        if is_zero(mean):
            return is_zero(high - low)
        return (high - low) <= self.rel_amplitude * abs(mean)

    def converged_at(self, values: Sequence[float]) -> int | None:
        """First iteration index (0-based) at which the trailing window
        satisfies the criterion, or ``None``.

        This is the paper's "iterations until convergence": the returned
        index is the iteration at which the system is first observed stable.
        """
        for end in range(self.window, len(values) + 1):
            if self.window_converged(values[:end]):
                return end - 1
        return None


def iterations_until_convergence(
    utilities: Sequence[float],
    window: int = DEFAULT_WINDOW,
    rel_amplitude: float = DEFAULT_REL_AMPLITUDE,
) -> int | None:
    """Convenience wrapper: 1-based iteration count until convergence.

    Returns ``None`` when the trajectory never stabilizes.  The count is the
    number of LRGP iterations executed up to and including the first stable
    observation, matching how Table 2 reports "iterations until
    convergence".
    """
    index = ConvergenceCriterion(window, rel_amplitude).converged_at(utilities)
    return None if index is None else index + 1


def oscillation_amplitude(values: Sequence[float], window: int = DEFAULT_WINDOW) -> float:
    """Peak-to-peak amplitude over the trailing window, as a fraction of the
    window mean.  Used by experiments to report stability."""
    if not values:
        raise ValueError("no values")
    tail = values[-window:]
    mean = sum(tail) / len(tail)
    if is_zero(mean):
        return 0.0
    return (max(tail) - min(tail)) / abs(mean)
