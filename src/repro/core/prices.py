"""Node and link price controllers (sections 3.3 and 3.4).

Prices are the Lagrange multipliers of the resource constraints, maintained
by the resource owners and fed back to flow sources:

* **Node price** (eq. 12) — when the node is within capacity the price is
  damped toward the node's best unsatisfied benefit/cost ratio ``BC(b,t)``
  (eq. 11), which encodes the value of relaxing the node constraint by one
  unit; when over capacity the price climbs proportionally to the violation.
* **Link price** (eq. 13) — gradient projection on the dual (Low & Lapsley):
  the price moves with the capacity violation and is projected onto the
  non-negative orthant.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.core.gamma import FixedGamma, GammaSchedule

if TYPE_CHECKING:  # telemetry probes are optional; obs never imports core
    from repro.obs.telemetry import PriceProbe


def _validate_capacity(capacity: float) -> float:
    """Capacities must be positive and not NaN (``math.inf`` is allowed).

    ``NaN <= 0.0`` is False, so without the explicit ``isnan`` check a NaN
    capacity would slip through the sign guard and silently poison every
    subsequent price update (NaN compares false against everything, so the
    controller would be stuck on the violation branch forever).
    """
    if math.isnan(capacity) or capacity <= 0.0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    return capacity


def _validate_price(price: float) -> float:
    """Prices live in the non-negative orthant (eq. 12-13) and are finite."""
    if math.isnan(price) or math.isinf(price) or price < 0.0:
        raise ValueError(f"price must be finite and non-negative, got {price}")
    return price


class NodePriceController:
    """Maintains ``p_b`` for one node.

    ``gamma_under`` is the schedule for the tracking branch
    (``used <= c_b``) and ``gamma_over`` for the violation branch; the paper
    sets them equal (section 4.2), which is the default when ``gamma_over``
    is omitted — the two branches then share a single schedule so the
    adaptive heuristic sees the whole price trajectory.
    """

    def __init__(
        self,
        capacity: float,
        gamma_under: GammaSchedule,
        gamma_over: GammaSchedule | None = None,
        initial_price: float = 0.0,
    ) -> None:
        self.capacity = _validate_capacity(capacity)
        self._gamma_under = gamma_under
        self._gamma_over = gamma_over if gamma_over is not None else gamma_under
        self._price = _validate_price(initial_price)
        #: Optional telemetry probe; ``None`` keeps the update allocation-free.
        self.probe: PriceProbe | None = None

    @property
    def price(self) -> float:
        return self._price

    @property
    def gamma(self) -> float:
        """The step size the *next* tracking-branch update would apply."""
        return self._gamma_under.value()

    def attach_probe(self, probe: "PriceProbe") -> None:
        """Wire a telemetry probe into this controller and its schedules."""
        self.probe = probe
        self._gamma_under.probe = probe
        if self._gamma_over is not self._gamma_under:
            self._gamma_over.probe = probe

    def update(self, benefit_cost: float, used: float) -> float:
        """Apply eq. 12 and return the new price.

        ``benefit_cost`` is ``BC(b,t)``: the highest benefit/cost ratio among
        classes that remain below their ``n^max`` after consumer allocation
        (0 when every class is fully admitted — the boundary case in
        section 3.3 where the price only enforces the node constraint and is
        allowed to decay).  ``used`` is ``used_b(t)``, the node resource
        consumed at the end of consumer allocation.
        """
        if not math.isfinite(benefit_cost) or benefit_cost < 0.0:
            raise ValueError(
                f"benefit_cost must be finite and non-negative, got {benefit_cost}"
            )
        if not math.isfinite(used) or used < 0.0:
            raise ValueError(f"used must be finite and non-negative, got {used}")
        old_price = self._price
        if used <= self.capacity:
            gamma = self._gamma_under.value()
            new_price = old_price + gamma * (benefit_cost - old_price)
            observer = self._gamma_under
            branch = "track"
        else:
            gamma = self._gamma_over.value()
            new_price = old_price + gamma * (used - self.capacity)
            observer = self._gamma_over
            branch = "violation"
        new_price = max(new_price, 0.0)
        observer.observe(new_price - old_price)
        self._price = new_price
        if self.probe is not None:
            self.probe.price_update(
                old_price, new_price, gamma, branch,
                usage=used, capacity=self.capacity,
            )
        return new_price

    def reset(self, price: float = 0.0) -> None:
        self._price = _validate_price(price)

    def state_dict(self) -> dict[str, object]:
        """Checkpoint of price + step-size state (for agent recovery)."""
        state: dict[str, object] = {
            "price": self._price,
            "gamma_under": self._gamma_under.state_dict(),
        }
        if self._gamma_over is not self._gamma_under:
            state["gamma_over"] = self._gamma_over.state_dict()
        return state

    def load_state(self, state: dict[str, object]) -> None:
        """Inverse of :meth:`state_dict` (validates the restored price)."""
        price = state["price"]
        assert isinstance(price, float)
        self._price = _validate_price(price)
        gamma_under = state["gamma_under"]
        assert isinstance(gamma_under, dict)
        self._gamma_under.load_state(gamma_under)
        gamma_over = state.get("gamma_over")
        if gamma_over is not None and self._gamma_over is not self._gamma_under:
            assert isinstance(gamma_over, dict)
            self._gamma_over.load_state(gamma_over)


class LinkPriceController:
    """Maintains ``p_l`` for one link via gradient projection (eq. 13).

    Links with infinite capacity can never constrain the system; their
    controllers report a permanently zero price without updating, which is
    how the paper's no-link-bottleneck workloads behave.
    """

    def __init__(
        self,
        capacity: float,
        gamma: GammaSchedule | float = 1e-4,
        initial_price: float = 0.0,
    ) -> None:
        self.capacity = _validate_capacity(capacity)
        self._gamma = FixedGamma(gamma) if isinstance(gamma, (int, float)) else gamma
        _validate_price(initial_price)
        self._price = 0.0 if math.isinf(capacity) else initial_price
        #: Optional telemetry probe; ``None`` keeps the update allocation-free.
        self.probe: PriceProbe | None = None

    @property
    def price(self) -> float:
        return self._price

    @property
    def gamma(self) -> float:
        """The gradient-projection step size the next update would apply."""
        return self._gamma.value()

    def attach_probe(self, probe: "PriceProbe") -> None:
        """Wire a telemetry probe into this controller and its schedule."""
        self.probe = probe
        self._gamma.probe = probe

    def update(self, usage: float) -> float:
        """Apply eq. 13 and return the new price.

        ``usage`` is the aggregate link load ``sum_i L_{l,i} r_i``.
        """
        if not math.isfinite(usage) or usage < 0.0:
            raise ValueError(f"usage must be finite and non-negative, got {usage}")
        if math.isinf(self.capacity):
            return self._price
        old_price = self._price
        gamma = self._gamma.value()
        new_price = max(old_price + gamma * (usage - self.capacity), 0.0)
        self._gamma.observe(new_price - old_price)
        self._price = new_price
        if self.probe is not None:
            self.probe.price_update(
                old_price, new_price, gamma, "gradient",
                usage=usage, capacity=self.capacity,
            )
        return new_price

    def reset(self, price: float = 0.0) -> None:
        _validate_price(price)
        self._price = 0.0 if math.isinf(self.capacity) else price

    def state_dict(self) -> dict[str, object]:
        """Checkpoint of price + step-size state (for agent recovery)."""
        return {"price": self._price, "gamma": self._gamma.state_dict()}

    def load_state(self, state: dict[str, object]) -> None:
        """Inverse of :meth:`state_dict` (validates the restored price)."""
        price = state["price"]
        assert isinstance(price, float)
        _validate_price(price)
        self._price = 0.0 if math.isinf(self.capacity) else price
        gamma = state["gamma"]
        assert isinstance(gamma, dict)
        self._gamma.load_state(gamma)
