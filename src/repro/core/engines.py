"""Solver engines for the LRGP driver and their registry.

PR 3 splits the former monolithic :class:`~repro.core.lrgp.LRGP` into a thin
facade (iteration bookkeeping, records, convergence) and a pluggable
*engine* that owns the per-iteration state — rates, populations, price
controllers — and executes one full LRGP iteration:

* ``"reference"`` — :class:`ReferenceEngine`, the original dict-based
  composition of the per-agent algorithms, moved here verbatim.  It remains
  the semantic ground truth: the synchronous runtime is bit-identical to it
  and every other engine is validated against its trajectory.
* ``"vectorized"`` — :class:`repro.core.compiled.VectorizedEngine`, which
  lowers the problem to dense numpy arrays and runs the whole iteration as
  batched array ops (registered lazily to keep numpy off the import path of
  the reference driver).

Engines are looked up by name via :func:`create_engine`; third parties can
:func:`register_engine` alternatives (a GPU backend, an approximate solver)
without touching the driver.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.prices import LinkPriceController, NodePriceController
from repro.core.rate_allocation import aggregate_flow_price, allocate_rate
from repro.model.allocation import Allocation, link_usage, total_utility
from repro.model.entities import ClassId, FlowId, LinkId, NodeId
from repro.model.problem import Problem
from repro.obs.events import AdmissionEvent, now_ns
from repro.utility.tolerance import close_enough

if TYPE_CHECKING:  # circular: lrgp imports this module for its engine field
    from repro.core.lrgp import LRGPConfig


@dataclass(frozen=True)
class StepOutcome:
    """What one engine iteration produced, for the facade's bookkeeping.

    ``slack`` maps ``node:<id>`` / ``link:<id>`` to remaining constraint
    headroom (eq. 4/5 capacity minus usage, negative when violated); it is
    populated only when the config records snapshots.
    """

    utility: float
    slack: dict[str, float] = field(default_factory=dict)


class LRGPEngine(ABC):
    """One iteration-execution strategy for the LRGP driver.

    An engine owns the mutable optimizer state (rates, populations, node and
    link prices with their gamma schedules) and knows how to (re)bind it to a
    problem and how to advance it by one full LRGP iteration.  The facade
    (:class:`repro.core.lrgp.LRGP`) owns everything iteration-count shaped:
    utilities, records, convergence, events.
    """

    #: Registry name of the engine (set by concrete classes).
    name: str = "abstract"

    @property
    @abstractmethod
    def problem(self) -> Problem:
        """The problem the engine is currently bound to."""

    @abstractmethod
    def bind(self, problem: Problem, preserve_state: bool) -> None:
        """(Re)bind to ``problem``.

        With ``preserve_state`` the engine keeps prices/populations/rates of
        entities that persist across the change (same id, capacity unchanged
        within tolerance) and initializes the rest from the config, exactly
        like the original driver's reconfiguration path (figure 3).
        """

    @abstractmethod
    def step(self) -> StepOutcome:
        """Execute one full LRGP iteration (rates, admission, prices)."""

    @abstractmethod
    def rates(self) -> dict[FlowId, float]:
        """Current per-flow rates (a fresh dict)."""

    @abstractmethod
    def populations(self) -> dict[ClassId, int]:
        """Current per-class admitted populations (a fresh dict)."""

    @abstractmethod
    def node_prices(self) -> dict[NodeId, float]:
        """Current node prices (consumer nodes only)."""

    @abstractmethod
    def link_prices(self) -> dict[LinkId, float]:
        """Current link prices (finite-capacity links only)."""

    @abstractmethod
    def node_gammas(self) -> dict[NodeId, float]:
        """The step size each node's next tracking update would apply."""

    def allocation(self) -> Allocation:
        """The current (rates, populations) solution."""
        return Allocation(rates=self.rates(), populations=self.populations())


class ReferenceEngine(LRGPEngine):
    """The original dict-based LRGP iteration (sections 3.1-3.4).

    A direct, centralized composition of the per-agent algorithms: rate
    allocation via :func:`~repro.core.rate_allocation.allocate_rate` per
    flow, the configured admission strategy per consumer node, then the
    eq. 12 / eq. 13 price controllers.  Deliberately unoptimized — this is
    the implementation every other engine must match.
    """

    name = "reference"

    def __init__(self, problem: Problem, config: "LRGPConfig") -> None:
        self._config = config
        self._problem: Problem = problem
        self._rates: dict[FlowId, float] = {}
        self._populations: dict[ClassId, int] = {}
        self._node_controllers: dict[NodeId, NodePriceController] = {}
        self._link_controllers: dict[LinkId, LinkPriceController] = {}
        self.bind(problem, preserve_state=False)

    @property
    def problem(self) -> Problem:
        return self._problem

    def rates(self) -> dict[FlowId, float]:
        return dict(self._rates)

    def populations(self) -> dict[ClassId, int]:
        return dict(self._populations)

    def node_prices(self) -> dict[NodeId, float]:
        return {n: c.price for n, c in self._node_controllers.items()}

    def link_prices(self) -> dict[LinkId, float]:
        return {link_id: c.price for link_id, c in self._link_controllers.items()}

    def node_gammas(self) -> dict[NodeId, float]:
        return {n: c.gamma for n, c in self._node_controllers.items()}

    def bind(self, problem: Problem, preserve_state: bool) -> None:
        old_rates = self._rates if preserve_state else {}
        old_populations = self._populations if preserve_state else {}
        old_nodes = self._node_controllers if preserve_state else {}
        old_links = self._link_controllers if preserve_state else {}

        self._problem = problem
        self._rates = {
            flow_id: old_rates.get(flow_id, flow.rate_min)
            for flow_id, flow in problem.flows.items()
        }
        self._populations = {
            class_id: old_populations.get(class_id, 0) for class_id in problem.classes
        }
        self._node_controllers = {}
        for node_id in problem.consumer_nodes():
            existing = old_nodes.get(node_id)
            if existing is not None and close_enough(
                existing.capacity, problem.nodes[node_id].capacity
            ):
                self._node_controllers[node_id] = existing
            else:
                self._node_controllers[node_id] = NodePriceController(
                    capacity=problem.nodes[node_id].capacity,
                    gamma_under=self._config.node_gamma.clone(),
                    initial_price=self._config.initial_node_price,
                )
        self._link_controllers = {}
        for link_id, link in problem.links.items():
            if math.isinf(link.capacity):
                continue
            existing = old_links.get(link_id)
            if existing is not None and close_enough(existing.capacity, link.capacity):
                self._link_controllers[link_id] = existing
            else:
                self._link_controllers[link_id] = LinkPriceController(
                    capacity=link.capacity,
                    gamma=self._config.link_gamma,
                    initial_price=self._config.initial_link_price,
                )

        telemetry = self._config.telemetry
        if telemetry.enabled:
            for node_id, node_controller in self._node_controllers.items():
                probe = telemetry.probe("node", node_id)
                if probe is not None:
                    node_controller.attach_probe(probe)
            for link_id, link_controller in self._link_controllers.items():
                probe = telemetry.probe("link", link_id)
                if probe is not None:
                    link_controller.attach_probe(probe)

    def step(self) -> StepOutcome:
        problem = self._problem
        telemetry = self._config.telemetry
        registry = telemetry.registry
        profiler = telemetry.profiler
        snapshots = self._config.record_snapshots
        node_prices = self.node_prices()
        link_prices = self.link_prices()
        slack: dict[str, float] = {}

        with registry.timer("lrgp.iteration"), profiler.phase("iteration"):
            # 1. Rate allocation at each source (Algorithm 1), using last
            #    iteration's populations and prices.
            with registry.timer("lrgp.rate_allocation"), profiler.phase("argmax"):
                for flow_id in problem.flows:
                    price = aggregate_flow_price(
                        problem, flow_id, self._populations, node_prices, link_prices
                    )
                    self._rates[flow_id] = allocate_rate(
                        problem, flow_id, self._populations, price
                    )

            # 2. Consumer allocation at each node (Algorithm 2, step 2 —
            #    greedy by default), then 3a. node price update (eq. 12).
            #    Profiler phases sit *inside* the per-node loop so the
            #    admission/price-update event interleaving (one pair per
            #    node) is untouched — replay depends on capture order.
            with registry.timer("lrgp.consumer_allocation"):
                for node_id in problem.consumer_nodes():
                    with profiler.phase("admission"):
                        result = self._config.admission(problem, node_id, self._rates)
                        self._populations.update(result.populations)
                    controller = self._node_controllers[node_id]
                    # The adaptive γ observation runs inside update(), so
                    # gamma_step cost folds into this phase.
                    with profiler.phase("price_update"):
                        controller.update(
                            benefit_cost=result.best_unsatisfied_ratio,
                            used=result.used,
                        )
                    if snapshots:
                        slack[f"node:{node_id}"] = controller.capacity - result.used
                    if telemetry.enabled:
                        telemetry.emit(
                            AdmissionEvent(
                                node=node_id,
                                admitted=dict(result.populations),
                                used=result.used,
                                capacity=controller.capacity,
                                best_ratio=result.best_unsatisfied_ratio,
                                t_ns=now_ns(),
                            )
                        )

            # 3b. Link price update (Algorithm 3 / eq. 13).
            with registry.timer("lrgp.link_prices"), profiler.phase("price_update"):
                if self._link_controllers:
                    allocation = self.allocation()
                    for link_id, link_controller in self._link_controllers.items():
                        usage = link_usage(problem, allocation, link_id)
                        link_controller.update(usage)
                        if snapshots:
                            slack[f"link:{link_id}"] = (
                                link_controller.capacity - usage
                            )

            utility = total_utility(problem, self.allocation())

        return StepOutcome(utility=utility, slack=slack)


#: Factory signature stored in the registry.
EngineFactory = Callable[[Problem, "LRGPConfig"], LRGPEngine]

_ENGINES: dict[str, EngineFactory] = {}


def register_engine(name: str, factory: EngineFactory) -> None:
    """Register (or replace) an engine factory under ``name``."""
    if not name:
        raise ValueError("engine name must be non-empty")
    _ENGINES[name] = factory


def available_engines() -> tuple[str, ...]:
    """Registered engine names, sorted."""
    return tuple(sorted(_ENGINES))


def create_engine(name: str, problem: Problem, config: "LRGPConfig") -> LRGPEngine:
    """Instantiate the engine registered under ``name``.

    Raises ``ValueError`` naming the available engines when ``name`` is
    unknown, so a typo in ``LRGPConfig(engine=...)`` fails loudly at
    construction rather than mid-run.
    """
    factory = _ENGINES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown engine {name!r}; available: {', '.join(available_engines())}"
        )
    return factory(problem, config)


def _make_vectorized(problem: Problem, config: "LRGPConfig") -> LRGPEngine:
    """Lazy factory so importing the driver never imports numpy."""
    from repro.core.compiled import VectorizedEngine

    return VectorizedEngine(problem, config)


def _make_vectorized_dense(problem: Problem, config: "LRGPConfig") -> LRGPEngine:
    """Vectorized engine pinned to the dense incidence layout."""
    from repro.core.compiled import VectorizedEngine

    return VectorizedEngine(problem, config, layout="dense")


def _make_vectorized_sparse(problem: Problem, config: "LRGPConfig") -> LRGPEngine:
    """Vectorized engine pinned to the sparse (COO scatter-add) layout."""
    from repro.core.compiled import VectorizedEngine

    return VectorizedEngine(problem, config, layout="sparse")


register_engine("reference", ReferenceEngine)
register_engine("vectorized", _make_vectorized)
register_engine("vectorized-dense", _make_vectorized_dense)
register_engine("vectorized-sparse", _make_vectorized_sparse)
