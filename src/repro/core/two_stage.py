"""The two-stage approximation with path pruning (section 2.4, point 2).

The constraint equations assume a flow is routed to every node hosting one
of its classes, even if the optimizer ends up admitting nobody there.  The
paper proposes: (1) solve under that assumption; (2) prune the branches
where every class got ``n_j = 0`` — zero the corresponding ``F_{b,i}`` and
``L_{l,i}`` coefficients — and solve again.  Pruning releases the flow-node
cost ``F * r`` at abandoned nodes, which stage 2 can spend on consumers or
rate.

Pruning is computed on the flow's dissemination tree: a reached node is
prunable when it hosts no admitted class of the flow and no un-pruned route
link of the flow departs from it (i.e. it is a leaf of the remaining tree);
pruning iterates to a fixpoint so whole abandoned branches collapse.  The
source node is never pruned.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lrgp import LRGP, LRGPConfig
from repro.model.allocation import Allocation
from repro.obs.telemetry import NULL_TELEMETRY
from repro.model.entities import FlowId, LinkId, NodeId
from repro.model.problem import Problem
from repro.utility.tolerance import is_zero


@dataclass(frozen=True)
class PruneSet:
    """Coefficients a stage-1 solution allows us to zero."""

    flow_nodes: frozenset[tuple[NodeId, FlowId]]
    flow_links: frozenset[tuple[LinkId, FlowId]]

    def is_empty(self) -> bool:
        return not self.flow_nodes and not self.flow_links


def compute_prune_set(problem: Problem, allocation: Allocation) -> PruneSet:
    """Find the (node, flow) and (link, flow) pairs a solution abandons."""
    dropped_nodes: set[tuple[NodeId, FlowId]] = set()
    dropped_links: set[tuple[LinkId, FlowId]] = set()

    for flow_id in problem.flows:
        route = problem.route(flow_id)
        link_objs = [problem.links[link_id] for link_id in route.links]
        pruned_nodes: set[NodeId] = set()
        pruned_links: set[LinkId] = set()

        def has_admitted_class(node_id: NodeId) -> bool:
            return any(
                allocation.population(class_id) > 0
                for class_id in problem.classes_of_flow_at_node(flow_id, node_id)
            )

        changed = True
        while changed:
            changed = False
            for node_id in route.nodes:
                if node_id == route.nodes[0] or node_id in pruned_nodes:
                    continue  # never prune the source
                if has_admitted_class(node_id):
                    continue
                departing = [
                    link
                    for link in link_objs
                    if link.tail == node_id and link.link_id not in pruned_links
                ]
                if departing:
                    continue  # still relays traffic downstream
                pruned_nodes.add(node_id)
                for link in link_objs:
                    if link.head == node_id:
                        pruned_links.add(link.link_id)
                changed = True

        dropped_nodes.update((node_id, flow_id) for node_id in sorted(pruned_nodes))
        dropped_links.update((link_id, flow_id) for link_id in sorted(pruned_links))

    return PruneSet(
        flow_nodes=frozenset(dropped_nodes), flow_links=frozenset(dropped_links)
    )


@dataclass(frozen=True)
class TwoStageResult:
    """Outcome of the two-stage optimization."""

    stage1_utility: float
    stage2_utility: float
    prune_set: PruneSet
    stage1_allocation: Allocation
    stage2_allocation: Allocation
    pruned_problem: Problem
    #: Per-iteration utility trajectories of the underlying LRGP runs.
    #: When nothing was prunable, stage 2 is not re-run and its trajectory
    #: repeats stage 1's.
    stage1_utilities: tuple[float, ...] = ()
    stage2_utilities: tuple[float, ...] = ()

    @property
    def improvement(self) -> float:
        """Relative utility gain of stage 2 over stage 1."""
        if is_zero(self.stage1_utility):
            return 0.0
        return (self.stage2_utility - self.stage1_utility) / self.stage1_utility


def two_stage_optimize(
    problem: Problem,
    config: LRGPConfig | None = None,
    iterations: int = 250,
    engine: str | None = None,
) -> TwoStageResult:
    """Run LRGP, prune abandoned branches, run LRGP again.

    Both stages run ``iterations`` LRGP iterations from a fresh optimizer
    (stage 2 on the pruned problem).  If nothing is prunable, stage 2 equals
    stage 1 and is not re-run.  ``engine`` overrides the config's LRGP
    engine selection for both stages (:mod:`repro.core.engines`).
    """
    telemetry = config.telemetry if config is not None else NULL_TELEMETRY
    profiler = telemetry.profiler
    stage1 = LRGP(problem, config, engine=engine)
    with profiler.phase("stage1"):
        stage1.run(iterations)
    allocation1 = stage1.allocation()
    utility1 = stage1.utilities[-1]
    utilities1 = tuple(stage1.utilities)

    with profiler.phase("prune"):
        prune_set = compute_prune_set(problem, allocation1)
    if prune_set.is_empty():
        return TwoStageResult(
            stage1_utility=utility1,
            stage2_utility=utility1,
            prune_set=prune_set,
            stage1_allocation=allocation1,
            stage2_allocation=allocation1,
            pruned_problem=problem,
            stage1_utilities=utilities1,
            stage2_utilities=utilities1,
        )

    pruned_costs = problem.costs.pruned(
        dropped_flow_nodes=set(prune_set.flow_nodes),
        dropped_flow_links=set(prune_set.flow_links),
    )
    pruned_problem = problem.with_costs(pruned_costs)
    stage2 = LRGP(pruned_problem, config, engine=engine)
    with profiler.phase("stage2"):
        stage2.run(iterations)

    return TwoStageResult(
        stage1_utility=utility1,
        stage2_utility=stage2.utilities[-1],
        prune_set=prune_set,
        stage1_allocation=allocation1,
        stage2_allocation=stage2.allocation(),
        pruned_problem=pruned_problem,
        stage1_utilities=utilities1,
        stage2_utilities=tuple(stage2.utilities),
    )
