"""LRGP core: the paper's primary contribution (section 3).

* :class:`LRGP`, :class:`LRGPConfig` — the synchronous optimizer.
* :mod:`repro.core.rate_allocation` — Algorithm 1 (Lagrangian rates).
* :mod:`repro.core.consumer_allocation` — greedy populations (Algorithm 2).
* :mod:`repro.core.prices` — node (eq. 12) and link (eq. 13) price updates.
* :mod:`repro.core.gamma` — fixed and adaptive step-size schedules.
* :mod:`repro.core.convergence` — the 0.1%-amplitude stability criterion.
* :mod:`repro.core.engines` — the engine registry (reference / vectorized).
* :mod:`repro.core.compiled` — problem lowering + the numpy fast path.
"""

from repro.core.consumer_allocation import (
    NodeAllocation,
    allocate_all_consumers,
    allocate_consumers,
    benefit_cost_ratio,
)
from repro.core.convergence import (
    ConvergenceCriterion,
    iterations_until_convergence,
    oscillation_amplitude,
)
from repro.core.enactment import (
    Enactor,
    EnactmentPolicy,
    PeriodicEnactment,
    ThresholdEnactment,
    consumer_churn,
)
from repro.core.engines import (
    LRGPEngine,
    ReferenceEngine,
    StepOutcome,
    available_engines,
    create_engine,
    register_engine,
)
from repro.core.gamma import AdaptiveGamma, FixedGamma, GammaSchedule
from repro.core.lrgp import LRGP, AdmissionStrategy, IterationRecord, LRGPConfig
from repro.core.multirate import (
    MultirateAllocation,
    MultirateConfig,
    MultirateLRGP,
    multirate_node_usage,
    multirate_total_utility,
)
from repro.core.two_stage import (
    PruneSet,
    TwoStageResult,
    compute_prune_set,
    two_stage_optimize,
)
from repro.core.prices import LinkPriceController, NodePriceController
from repro.core.rate_allocation import (
    aggregate_flow_price,
    allocate_all_rates,
    allocate_rate,
    link_path_price,
    node_path_price,
)

__all__ = [
    "LRGP",
    "LRGPEngine",
    "ReferenceEngine",
    "StepOutcome",
    "available_engines",
    "create_engine",
    "register_engine",
    "AdaptiveGamma",
    "AdmissionStrategy",
    "Enactor",
    "EnactmentPolicy",
    "MultirateAllocation",
    "MultirateConfig",
    "MultirateLRGP",
    "PeriodicEnactment",
    "PruneSet",
    "ThresholdEnactment",
    "TwoStageResult",
    "compute_prune_set",
    "consumer_churn",
    "multirate_node_usage",
    "multirate_total_utility",
    "two_stage_optimize",
    "ConvergenceCriterion",
    "FixedGamma",
    "GammaSchedule",
    "IterationRecord",
    "LRGPConfig",
    "LinkPriceController",
    "NodeAllocation",
    "NodePriceController",
    "aggregate_flow_price",
    "allocate_all_consumers",
    "allocate_all_rates",
    "allocate_consumers",
    "allocate_rate",
    "benefit_cost_ratio",
    "iterations_until_convergence",
    "link_path_price",
    "node_path_price",
    "oscillation_amplitude",
]
