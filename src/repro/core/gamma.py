"""Step-size (gamma) schedules for the node-price update (eq. 12).

Section 4.2 shows that a fixed step size trades convergence speed against
oscillation amplitude, and proposes an adaptive heuristic:

1. start from a fixed gamma;
2. while the price does not fluctuate, grow gamma by ``0.001`` per iteration;
3. when a fluctuation is detected, halve gamma;
4. clamp gamma to ``[0.001, 0.1]``.

A *fluctuation* is a sign reversal between consecutive price deltas: the
price moved up and then down (or vice versa).  Every node carries its own
schedule instance, observing only its own price trajectory.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.utility.tolerance import is_zero

if TYPE_CHECKING:  # telemetry probes are optional; obs never imports core
    from repro.obs.telemetry import PriceProbe

#: Bounds the paper settles on after experimentation (section 4.2).
GAMMA_LOWER_BOUND = 0.001
GAMMA_UPPER_BOUND = 0.1
GAMMA_INCREMENT = 0.001
GAMMA_BACKOFF = 0.5


class GammaSchedule(ABC):
    """Produces the step size for one price controller and observes the
    resulting price movement."""

    #: Optional telemetry probe (set via ``PriceController.attach_probe``);
    #: adaptive schedules report their step-size changes through it.  A
    #: plain class attribute (not a dataclass field): subclasses decorated
    #: with ``@dataclass`` must not grow a ``probe`` constructor argument.
    probe: "PriceProbe | None" = None

    @abstractmethod
    def value(self) -> float:
        """The gamma to use for the next price update."""

    @abstractmethod
    def observe(self, price_delta: float) -> None:
        """Record the price change the last update produced."""

    @abstractmethod
    def clone(self) -> "GammaSchedule":
        """A fresh schedule with the same configuration (not the same
        state), for stamping out one schedule per node."""

    def state_dict(self) -> dict[str, float]:
        """JSON-ready snapshot of the *mutable* state (checkpointing).

        Stateless schedules have nothing to save; adaptive schedules
        override.  Configuration is deliberately excluded — a restore
        target is always built with the same configuration.
        """
        return {}

    def load_state(self, state: dict[str, float]) -> None:
        """Inverse of :meth:`state_dict`; no-op for stateless schedules."""
        del state

    def to_spec(self) -> dict[str, float | str]:
        """Canonical *configuration* of this schedule (not its state).

        Feeds ``LRGPConfig.to_dict`` / the sweep cache key: two schedules
        with equal specs run identical trajectories from a fresh start.
        Subclasses with tuning knobs override; the fallback identifies
        the schedule by its qualified class name only.
        """
        cls = type(self)
        return {"kind": f"{cls.__module__}.{cls.__qualname__}"}


@dataclass
class FixedGamma(GammaSchedule):
    """A constant step size (the gamma = 1 / 0.1 / 0.01 runs of figure 1)."""

    gamma: float

    def __post_init__(self) -> None:
        # NaN compares false against everything, so a plain sign check would
        # let a NaN step size through and poison every price update.
        if math.isnan(self.gamma) or math.isinf(self.gamma) or self.gamma < 0.0:
            raise ValueError(
                f"gamma must be finite and non-negative, got {self.gamma}"
            )

    def value(self) -> float:
        return self.gamma

    def observe(self, price_delta: float) -> None:
        del price_delta  # fixed schedules ignore feedback

    def clone(self) -> "FixedGamma":
        return FixedGamma(self.gamma)

    def to_spec(self) -> dict[str, float | str]:
        return {"kind": "fixed", "gamma": self.gamma}


class AdaptiveGamma(GammaSchedule):
    """The paper's adaptive heuristic (section 4.2).

    ``initial`` defaults to the upper clamp: the paper starts large for fast
    stabilization and lets fluctuations shrink gamma.
    """

    def __init__(
        self,
        initial: float = GAMMA_UPPER_BOUND,
        increment: float = GAMMA_INCREMENT,
        backoff: float = GAMMA_BACKOFF,
        lower: float = GAMMA_LOWER_BOUND,
        upper: float = GAMMA_UPPER_BOUND,
    ) -> None:
        if math.isnan(lower) or math.isnan(upper) or lower <= 0.0 or upper < lower:
            raise ValueError(f"invalid gamma bounds [{lower}, {upper}]")
        if math.isnan(initial):
            raise ValueError("initial gamma must not be NaN")
        if not 0.0 < backoff < 1.0:
            raise ValueError(f"backoff must be in (0, 1), got {backoff}")
        if increment < 0.0:
            raise ValueError(f"increment must be non-negative, got {increment}")
        self._initial = min(max(initial, lower), upper)
        self._gamma = self._initial
        self._increment = increment
        self._backoff = backoff
        self._lower = lower
        self._upper = upper
        self._last_delta: float | None = None

    @property
    def initial(self) -> float:
        """The (clamped) starting step size handed to fresh clones."""
        return self._initial

    @property
    def increment(self) -> float:
        """Additive growth applied while the price is quiet."""
        return self._increment

    @property
    def backoff(self) -> float:
        """Multiplicative shrink applied on a detected fluctuation."""
        return self._backoff

    @property
    def lower(self) -> float:
        """Lower clamp of the step size."""
        return self._lower

    @property
    def upper(self) -> float:
        """Upper clamp of the step size."""
        return self._upper

    def value(self) -> float:
        return self._gamma

    def observe(self, price_delta: float) -> None:
        fluctuated = (
            self._last_delta is not None
            and price_delta * self._last_delta < 0.0
        )
        old_gamma = self._gamma
        if fluctuated:
            self._gamma *= self._backoff
        else:
            self._gamma += self._increment
        self._gamma = min(max(self._gamma, self._lower), self._upper)
        if not is_zero(price_delta):
            self._last_delta = price_delta
        if self.probe is not None and not is_zero(self._gamma - old_gamma):
            self.probe.gamma_step(old_gamma, self._gamma, fluctuated)

    def state_dict(self) -> dict[str, float]:
        state = {"gamma": self._gamma}
        if self._last_delta is not None:
            state["last_delta"] = self._last_delta
        return state

    def to_spec(self) -> dict[str, float | str]:
        return {
            "kind": "adaptive",
            "initial": self._initial,
            "increment": self._increment,
            "backoff": self._backoff,
            "lower": self._lower,
            "upper": self._upper,
        }

    def load_state(self, state: dict[str, float]) -> None:
        gamma = state["gamma"]
        if math.isnan(gamma):
            raise ValueError("checkpointed gamma must not be NaN")
        self._gamma = min(max(gamma, self._lower), self._upper)
        self._last_delta = state.get("last_delta")

    def clone(self) -> "AdaptiveGamma":
        return AdaptiveGamma(
            initial=self._initial,
            increment=self._increment,
            backoff=self._backoff,
            lower=self._lower,
            upper=self._upper,
        )
