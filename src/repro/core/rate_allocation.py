"""Lagrangian rate allocation (Algorithm 1, equations 6-9).

Given fixed populations and resource prices, the source node of each flow
independently maximizes the flow's term of the Lagrangian dual (eq. 7):

    max_{r_i}  sum_{j in C_i} n_j U_j(r_i)  -  r_i (PL_i + PB_i)

where the aggregate path prices are

    PL_i = sum_{l in L_i} L_{l,i} p_l                               (eq. 8)
    PB_i = sum_{b in B_i} (F_{b,i} + sum_j G_{b,j} n_j) p_b         (eq. 9)

The maximizer is unique because the objective is strictly concave; it is
computed in closed form where available, otherwise by bracketed root finding
(:func:`repro.utility.solve_rate`), then clamped to ``[r_min, r_max]``.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import TYPE_CHECKING

from repro.model.entities import ClassId, FlowId, LinkId, NodeId
from repro.model.problem import Problem
from repro.utility.calculus import solve_rate
from repro.utility.tolerance import is_zero

if TYPE_CHECKING:  # optional telemetry; obs never imports core
    from repro.obs.registry import MetricsRegistry


def link_path_price(
    problem: Problem,
    flow_id: FlowId,
    link_prices: Mapping[LinkId, float],
) -> float:
    """``PL_i`` (eq. 8): total link price along the flow's route, weighted by
    link cost."""
    route = problem.route(flow_id)
    return sum(
        problem.costs.link(link_id, flow_id) * link_prices.get(link_id, 0.0)
        for link_id in route.links
    )


def node_path_price(
    problem: Problem,
    flow_id: FlowId,
    populations: Mapping[ClassId, int],
    node_prices: Mapping[NodeId, float],
) -> float:
    """``PB_i`` (eq. 9): total node price along the route.

    Each node contributes its price weighted by the flow's marginal resource
    footprint there: the flow-node cost plus the consumer cost of every
    *admitted* consumer of the flow's classes at that node.
    """
    route = problem.route(flow_id)
    total = 0.0
    for node_id in route.nodes:
        price = node_prices.get(node_id, 0.0)
        if is_zero(price):
            continue
        coefficient = problem.costs.flow_node(node_id, flow_id)
        for class_id in problem.classes_of_flow_at_node(flow_id, node_id):
            coefficient += problem.costs.consumer(node_id, class_id) * populations.get(
                class_id, 0
            )
        total += coefficient * price
    return total


def aggregate_flow_price(
    problem: Problem,
    flow_id: FlowId,
    populations: Mapping[ClassId, int],
    node_prices: Mapping[NodeId, float],
    link_prices: Mapping[LinkId, float],
) -> float:
    """``PL_i + PB_i``: the per-unit-rate price the flow faces."""
    return link_path_price(problem, flow_id, link_prices) + node_path_price(
        problem, flow_id, populations, node_prices
    )


def allocate_rate(
    problem: Problem,
    flow_id: FlowId,
    populations: Mapping[ClassId, int],
    price: float,
) -> float:
    """Algorithm 1, step 2: the rate maximizing eq. 7 for one flow.

    ``price`` is the aggregate ``PL_i + PB_i`` (compute it with
    :func:`aggregate_flow_price`).  Classes with zero admitted population do
    not contribute utility; if no consumer is admitted anywhere on the flow
    and the price is positive, the optimal rate is the lower bound.
    """
    flow = problem.flows[flow_id]
    terms = [
        (float(populations.get(class_id, 0)), problem.classes[class_id].utility)
        for class_id in problem.classes_of_flow(flow_id)
    ]
    return solve_rate(terms, price, flow.rate_min, flow.rate_max)


def allocate_all_rates(
    problem: Problem,
    populations: Mapping[ClassId, int],
    node_prices: Mapping[NodeId, float],
    link_prices: Mapping[LinkId, float],
    registry: "MetricsRegistry | None" = None,
) -> dict[FlowId, float]:
    """Run Algorithm 1 for every flow source.

    In the distributed system each source computes only its own rate; this
    helper is the synchronous composition used by the reference driver and
    by tests.  Pass a :class:`~repro.obs.MetricsRegistry` to time the batch
    (``rates.allocate_all``) and count the rates produced
    (``rates.allocated``).
    """

    def solve_all() -> dict[FlowId, float]:
        return {
            flow_id: allocate_rate(
                problem,
                flow_id,
                populations,
                aggregate_flow_price(
                    problem, flow_id, populations, node_prices, link_prices
                ),
            )
            for flow_id in problem.flows
        }

    if registry is None:
        return solve_all()
    with registry.timer("rates.allocate_all"):
        rates = solve_all()
    registry.counter("rates.allocated").inc(len(rates))
    return rates
