"""Trace capture: exporting LRGP trajectories for offline analysis.

A deployment debugging convergence wants the full per-iteration state —
utility, every rate, every price, every population — as flat CSV it can
load into any tool.  Run the optimizer with
``LRGPConfig(record_snapshots=True)`` and hand it to :func:`trace_to_csv`.
"""

from __future__ import annotations

import io
from collections.abc import Sequence
from pathlib import Path

from repro.core.lrgp import LRGP, IterationRecord


class TraceError(ValueError):
    """Raised when the optimizer was not recording snapshots."""


def _columns(
    records: Sequence[IterationRecord],
) -> tuple[list[str], list[str], list[str], list[str]]:
    flows: set[str] = set()
    classes: set[str] = set()
    nodes: set[str] = set()
    links: set[str] = set()
    for record in records:
        if record.rates is None:
            raise TraceError(
                "trace requires LRGPConfig(record_snapshots=True); this run "
                "recorded utilities only"
            )
        flows.update(record.rates)
        classes.update(record.populations or {})
        nodes.update(record.node_prices or {})
        links.update(record.link_prices or {})
    return sorted(flows), sorted(classes), sorted(nodes), sorted(links)


def trace_to_csv(records: Sequence[IterationRecord]) -> str:
    """Render iteration records as CSV.

    Columns: ``iteration, utility, rate:<flow>..., n:<class>...,
    node_price:<node>..., link_price:<link>...``.  Entities that appear in
    some iterations only (e.g. after a flow joins/leaves) render empty
    cells elsewhere.
    """
    if not records:
        raise TraceError("no iteration records to trace")
    flows, classes, nodes, links = _columns(records)
    out = io.StringIO()
    header = (
        ["iteration", "utility"]
        + [f"rate:{f}" for f in flows]
        + [f"n:{c}" for c in classes]
        + [f"node_price:{n}" for n in nodes]
        + [f"link_price:{l}" for l in links]
    )
    out.write(",".join(header) + "\n")
    for record in records:
        row: list[str] = [str(record.iteration), repr(record.utility)]
        rates = record.rates or {}
        populations = record.populations or {}
        node_prices = record.node_prices or {}
        link_prices = record.link_prices or {}
        row += [repr(rates[f]) if f in rates else "" for f in flows]
        row += [str(populations[c]) if c in populations else "" for c in classes]
        row += [repr(node_prices[n]) if n in node_prices else "" for n in nodes]
        row += [repr(link_prices[l]) if l in link_prices else "" for l in links]
        out.write(",".join(row) + "\n")
    return out.getvalue()


def write_trace(optimizer: LRGP, path: str | Path) -> Path:
    """Write an optimizer's recorded trajectory to ``path`` as CSV."""
    path = Path(path)
    path.write_text(trace_to_csv(optimizer.records))
    return path
