"""Trace capture: exporting LRGP trajectories for offline analysis.

A deployment debugging convergence wants the full per-iteration state —
utility, every rate, every price, every population — as flat CSV it can
load into any tool.  Run the optimizer with
``LRGPConfig(record_snapshots=True)`` and hand it to :func:`trace_to_csv`.

This module is a thin adapter over the :mod:`repro.obs` sinks: records
become :class:`~repro.obs.IterationEvent` payloads and a pinned-column
:class:`~repro.obs.CsvSink` renders them, so CSV and JSONL traces share
one flattening and one formatting rule (floats ``repr``, ints ``str``,
absent values as empty cells — see ``repro.obs.sinks.format_cell``).

Documented column order: ``iteration, utility, rate:<flow>...,
n:<class>..., node_price:<node>..., link_price:<link>...,
gamma:<node>..., slack:<node:id|link:id>...`` — each group sorted by id,
new groups only ever appended at the end.
"""

from __future__ import annotations

import io
from collections.abc import Sequence
from pathlib import Path

from repro.core.lrgp import LRGP, IterationRecord
from repro.obs.events import IterationEvent
from repro.obs.sinks import CsvSink


class TraceError(ValueError):
    """Raised when the optimizer was not recording snapshots."""


def record_to_event(record: IterationRecord, t_ns: int = 0) -> IterationEvent:
    """Convert one optimizer record into its typed trace event.

    The record carries no capture timestamp, so ``t_ns`` defaults to 0;
    live emitters (``LRGPConfig(telemetry=...)``) stamp real monotonic
    times instead.
    """
    if record.rates is None:
        raise TraceError(
            "trace requires LRGPConfig(record_snapshots=True); this run "
            "recorded utilities only"
        )
    return IterationEvent(
        iteration=record.iteration,
        utility=record.utility,
        t_ns=t_ns,
        rates=record.rates,
        populations=record.populations,
        node_prices=record.node_prices,
        link_prices=record.link_prices,
        gammas=record.node_gammas,
        slack=record.slack,
    )


def trace_columns(records: Sequence[IterationRecord]) -> list[str]:
    """The pinned header for a record sequence (documented order above).

    Entities that appear in some iterations only (e.g. after a flow
    joins/leaves) still get a column; their absent iterations render
    empty cells.
    """
    flows: set[str] = set()
    classes: set[str] = set()
    nodes: set[str] = set()
    links: set[str] = set()
    gamma_nodes: set[str] = set()
    slack_keys: set[str] = set()
    for record in records:
        if record.rates is None:
            raise TraceError(
                "trace requires LRGPConfig(record_snapshots=True); this run "
                "recorded utilities only"
            )
        flows.update(record.rates)
        classes.update(record.populations or {})
        nodes.update(record.node_prices or {})
        links.update(record.link_prices or {})
        gamma_nodes.update(record.node_gammas or {})
        slack_keys.update(record.slack or {})
    return (
        ["iteration", "utility"]
        + [f"rate:{f}" for f in sorted(flows)]
        + [f"n:{c}" for c in sorted(classes)]
        + [f"node_price:{n}" for n in sorted(nodes)]
        + [f"link_price:{l}" for l in sorted(links)]
        + [f"gamma:{n}" for n in sorted(gamma_nodes)]
        + [f"slack:{s}" for s in sorted(slack_keys)]
    )


def trace_to_csv(records: Sequence[IterationRecord]) -> str:
    """Render iteration records as CSV (documented column order above)."""
    if not records:
        raise TraceError("no iteration records to trace")
    buffer = io.StringIO()
    sink = CsvSink(buffer, fieldnames=trace_columns(records), drop=("type", "t_ns"))
    for record in records:
        sink.emit(record_to_event(record))
    sink.close()
    return buffer.getvalue()


def write_trace(optimizer: LRGP, path: str | Path) -> Path:
    """Write an optimizer's recorded trajectory to ``path`` as CSV."""
    path = Path(path)
    path.write_text(trace_to_csv(optimizer.records))
    return path
