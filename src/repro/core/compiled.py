"""Problem lowering and the vectorized LRGP engine.

The reference engine walks Python dicts per flow/node/link; at Table 2
scale that is thousands of interpreter round trips per iteration.  This
module lowers a frozen :class:`~repro.model.problem.Problem` into numpy
arrays once (:func:`compile_problem`) and then runs every LRGP iteration
as batched array ops (:class:`VectorizedEngine`):

* **Rate allocation** (Algorithm 1, eq. 7-9) — aggregate path prices over
  the link/flow and node/flow incidence structure, then a batched
  closed-form argmax per utility family: all-log flows via
  ``sum(n*scale)/price - offset``, all-power flows via the collapsed
  inverse derivative.  Flows whose classes mix shapes (or use a shape with
  no closed form) fall back to a bracketed numeric bisection — the
  *fallback column* — which matches the reference root finder within its
  tolerance.
* **Consumer allocation** (Algorithm 2, eq. 10-11) — benefit/cost ratios
  for all classes at once, then a *per-node bucketed partial sort*: nodes
  whose budget covers every class admit them all without sorting, and
  contended nodes pop classes off a max-heap (descending ratio, ties by
  class id — exactly the reference order) only until the budget is spent,
  so admission work is near-linear in the number of admitted classes.
  The fill runs over plain Python floats so admission counts match the
  reference bit for bit.
* **Price updates** (eq. 12-13) — scalar updates mirroring the reference
  controllers exactly, including the adaptive-gamma heuristic.  The node
  and link axes are small relative to the class axis, so plain Python
  beats numpy's per-op overhead there; the flow and class axes — where
  Table 2 scales — are the vectorized ones.

Two lowered *layouts* share one compiled form:

* **dense** — the link/flow and node/flow incidence as dense matrices
  (``link_cost``, ``flow_node_cost``), prices and usages as matrix
  products.  Memory and per-iteration cost are ``O(n_links*n_flows +
  n_nodes*n_flows)`` — fine at paper scale, quadratic death at
  datacenter scale.
* **sparse** — the same incidence as COO-style index arrays
  (``ln_link``/``ln_flow``/``ln_cost`` and ``fn_node``/``fn_flow``/
  ``fn_cost``), prices and usages as ``np.bincount`` scatter-adds.
  Memory and per-iteration cost scale with the number of incidence
  *nonzeros* — a flow touches only the links and nodes on its route —
  so 1k+ flows over 10k+ links stay cheap.  The dense matrices are
  materialized lazily only if something asks for them.

:class:`VectorizedEngine` picks the layout per problem (``layout="auto"``
switches to sparse at :data:`SPARSE_MIN_FLOWS` flows, the measured
crossover in ``benchmarks/results/BENCH_engines.json``); ``"dense"`` and
``"sparse"`` force it, and the registry exposes all three as
``"vectorized"`` / ``"vectorized-dense"`` / ``"vectorized-sparse"``.

The engine is validated against the reference trajectory within
:data:`repro.utility.tolerance.ENGINE_EQUIVALENCE_RTOL` at every iteration
in *both* layouts (``tests/core/test_engines.py``); the speedup and the
dense/sparse crossover are tracked in ``benchmarks/test_perf_engines.py``.

Scope notes: the node axis of the lowered arrays covers *consumer* nodes
(the only nodes carrying prices) and the link axis covers *finite-capacity*
links (the only links carrying prices), mirroring which controllers the
reference driver instantiates.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np
from numpy.typing import NDArray

from repro.core.consumer_allocation import (
    _FLOOR_SLACK,  # shared admission flooring slack; same constant by design
    allocate_consumers,
)
from repro.core.engines import LRGPEngine, StepOutcome
from repro.core.gamma import AdaptiveGamma, FixedGamma
from repro.model.entities import ClassId, FlowId, LinkId, NodeId
from repro.model.problem import Problem
from repro.obs.events import AdmissionEvent, now_ns
from repro.utility.base import UtilityFunction
from repro.utility.functions import LogUtility, PowerUtility, ScaledUtility
from repro.utility.tolerance import close_enough, is_zero

if TYPE_CHECKING:
    from repro.core.lrgp import LRGPConfig
    from repro.obs.telemetry import PriceProbe

FloatArray = NDArray[np.float64]
IntArray = NDArray[np.int64]

#: Utility-family codes used by the batched rate solver.
FAMILY_LOG = 0
FAMILY_POW = 1
FAMILY_GENERIC = 2

#: The lowered layouts :class:`VectorizedEngine` accepts.
LAYOUTS = ("auto", "dense", "sparse")

#: Smallest flow count at which ``layout="auto"`` picks the sparse layout.
#: Measured crossover (``benchmarks/results/BENCH_engines.json``,
#: ``"layout"`` section): below it the incidence matrices are small enough
#: that one BLAS matmul ties or beats three bincount scatter-adds (ratios
#: 0.94-1.05x up to ~64 flows); from ~128 flows the dense products touch
#: mostly-zero cells and the sparse layout wins on time (1.2x at 1k flows
#: over a 10k-link fabric) and decisively on memory (the 1k-flow leaf-spine
#: incidence is ~290x smaller sparse than dense).
SPARSE_MIN_FLOWS = 128

#: Bisection tolerances for the fallback column, matching the reference
#: root finder (``repro.utility.calculus``).
_BISECT_XTOL = 1e-10
_BISECT_RTOL = 1e-12
_BISECT_MAX_ITER = 200


def _classify(
    utility: UtilityFunction, factor: float = 1.0
) -> tuple[int, float, float, float]:
    """Map a utility onto ``(family, effective_scale, offset, exponent)``.

    :class:`~repro.utility.functions.ScaledUtility` wrappers are unwrapped
    recursively, folding their factor into the effective scale; anything
    that is not (a rescaling of) the log or power family is generic and
    handled by the fallback column.
    """
    if isinstance(utility, ScaledUtility):
        return _classify(utility.base, factor * utility.factor)
    if isinstance(utility, LogUtility):
        return FAMILY_LOG, factor * utility.scale, utility.offset, 0.0
    if isinstance(utility, PowerUtility):
        return FAMILY_POW, factor * utility.scale, 0.0, utility.exponent
    return FAMILY_GENERIC, 0.0, 0.0, 0.0


@dataclass(frozen=True)
class CompiledProblem:
    """A :class:`Problem` lowered to index and incidence arrays.

    Index vocabularies are sorted tuples of ids; every array is positioned
    on them.  The incidence is stored *sparse-first* as parallel COO-style
    index arrays in row-major order: ``(ln_link, ln_flow, ln_cost)`` holds
    one entry per (bottleneck link, flow-on-it) pair — the paper's ``L``
    restricted to its nonzero pattern — and ``(fn_node, fn_flow,
    fn_cost)`` one entry per (consumer node, flow-at-it) pair (``F``).
    ``consumer_cost`` holds ``G`` for each class at its hosting node and
    ``class_fn_index`` points each class at its node/flow cell in the
    ``fn_*`` arrays (the class's node is always on its flow's route, so
    the cell always exists) for one-pass scatter-add of the
    population-dependent eq. 9 coefficients.  The dense matrices
    (:attr:`link_cost`, :attr:`flow_node_cost`) and the dense flattened
    cell ids (``class_cell``) are materialized lazily from the sparse
    entries for the dense layout and the test surface; a sparse-layout
    run never allocates them.  The ``*_class_positions`` arrays pre-split
    the class axis by utility family so the batched evaluators touch only
    the columns they understand.
    """

    problem: Problem
    flow_ids: tuple[FlowId, ...]
    node_ids: tuple[NodeId, ...]
    link_ids: tuple[LinkId, ...]
    class_ids: tuple[ClassId, ...]
    rate_min: FloatArray
    rate_max: FloatArray
    node_capacity: FloatArray
    link_capacity: FloatArray
    ln_link: IntArray
    ln_flow: IntArray
    ln_cost: FloatArray
    fn_node: IntArray
    fn_flow: IntArray
    fn_cost: FloatArray
    consumer_cost: FloatArray
    class_flow: IntArray
    class_node: IntArray
    class_fn_index: IntArray
    max_consumers: IntArray
    utilities: tuple[UtilityFunction, ...]
    class_family: IntArray
    class_scale: FloatArray
    class_offset: FloatArray
    class_exponent: FloatArray
    flow_family: IntArray
    flow_offset: FloatArray
    flow_exponent: FloatArray
    node_class_positions: tuple[IntArray, ...]
    log_class_positions: IntArray
    pow_class_positions: IntArray
    generic_class_positions: IntArray

    @property
    def n_flows(self) -> int:
        return len(self.flow_ids)

    @property
    def n_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def n_links(self) -> int:
        return len(self.link_ids)

    @property
    def n_classes(self) -> int:
        return len(self.class_ids)

    @property
    def nnz_link(self) -> int:
        """Stored (link, flow) incidence entries."""
        return int(self.ln_cost.size)

    @property
    def nnz_node(self) -> int:
        """Stored (node, flow) incidence entries."""
        return int(self.fn_cost.size)

    # -- lazily materialized dense views -----------------------------------

    @cached_property
    def link_cost(self) -> FloatArray:
        """The dense ``L`` matrix (bottleneck links x flows), built on
        first access from the sparse entries."""
        dense = np.zeros((self.n_links, self.n_flows), dtype=np.float64)
        dense[self.ln_link, self.ln_flow] = self.ln_cost
        return dense

    @cached_property
    def flow_node_cost(self) -> FloatArray:
        """The dense ``F`` matrix (consumer nodes x flows), built on first
        access from the sparse entries."""
        dense = np.zeros((self.n_nodes, self.n_flows), dtype=np.float64)
        dense[self.fn_node, self.fn_flow] = self.fn_cost
        return dense

    @cached_property
    def class_cell(self) -> IntArray:
        """Flattened dense ``(node, flow)`` cell id per class (the dense
        layout's scatter-add target)."""
        return np.asarray(
            self.class_node * self.n_flows + self.class_flow, dtype=np.int64
        )

    def dense_materialized(self) -> bool:
        """Whether any dense incidence matrix has been built.

        The sparse-scale memory guard asserts this stays ``False`` across
        a sparse-layout solve — peak compiled-array memory then provably
        scales with the incidence nonzeros.
        """
        return "link_cost" in self.__dict__ or "flow_node_cost" in self.__dict__

    def sparse_nbytes(self) -> int:
        """Bytes held by the sparse incidence entries (both axes)."""
        return int(
            self.ln_link.nbytes
            + self.ln_flow.nbytes
            + self.ln_cost.nbytes
            + self.fn_node.nbytes
            + self.fn_flow.nbytes
            + self.fn_cost.nbytes
            + self.class_fn_index.nbytes
        )

    def dense_nbytes(self) -> int:
        """Bytes the dense incidence matrices would occupy."""
        return 8 * (self.n_links + self.n_nodes) * self.n_flows

    # -- dict <-> vector converters ---------------------------------------

    def rates_vector(self, rates: dict[FlowId, float] | None = None) -> FloatArray:
        """Per-flow rate vector; missing entries default to ``rate_min``."""
        if rates is None:
            return self.rate_min.copy()
        return np.array(
            [
                float(rates.get(fid, self.problem.flows[fid].rate_min))
                for fid in self.flow_ids
            ],
            dtype=np.float64,
        )

    def populations_vector(
        self, populations: dict[ClassId, int] | None = None
    ) -> IntArray:
        """Per-class population vector; missing entries default to 0."""
        if populations is None:
            return np.zeros(self.n_classes, dtype=np.int64)
        return np.array(
            [int(populations.get(cid, 0)) for cid in self.class_ids], dtype=np.int64
        )

    def node_prices_vector(self, prices: dict[NodeId, float]) -> FloatArray:
        return np.array(
            [float(prices.get(nid, 0.0)) for nid in self.node_ids], dtype=np.float64
        )

    def link_prices_vector(self, prices: dict[LinkId, float]) -> FloatArray:
        return np.array(
            [float(prices.get(lid, 0.0)) for lid in self.link_ids], dtype=np.float64
        )

    def rates_dict(self, rates: FloatArray) -> dict[FlowId, float]:
        return {fid: float(rates[i]) for i, fid in enumerate(self.flow_ids)}

    def populations_dict(self, populations: IntArray) -> dict[ClassId, int]:
        return {cid: int(populations[j]) for j, cid in enumerate(self.class_ids)}

    # -- lowered accounting, dense layout ----------------------------------

    def consumer_coefficients(self, populations: FloatArray) -> FloatArray:
        """Per ``(node, flow)`` marginal footprint ``F + sum_j G_j n_j``.

        The population-dependent part of the eq. 9 coefficient and of the
        node usage (eq. 5), scatter-added over ``class_cell`` — allocates
        the full dense node x flow grid per call (dense layout only).
        """
        cell = np.bincount(
            self.class_cell,
            weights=self.consumer_cost * populations,
            minlength=self.n_nodes * self.n_flows,
        ).reshape(self.n_nodes, self.n_flows)
        return np.asarray(self.flow_node_cost + cell, dtype=np.float64)

    def flow_prices(
        self,
        populations: FloatArray,
        node_prices: FloatArray,
        link_prices: FloatArray,
    ) -> FloatArray:
        """``PL_i + PB_i`` for every flow at once (eq. 8-9), dense layout."""
        pl = link_prices @ self.link_cost
        pb = node_prices @ self.consumer_coefficients(populations)
        return np.asarray(pl + pb, dtype=np.float64)

    def link_usages(self, rates: FloatArray) -> FloatArray:
        """LHS of eq. 4 for every bottleneck link: ``L @ r``, dense layout."""
        return np.asarray(self.link_cost @ rates, dtype=np.float64)

    def node_usages(self, rates: FloatArray, populations: FloatArray) -> FloatArray:
        """LHS of eq. 5 for every consumer node, dense layout."""
        return np.asarray(
            self.consumer_coefficients(populations) @ rates, dtype=np.float64
        )

    # -- lowered accounting, sparse layout ---------------------------------

    def cell_coefficients(self, populations: FloatArray) -> FloatArray:
        """Eq. 9 coefficients ``F + sum_j G_j n_j`` per *stored* cell.

        The sparse counterpart of :meth:`consumer_coefficients`: one entry
        per ``fn_*`` incidence pair instead of the full node x flow grid.
        Every class scatter-adds into its own cell via ``class_fn_index``.
        """
        return np.asarray(
            self.fn_cost
            + np.bincount(
                self.class_fn_index,
                weights=self.consumer_cost * populations,
                minlength=self.nnz_node,
            ),
            dtype=np.float64,
        )

    def flow_prices_sparse(
        self,
        populations: FloatArray,
        node_prices: FloatArray,
        link_prices: FloatArray,
    ) -> FloatArray:
        """``PL_i + PB_i`` for every flow (eq. 8-9) via scatter-adds."""
        pl = np.bincount(
            self.ln_flow,
            weights=link_prices[self.ln_link] * self.ln_cost,
            minlength=self.n_flows,
        )
        pb = np.bincount(
            self.fn_flow,
            weights=node_prices[self.fn_node] * self.cell_coefficients(populations),
            minlength=self.n_flows,
        )
        return np.asarray(pl + pb, dtype=np.float64)

    def link_usages_sparse(self, rates: FloatArray) -> FloatArray:
        """LHS of eq. 4 for every bottleneck link via scatter-adds."""
        return np.asarray(
            np.bincount(
                self.ln_link,
                weights=self.ln_cost * rates[self.ln_flow],
                minlength=self.n_links,
            ),
            dtype=np.float64,
        )

    def node_usages_sparse(
        self, rates: FloatArray, populations: FloatArray
    ) -> FloatArray:
        """LHS of eq. 5 for every consumer node via scatter-adds."""
        return np.asarray(
            np.bincount(
                self.fn_node,
                weights=self.cell_coefficients(populations) * rates[self.fn_flow],
                minlength=self.n_nodes,
            ),
            dtype=np.float64,
        )

    def node_flow_costs_sparse(self, rates: FloatArray) -> FloatArray:
        """Per-node consumer-independent flow cost ``sum_i F_{b,i} r_i``."""
        return np.asarray(
            np.bincount(
                self.fn_node,
                weights=self.fn_cost * rates[self.fn_flow],
                minlength=self.n_nodes,
            ),
            dtype=np.float64,
        )

    # -- layout-independent accounting -------------------------------------

    def class_values(self, rates: FloatArray) -> FloatArray:
        """``U_j(r_{flowMap(j)})`` for every class (batched by family)."""
        class_rate = rates[self.class_flow]
        n = self.n_classes
        if self.log_class_positions.size == n:
            return np.asarray(
                self.class_scale * np.log(self.class_offset + class_rate),
                dtype=np.float64,
            )
        if self.pow_class_positions.size == n:
            return np.asarray(
                self.class_scale * class_rate**self.class_exponent, dtype=np.float64
            )
        out = np.empty(n, dtype=np.float64)
        idx = self.log_class_positions
        if idx.size:
            out[idx] = self.class_scale[idx] * np.log(
                self.class_offset[idx] + class_rate[idx]
            )
        idx = self.pow_class_positions
        if idx.size:
            out[idx] = self.class_scale[idx] * class_rate[idx] ** self.class_exponent[idx]
        for pos in self.generic_class_positions:
            out[pos] = self.utilities[int(pos)].value(float(class_rate[pos]))
        return out

    def total_utility(self, rates: FloatArray, populations: IntArray) -> float:
        """The objective (eq. 6) on lowered state.

        Zero-population classes contribute exactly ``0 * U_j = 0``, so the
        plain dot product equals the reference's skip-if-empty sum.
        """
        values = self.class_values(rates)
        return float(np.dot(populations.astype(np.float64), values))


def compile_problem(problem: Problem) -> CompiledProblem:
    """Lower ``problem`` into a :class:`CompiledProblem`.

    Pure indexing and coefficient gathering — no optimizer state, and no
    dense incidence allocation (memory here is ``O(nonzeros + classes)``;
    the dense matrices build lazily only when asked for).  The result is
    immutable and reusable across engines bound to the same problem.
    """
    flow_ids = tuple(sorted(problem.flows))
    node_ids = problem.consumer_nodes()
    link_ids = problem.bottleneck_links()
    class_ids = tuple(sorted(problem.classes))
    flow_pos = {fid: i for i, fid in enumerate(flow_ids)}
    node_pos = {nid: b for b, nid in enumerate(node_ids)}

    n_classes = len(class_ids)

    rate_min = np.array([problem.flows[f].rate_min for f in flow_ids], dtype=np.float64)
    rate_max = np.array([problem.flows[f].rate_max for f in flow_ids], dtype=np.float64)
    node_capacity = np.array(
        [problem.nodes[n].capacity for n in node_ids], dtype=np.float64
    )
    link_capacity = np.array(
        [problem.links[l].capacity for l in link_ids], dtype=np.float64
    )

    # Sparse incidence entries in row-major (link- / node-major, then flow)
    # order: one entry per pair in the problem's incidence maps, zero-cost
    # pairs included — the *pattern* is what classes scatter into.
    ln_link_list: list[int] = []
    ln_flow_list: list[int] = []
    ln_cost_list: list[float] = []
    for l, lid in enumerate(link_ids):
        for i in sorted(flow_pos[fid] for fid in problem.flows_on_link(lid)):
            ln_link_list.append(l)
            ln_flow_list.append(i)
            ln_cost_list.append(problem.costs.link(lid, flow_ids[i]))
    fn_node_list: list[int] = []
    fn_flow_list: list[int] = []
    fn_cost_list: list[float] = []
    cell_index: dict[tuple[int, int], int] = {}
    for b, nid in enumerate(node_ids):
        for i in sorted(flow_pos[fid] for fid in problem.flows_at_node(nid)):
            cell_index[(b, i)] = len(fn_node_list)
            fn_node_list.append(b)
            fn_flow_list.append(i)
            fn_cost_list.append(problem.costs.flow_node(nid, flow_ids[i]))

    class_flow = np.empty(n_classes, dtype=np.int64)
    class_node = np.empty(n_classes, dtype=np.int64)
    class_fn_index = np.empty(n_classes, dtype=np.int64)
    max_consumers = np.empty(n_classes, dtype=np.int64)
    consumer_cost = np.empty(n_classes, dtype=np.float64)
    class_family = np.empty(n_classes, dtype=np.int64)
    class_scale = np.zeros(n_classes, dtype=np.float64)
    class_offset = np.zeros(n_classes, dtype=np.float64)
    class_exponent = np.zeros(n_classes, dtype=np.float64)
    utilities: list[UtilityFunction] = []
    for j, cid in enumerate(class_ids):
        cls = problem.classes[cid]
        class_flow[j] = flow_pos[cls.flow_id]
        class_node[j] = node_pos[cls.node]
        # build_problem guarantees the class node is on the flow's route,
        # so the (node, flow) cell exists in the stored pattern.
        class_fn_index[j] = cell_index[(int(class_node[j]), int(class_flow[j]))]
        max_consumers[j] = cls.max_consumers
        consumer_cost[j] = problem.costs.consumer(cls.node, cid)
        family, scale, offset, exponent = _classify(cls.utility)
        class_family[j] = family
        class_scale[j] = scale
        class_offset[j] = offset
        class_exponent[j] = exponent
        utilities.append(cls.utility)

    n_flows = len(flow_ids)
    flow_family = np.full(n_flows, FAMILY_GENERIC, dtype=np.int64)
    flow_offset = np.zeros(n_flows, dtype=np.float64)
    flow_exponent = np.zeros(n_flows, dtype=np.float64)
    for i in range(n_flows):
        members = np.nonzero(class_flow == i)[0]
        if members.size == 0:
            # No consumers ever: the rate solver only hits boundary cases,
            # so the family is irrelevant; log keeps it off the fallback.
            flow_family[i] = FAMILY_LOG
            continue
        families = class_family[members]
        if np.all(families == FAMILY_LOG):
            offsets = class_offset[members]
            # Exact equality on purpose: it mirrors the reference solver's
            # grouping test (same-offset log terms collapse in closed form).
            if np.all(offsets == offsets[0]):
                flow_family[i] = FAMILY_LOG
                flow_offset[i] = offsets[0]
        elif np.all(families == FAMILY_POW):
            exponents = class_exponent[members]
            if np.all(exponents == exponents[0]):
                flow_family[i] = FAMILY_POW
                flow_exponent[i] = exponents[0]

    node_class_positions = tuple(
        np.nonzero(class_node == b)[0].astype(np.int64)
        for b in range(len(node_ids))
    )

    return CompiledProblem(
        problem=problem,
        flow_ids=flow_ids,
        node_ids=node_ids,
        link_ids=link_ids,
        class_ids=class_ids,
        rate_min=rate_min,
        rate_max=rate_max,
        node_capacity=node_capacity,
        link_capacity=link_capacity,
        ln_link=np.array(ln_link_list, dtype=np.int64),
        ln_flow=np.array(ln_flow_list, dtype=np.int64),
        ln_cost=np.array(ln_cost_list, dtype=np.float64),
        fn_node=np.array(fn_node_list, dtype=np.int64),
        fn_flow=np.array(fn_flow_list, dtype=np.int64),
        fn_cost=np.array(fn_cost_list, dtype=np.float64),
        consumer_cost=consumer_cost,
        class_flow=class_flow,
        class_node=class_node,
        class_fn_index=class_fn_index,
        max_consumers=max_consumers,
        utilities=tuple(utilities),
        class_family=class_family,
        class_scale=class_scale,
        class_offset=class_offset,
        class_exponent=class_exponent,
        flow_family=flow_family,
        flow_offset=flow_offset,
        flow_exponent=flow_exponent,
        node_class_positions=node_class_positions,
        log_class_positions=np.nonzero(class_family == FAMILY_LOG)[0].astype(np.int64),
        pow_class_positions=np.nonzero(class_family == FAMILY_POW)[0].astype(np.int64),
        generic_class_positions=np.nonzero(class_family == FAMILY_GENERIC)[0].astype(
            np.int64
        ),
    )


def _validate_initial_price(price: float, what: str) -> float:
    if math.isnan(price) or math.isinf(price) or price < 0.0:
        raise ValueError(f"{what} must be finite and non-negative, got {price}")
    return price


@dataclass
class _NodeState:
    """Preserved per-node controller state across a rebind (figure 3)."""

    capacity: float
    price: float
    gamma: float
    last_delta: float
    has_last: bool


class VectorizedEngine(LRGPEngine):
    """Runs the full LRGP iteration as numpy array ops on lowered state.

    Supports the stock greedy admission and the fixed/adaptive gamma
    schedules; configs carrying a custom admission strategy or gamma
    subclass must use the reference engine (the constructor fails loudly
    rather than silently diverging from the configured behavior).

    ``layout`` selects the lowered incidence representation: ``"dense"``
    (matrix products), ``"sparse"`` (bincount scatter-adds over the COO
    entries), or ``"auto"`` (sparse from :data:`SPARSE_MIN_FLOWS` flows,
    the measured crossover).  Both layouts produce trajectories
    bit-identical to each other and to the reference engine within the
    pinned tolerance — the layout is a performance choice, never a
    semantic one.
    """

    name = "vectorized"

    def __init__(
        self,
        problem: Problem,
        config: "LRGPConfig",
        layout: str = "auto",
    ) -> None:
        if config.admission is not allocate_consumers:
            raise ValueError(
                "the vectorized engine implements the paper's greedy admission "
                "only; use engine='reference' for custom admission strategies"
            )
        if layout not in LAYOUTS:
            raise ValueError(
                f"unknown layout {layout!r}; expected one of {', '.join(LAYOUTS)}"
            )
        proto = config.node_gamma
        if type(proto) is FixedGamma:
            self._adaptive = False
            self._gamma_initial = proto.gamma
            self._gamma_increment = 0.0
            self._gamma_backoff = 1.0
            self._gamma_lower = 0.0
            self._gamma_upper = math.inf
        elif type(proto) is AdaptiveGamma:
            self._adaptive = True
            self._gamma_initial = proto.initial
            self._gamma_increment = proto.increment
            self._gamma_backoff = proto.backoff
            self._gamma_lower = proto.lower
            self._gamma_upper = proto.upper
        else:
            raise ValueError(
                "the vectorized engine supports FixedGamma and AdaptiveGamma "
                "schedules only; use engine='reference' for "
                f"{type(proto).__name__}"
            )
        # Reuse the schedule's own validation for the link step size.
        self._link_gamma = FixedGamma(config.link_gamma).gamma
        _validate_initial_price(config.initial_node_price, "initial node price")
        _validate_initial_price(config.initial_link_price, "initial link price")
        self._config = config
        self._layout = layout
        if layout != "auto":
            self.name = f"vectorized-{layout}"
        self._compiled: CompiledProblem | None = None
        self._node_probes: list["PriceProbe | None"] = []
        self._link_probes: list["PriceProbe | None"] = []
        self.bind(problem, preserve_state=False)

    # -- accessors ----------------------------------------------------------

    @property
    def problem(self) -> Problem:
        return self.compiled.problem

    @property
    def compiled(self) -> CompiledProblem:
        """The lowered problem the engine is currently bound to."""
        if self._compiled is None:  # pragma: no cover - bind() runs in __init__
            raise RuntimeError("engine is not bound to a problem")
        return self._compiled

    @property
    def sparse(self) -> bool:
        """Whether the current binding runs the sparse layout."""
        return self._sparse

    def rates(self) -> dict[FlowId, float]:
        return self.compiled.rates_dict(self._rates)

    def populations(self) -> dict[ClassId, int]:
        return {
            cid: self._populations[j]
            for j, cid in enumerate(self.compiled.class_ids)
        }

    def node_prices(self) -> dict[NodeId, float]:
        return dict(zip(self.compiled.node_ids, self._node_price))

    def link_prices(self) -> dict[LinkId, float]:
        return dict(zip(self.compiled.link_ids, self._link_price))

    def node_gammas(self) -> dict[NodeId, float]:
        return dict(zip(self.compiled.node_ids, self._gamma))

    # -- binding ------------------------------------------------------------

    def bind(self, problem: Problem, preserve_state: bool) -> None:
        old_rates: dict[FlowId, float] = {}
        old_populations: dict[ClassId, int] = {}
        old_nodes: dict[NodeId, _NodeState] = {}
        old_links: dict[LinkId, tuple[float, float]] = {}
        if preserve_state and self._compiled is not None:
            previous = self.compiled
            old_rates = self.rates()
            old_populations = self.populations()
            for b, nid in enumerate(previous.node_ids):
                old_nodes[nid] = _NodeState(
                    capacity=float(previous.node_capacity[b]),
                    price=self._node_price[b],
                    gamma=self._gamma[b],
                    last_delta=self._last_delta[b],
                    has_last=self._has_last[b],
                )
            for l, lid in enumerate(previous.link_ids):
                old_links[lid] = (
                    float(previous.link_capacity[l]),
                    self._link_price[l],
                )

        # Lowering is the one compile-shaped cost of a (re)bind, so it gets
        # its own profiler phase; the reference engine has no counterpart
        # (its pinned phase tree is untouched).
        with self._config.telemetry.profiler.phase("lower"):
            compiled = compile_problem(problem)
        self._compiled = compiled
        self._sparse = self._layout == "sparse" or (
            self._layout == "auto" and compiled.n_flows >= SPARSE_MIN_FLOWS
        )
        self._rates = compiled.rates_vector(old_rates or None)
        self._populations: list[int] = [
            int(n) for n in compiled.populations_vector(old_populations or None)
        ]

        config = self._config
        n_nodes, n_links = compiled.n_nodes, compiled.n_links
        # Node/link controller state lives in plain Python lists: the axes
        # are short and the scalar update loops mirror the reference
        # controllers' float arithmetic exactly.
        initial_node_price = float(config.initial_node_price)
        self._node_price: list[float] = [initial_node_price] * n_nodes
        self._gamma: list[float] = [self._gamma_initial] * n_nodes
        self._last_delta: list[float] = [0.0] * n_nodes
        self._has_last: list[bool] = [False] * n_nodes
        for b, nid in enumerate(compiled.node_ids):
            state = old_nodes.get(nid)
            if state is not None and close_enough(
                state.capacity, float(compiled.node_capacity[b])
            ):
                self._node_price[b] = state.price
                self._gamma[b] = state.gamma
                self._last_delta[b] = state.last_delta
                self._has_last[b] = state.has_last
        initial_link_price = float(config.initial_link_price)
        self._link_price: list[float] = [initial_link_price] * n_links
        for l, lid in enumerate(compiled.link_ids):
            entry = old_links.get(lid)
            if entry is not None and close_enough(
                entry[0], float(compiled.link_capacity[l])
            ):
                self._link_price[l] = entry[1]

        # Static per-bind precomputation: which utility families are present
        # (to skip dead closed-form columns), the power-family exponent
        # transforms, and plain-Python views of the admission inputs — the
        # greedy fill is scalar work, where lists beat numpy indexing.
        pow_flows = compiled.flow_family == FAMILY_POW
        self._has_log_flows = bool(np.any(compiled.flow_family == FAMILY_LOG))
        self._has_pow_flows = bool(np.any(pow_flows))
        self._log_flow_mask = compiled.flow_family == FAMILY_LOG
        self._pow_safe_exponent = np.where(pow_flows, compiled.flow_exponent, 1.0)
        self._pow_inverse_exponent = np.where(
            pow_flows, 1.0 / (compiled.flow_exponent - 1.0), 0.0
        )
        self._generic_flow_positions = [
            int(i) for i in np.nonzero(compiled.flow_family == FAMILY_GENERIC)[0]
        ]
        self._node_class_lists = [
            [int(j) for j in members] for members in compiled.node_class_positions
        ]
        self._max_consumers_list = [int(m) for m in compiled.max_consumers]
        # Budget needed to admit every chargeable class at n^max, assuming
        # its flow rate (the ratio-independent part); rate joins per step.
        self._max_consumers_float = compiled.max_consumers.astype(np.float64)
        self._node_capacity_list = [float(c) for c in compiled.node_capacity]
        self._link_capacity_list = [float(c) for c in compiled.link_capacity]

        telemetry = config.telemetry
        if telemetry.enabled:
            self._node_probes = [
                telemetry.probe("node", nid) for nid in compiled.node_ids
            ]
            self._link_probes = [
                telemetry.probe("link", lid) for lid in compiled.link_ids
            ]
        else:
            self._node_probes = []
            self._link_probes = []

    # -- one iteration -------------------------------------------------------

    def step(self) -> StepOutcome:
        compiled = self.compiled
        telemetry = self._config.telemetry
        registry = telemetry.registry
        profiler = telemetry.profiler
        snapshots = self._config.record_snapshots
        sparse = self._sparse
        slack: dict[str, float] = {}

        with registry.timer("lrgp.iteration"), profiler.phase("iteration"):
            # 1. Rate allocation (Algorithm 1): prices from last iteration's
            #    populations, then the batched argmax of eq. 7.
            with registry.timer("lrgp.rate_allocation"), profiler.phase("argmax"):
                populations = np.array(self._populations, dtype=np.float64)
                flow_prices = (
                    compiled.flow_prices_sparse if sparse else compiled.flow_prices
                )
                prices = flow_prices(
                    populations,
                    np.array(self._node_price, dtype=np.float64),
                    np.array(self._link_price, dtype=np.float64),
                )
                self._rates = self._solve_rates(prices, populations)

            # 2. Consumer allocation (Algorithm 2) and node prices (eq. 12).
            #    Same phase names as the reference engine, so profiles of
            #    the two engines diff phase-for-phase; γ observation runs
            #    inline in _update_node_prices and folds into price_update.
            with registry.timer("lrgp.consumer_allocation"):
                with profiler.phase("admission"):
                    values = compiled.class_values(self._rates)
                    new_populations, used, best = self._admit(values)
                    self._populations = new_populations
                with profiler.phase("price_update"):
                    self._update_node_prices(best, used)
                if snapshots:
                    for b, nid in enumerate(compiled.node_ids):
                        slack[f"node:{nid}"] = self._node_capacity_list[b] - used[b]
                if telemetry.enabled:
                    for b, nid in enumerate(compiled.node_ids):
                        telemetry.emit(
                            AdmissionEvent(
                                node=nid,
                                admitted={
                                    compiled.class_ids[j]: new_populations[j]
                                    for j in self._node_class_lists[b]
                                },
                                used=used[b],
                                capacity=self._node_capacity_list[b],
                                best_ratio=best[b],
                                t_ns=now_ns(),
                            )
                        )

            # 3. Link prices (eq. 13).
            with registry.timer("lrgp.link_prices"), profiler.phase("price_update"):
                if compiled.n_links:
                    link_usages = (
                        compiled.link_usages_sparse if sparse else compiled.link_usages
                    )
                    usage = link_usages(self._rates).tolist()
                    self._update_link_prices(usage)
                    if snapshots:
                        for l, lid in enumerate(compiled.link_ids):
                            slack[f"link:{lid}"] = (
                                self._link_capacity_list[l] - usage[l]
                            )

            # Zero populations contribute exactly 0, so the dot product
            # equals the reference's skip-if-empty objective sum (eq. 6).
            utility = float(
                np.dot(np.array(new_populations, dtype=np.float64), values)
            )

        return StepOutcome(utility=utility, slack=slack)

    # -- rate allocation ------------------------------------------------------

    def _solve_rates(self, prices: FloatArray, populations: FloatArray) -> FloatArray:
        """Batched argmax of eq. 7 for every flow.

        Boundary cases first (no active consumers, non-positive price), then
        the closed forms per family clamped to the rate bounds — equivalent
        to the reference's explicit boundary-derivative checks because the
        objective's derivative is strictly decreasing.  Flows marked generic
        go through the bisection fallback.
        """
        compiled = self.compiled
        n_flows = len(compiled.flow_ids)
        # Sum of populations per flow: > 0 iff any class is active.
        active = (
            np.bincount(compiled.class_flow, weights=populations, minlength=n_flows)
            > 0.0
        )
        positive = prices > 0.0
        boundary = np.where(positive, compiled.rate_min, compiled.rate_max)
        interior = active & positive

        total_scale = np.bincount(
            compiled.class_flow,
            weights=populations * compiled.class_scale,
            minlength=n_flows,
        )
        # Whole-array closed forms; junk lanes (price 0, inactive, generic)
        # produce inf/nan that the interior mask filters out below.
        closed: FloatArray | None = None
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            if self._has_log_flows:
                closed = total_scale / prices - compiled.flow_offset
            if self._has_pow_flows:
                pow_closed = (
                    prices / (total_scale * self._pow_safe_exponent)
                ) ** self._pow_inverse_exponent
                closed = (
                    pow_closed
                    if closed is None
                    else np.where(self._log_flow_mask, closed, pow_closed)
                )
        if closed is not None:
            clamped = np.minimum(
                np.maximum(closed, compiled.rate_min), compiled.rate_max
            )
            rates = np.where(interior, clamped, boundary)
        else:
            rates = boundary

        for i in self._generic_flow_positions:
            if interior[i]:
                rates[i] = self._solve_generic(i, float(prices[i]), populations)
        return np.asarray(rates, dtype=np.float64)

    def _solve_generic(
        self, flow_pos: int, price: float, populations: FloatArray
    ) -> float:
        """The fallback column: bracketed bisection on the eq. 7 derivative.

        Triggered for flows whose classes mix utility shapes (or use a shape
        outside the log/power families).  Matches the reference solver's
        bracketing semantics: boundary optima are resolved before bisecting.
        """
        compiled = self.compiled
        lo = float(compiled.rate_min[flow_pos])
        hi = float(compiled.rate_max[flow_pos])
        terms = [
            (float(populations[j]), compiled.utilities[int(j)])
            for j in np.nonzero(compiled.class_flow == flow_pos)[0]
            if populations[j] > 0.0
        ]

        def derivative(rate: float) -> float:
            return sum(weight * utility.derivative(rate) for weight, utility in terms)

        if derivative(hi) >= price:
            return hi
        if derivative(lo) <= price:
            return lo
        for _ in range(_BISECT_MAX_ITER):
            mid = 0.5 * (lo + hi)
            if mid <= lo or mid >= hi:
                break
            if derivative(mid) > price:
                lo = mid
            else:
                hi = mid
            if hi - lo <= _BISECT_XTOL + _BISECT_RTOL * abs(mid):
                break
        return 0.5 * (lo + hi)

    # -- consumer allocation ---------------------------------------------------

    def _admit(
        self, values: FloatArray
    ) -> tuple[list[int], list[float], list[float]]:
        """Greedy admission (Algorithm 2), bucketed per node.

        Ratios (eq. 10) are computed for all classes at once; each node
        then fills its budget independently.  Two bucket regimes keep the
        work near-linear in the *admitted* classes instead of the sorted
        ones:

        * **uncovered nodes** (budget >= cost of admitting everything, one
          vectorized per-node reduction): every class saturates at
          ``n^max`` regardless of order, so no sort happens at all;
        * **contended nodes**: chargeable classes go on a max-heap keyed
          ``(-ratio, position)`` — descending ratio, ties by class id,
          exactly the reference's sort key — and are popped only until
          the budget is spent.  Classes never popped keep population 0,
          which is precisely what the reference's post-exhaustion loop
          assigns them.

        Zero-cost classes admit everyone without touching the budget in
        the reference, so hoisting them out of the ordering is exact.
        The fill itself runs over plain Python floats so admission counts
        match the reference bit for bit.  Returns ``(populations, used,
        best_unsatisfied_ratio)``.
        """
        compiled = self.compiled
        class_rate = self._rates[compiled.class_flow]
        unit_cost = compiled.consumer_cost * class_rate
        ratios = np.zeros(compiled.n_classes, dtype=np.float64)
        chargeable = unit_cost > 0.0
        np.divide(values, unit_cost, out=ratios, where=chargeable)
        free_and_useful = ~chargeable & (values > 0.0)
        if free_and_useful.any():
            ratios[free_and_useful] = np.inf

        if self._sparse:
            flow_cost = compiled.node_flow_costs_sparse(self._rates).tolist()
        else:
            flow_cost = (compiled.flow_node_cost @ self._rates).tolist()
        # Budget needed to saturate every chargeable class, per node: when
        # it fits, the greedy outcome is order-independent (see docstring).
        need = np.bincount(
            compiled.class_node,
            weights=np.where(chargeable, unit_cost * self._max_consumers_float, 0.0),
            minlength=compiled.n_nodes,
        ).tolist()

        cost_list = unit_cost.tolist()
        ratio_list = ratios.tolist()
        max_list = self._max_consumers_list
        populations = [0] * compiled.n_classes
        used: list[float] = []
        best: list[float] = []
        isfinite = math.isfinite
        heappush_all = heapq.heapify
        heappop = heapq.heappop
        for b, capacity in enumerate(self._node_capacity_list):
            node_flow_cost = flow_cost[b]
            budget = capacity - node_flow_cost
            consumer_total = 0.0
            members = self._node_class_lists[b]
            if need[b] <= budget:
                # Uncovered: everything saturates, in any order.
                for j in members:
                    populations[j] = max_list[j]
                consumer_total = need[b]
            else:
                heap: list[tuple[float, int]] = []
                for j in members:
                    if cost_list[j] <= 0.0:
                        populations[j] = max_list[j]
                    else:
                        heap.append((-ratio_list[j], j))
                heappush_all(heap)
                while heap and budget > 0.0:
                    _, j = heappop(heap)
                    cost_per_consumer = cost_list[j]
                    admitted = int(budget / cost_per_consumer + _FLOOR_SLACK)
                    cap = max_list[j]
                    if admitted > cap:
                        admitted = cap
                    populations[j] = admitted
                    spent = admitted * cost_per_consumer
                    budget -= spent
                    consumer_total += spent
            # BC(b,t) (eq. 11): best ratio among still-unsatisfied classes,
            # 0 when there are none (max(..., default=0.0) in the reference).
            best_ratio: float | None = None
            for j in members:
                ratio = ratio_list[j]
                if (
                    populations[j] < max_list[j]
                    and (best_ratio is None or ratio > best_ratio)
                    and isfinite(ratio)
                ):
                    best_ratio = ratio
            used.append(node_flow_cost + consumer_total)
            best.append(0.0 if best_ratio is None else best_ratio)
        return populations, used, best

    # -- price updates ----------------------------------------------------------

    def _update_node_prices(self, best: list[float], used: list[float]) -> None:
        """Eq. 12 per node, mirroring :class:`NodePriceController` exactly,
        including the adaptive-gamma observation (section 4.2)."""
        prices = self._node_price
        gammas = self._gamma
        probes = self._node_probes
        adaptive = self._adaptive
        isfinite = math.isfinite
        for b, capacity in enumerate(self._node_capacity_list):
            benefit_cost = best[b]
            used_b = used[b]
            if not isfinite(benefit_cost) or benefit_cost < 0.0:
                raise ValueError(
                    "benefit_cost must be finite and non-negative, "
                    f"got {benefit_cost}"
                )
            if not isfinite(used_b) or used_b < 0.0:
                raise ValueError(
                    f"used must be finite and non-negative, got {used_b}"
                )
            old_price = prices[b]
            gamma = gammas[b]
            if used_b <= capacity:
                new_price = old_price + gamma * (benefit_cost - old_price)
                branch = "track"
            else:
                new_price = old_price + gamma * (used_b - capacity)
                branch = "violation"
            new_price = max(new_price, 0.0)
            prices[b] = new_price
            delta = new_price - old_price

            if adaptive:
                fluctuated = self._has_last[b] and delta * self._last_delta[b] < 0.0
                if fluctuated:
                    adjusted = gamma * self._gamma_backoff
                else:
                    adjusted = gamma + self._gamma_increment
                new_gamma = min(max(adjusted, self._gamma_lower), self._gamma_upper)
                gammas[b] = new_gamma
                if not is_zero(delta):
                    self._last_delta[b] = delta
                    self._has_last[b] = True
            else:
                fluctuated = False
                new_gamma = gamma

            if probes:
                probe = probes[b]
                if probe is None:
                    continue
                if adaptive and not is_zero(new_gamma - gamma):
                    probe.gamma_step(gamma, new_gamma, fluctuated)
                probe.price_update(
                    old_price,
                    new_price,
                    gamma,
                    branch,
                    usage=used_b,
                    capacity=capacity,
                )

    def _update_link_prices(self, usage: list[float]) -> None:
        """Eq. 13 (gradient projection) per bottleneck link, mirroring
        :class:`LinkPriceController` exactly."""
        prices = self._link_price
        probes = self._link_probes
        gamma = self._link_gamma
        isfinite = math.isfinite
        for l, capacity in enumerate(self._link_capacity_list):
            usage_l = usage[l]
            if not isfinite(usage_l) or usage_l < 0.0:
                raise ValueError(
                    f"usage must be finite and non-negative, got {usage_l}"
                )
            old_price = prices[l]
            new_price = max(old_price + gamma * (usage_l - capacity), 0.0)
            prices[l] = new_price
            if probes:
                probe = probes[l]
                if probe is not None:
                    probe.price_update(
                        old_price,
                        new_price,
                        gamma,
                        "gradient",
                        usage=usage_l,
                        capacity=capacity,
                    )
