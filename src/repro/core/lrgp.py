"""The synchronous LRGP driver (section 3).

One LRGP iteration is:

1. **Rate allocation** (Algorithm 1) at every flow source, using the prices
   and populations from the previous iteration;
2. **Consumer allocation** (Algorithm 2, step 2) at every consumer node,
   using the fresh rates;
3. **Node price update** (eq. 12) at every consumer node and **link price
   update** (eq. 13) for every link, closing the loop for the next
   iteration.

Since PR 3 the driver is a facade over a pluggable *engine*
(:mod:`repro.core.engines`): the engine owns the iteration state and
executes the three phases, the facade owns iteration counting, the utility
trajectory, records/events, and convergence.  ``engine="reference"`` (the
default) is the original dict-based composition of the per-agent
algorithms; ``engine="vectorized"`` runs the same iteration as numpy array
ops over a lowered problem (:mod:`repro.core.compiled`) with a trajectory
equivalent within :data:`repro.utility.tolerance.ENGINE_EQUIVALENCE_RTOL`.

The message-passing deployment of the very same steps lives in
:mod:`repro.runtime`; in synchronous mode it produces bit-identical
trajectories to the reference engine (verified by integration tests).

The driver supports runtime reconfiguration (flows leaving/joining,
capacity changes) to reproduce the recovery experiment of figure 3.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.canonical import content_hash
from repro.core.consumer_allocation import NodeAllocation, allocate_consumers
from repro.core.convergence import (
    DEFAULT_REL_AMPLITUDE,
    DEFAULT_WINDOW,
    ConvergenceCriterion,
    iterations_until_convergence,
)
from repro.core.engines import LRGPEngine, create_engine
from repro.core.gamma import AdaptiveGamma, FixedGamma, GammaSchedule
from repro.model.allocation import Allocation
from repro.model.entities import ClassId, FlowId, LinkId, NodeId
from repro.model.problem import Problem
from repro.obs.events import IterationEvent, now_ns
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry


#: Signature of a consumer-admission strategy: given the problem, a node and
#: the current rates, produce that node's :class:`NodeAllocation`.  The
#: default is the paper's greedy benefit/cost fill; the admission ablation
#: (:mod:`repro.experiments.ablations`) substitutes alternatives.
AdmissionStrategy = Callable[[Problem, NodeId, Mapping[FlowId, float]], NodeAllocation]


@dataclass(frozen=True)
class LRGPConfig:
    """Tuning knobs for the driver.

    ``node_gamma`` is a prototype schedule, cloned per node so each node
    adapts independently (section 4.2).  The default is the paper's adaptive
    heuristic.  ``link_gamma`` is the gradient-projection step size for link
    prices (only links with finite capacity maintain prices).

    ``engine`` selects the iteration-execution strategy by registry name
    (:mod:`repro.core.engines`): ``"reference"`` for the dict-based ground
    truth, ``"vectorized"`` for the numpy-compiled fast path.

    ``telemetry`` wires the driver into the observability layer
    (:mod:`repro.obs`): phase timers and counters go to its registry,
    ``iteration`` / ``admission`` / ``price_update`` / ``gamma_step``
    events to its sink.  The default :data:`~repro.obs.NULL_TELEMETRY`
    keeps the hot path allocation-free.
    """

    node_gamma: GammaSchedule = field(default_factory=AdaptiveGamma)
    link_gamma: float = 1e-4
    initial_node_price: float = 0.0
    initial_link_price: float = 0.0
    record_snapshots: bool = False
    admission: AdmissionStrategy = allocate_consumers
    telemetry: Telemetry = NULL_TELEMETRY
    engine: str = "reference"

    @staticmethod
    def fixed(gamma: float, **kwargs: Any) -> "LRGPConfig":
        """Config with a fixed node-price step size (figure 1 runs)."""
        return LRGPConfig(node_gamma=FixedGamma(gamma), **kwargs)

    @staticmethod
    def adaptive(**kwargs: Any) -> "LRGPConfig":
        """Config with the adaptive step size (the paper's default)."""
        return LRGPConfig(node_gamma=AdaptiveGamma(), **kwargs)

    def to_dict(self) -> dict[str, Any]:
        """Canonical, JSON-ready form of the *configuration identity*.

        Two configs with equal ``to_dict()`` drive identical trajectories
        on the same problem, so this is the form the sweep cache hashes
        (:mod:`repro.sweep.cache`).  ``telemetry`` is deliberately
        excluded — observability wiring never changes the iterate — and
        the admission strategy is identified by its qualified name.
        """
        # Callables carry no __module__/__qualname__ in the type system;
        # unnameable strategies (partials, instances) fall back to their
        # type name — repr would embed a memory address and break the
        # cross-process stability this encoding exists to provide.
        admission: object = self.admission
        module = getattr(admission, "__module__", None)
        qualname = getattr(admission, "__qualname__", None)
        admission_name = (
            f"{module}.{qualname}"
            if isinstance(module, str) and isinstance(qualname, str)
            else f"<unnamed:{type(admission).__name__}>"
        )
        return {
            "node_gamma": self.node_gamma.to_spec(),
            "link_gamma": self.link_gamma,
            "initial_node_price": self.initial_node_price,
            "initial_link_price": self.initial_link_price,
            "record_snapshots": self.record_snapshots,
            "admission": admission_name,
            "engine": self.engine,
        }

    def config_hash(self) -> str:
        """SHA-256 of the sorted-key canonical JSON of :meth:`to_dict`.

        Stable across processes and ``PYTHONHASHSEED`` values (the
        canonical encoding sorts every mapping), so it is safe to use as
        a persistent cache key component.
        """
        return content_hash(self.to_dict())


@dataclass(frozen=True)
class IterationRecord:
    """Observable state at the end of one LRGP iteration.

    ``node_gammas`` holds the adaptive step size each node would apply on
    its next tracking update; ``slack`` maps ``node:<id>`` / ``link:<id>``
    to remaining constraint headroom (eq. 4/5 capacity minus usage,
    negative when violated).  Both are populated only when snapshots are
    recorded, like the other mappings.
    """

    iteration: int
    utility: float
    rates: dict[FlowId, float] | None = None
    populations: dict[ClassId, int] | None = None
    node_prices: dict[NodeId, float] | None = None
    link_prices: dict[LinkId, float] | None = None
    node_gammas: dict[NodeId, float] | None = None
    slack: dict[str, float] | None = None


class LRGP:
    """Synchronous LRGP optimizer over a :class:`Problem`.

    Typical use::

        optimizer = LRGP(problem)
        history = optimizer.run(250)
        allocation = optimizer.allocation()

    The optimizer keeps running state (prices, populations, rates) so it can
    be stepped indefinitely and reconfigured mid-run, as an autonomic
    deployment would.  ``engine`` overrides the config's engine name; the
    prepackaged :func:`repro.solve` entry point is usually more convenient
    for one-shot optimization.
    """

    def __init__(
        self,
        problem: Problem,
        config: LRGPConfig | None = None,
        engine: str | None = None,
    ) -> None:
        self._config = config or LRGPConfig()
        self._iteration = 0
        self._utilities: list[float] = []
        self._records: list[IterationRecord] = []
        engine_name = engine if engine is not None else self._config.engine
        self._engine: LRGPEngine = create_engine(engine_name, problem, self._config)

    # -- state accessors ----------------------------------------------------

    @property
    def problem(self) -> Problem:
        return self._engine.problem

    @property
    def config(self) -> LRGPConfig:
        return self._config

    @property
    def engine(self) -> LRGPEngine:
        """The engine executing the iterations (reference, vectorized, ...)."""
        return self._engine

    @property
    def engine_name(self) -> str:
        return self._engine.name

    @property
    def iteration(self) -> int:
        return self._iteration

    @property
    def utilities(self) -> list[float]:
        """Utility after each completed iteration."""
        return self._utilities

    @property
    def records(self) -> list[IterationRecord]:
        return self._records

    def allocation(self) -> Allocation:
        """The current (rates, populations) solution."""
        return self._engine.allocation()

    def node_prices(self) -> dict[NodeId, float]:
        return self._engine.node_prices()

    def link_prices(self) -> dict[LinkId, float]:
        return self._engine.link_prices()

    def node_gammas(self) -> dict[NodeId, float]:
        """The step size each node's next tracking update would apply."""
        return self._engine.node_gammas()

    # -- reconfiguration ------------------------------------------------------

    def set_problem(self, problem: Problem) -> None:
        """Swap the problem while the optimizer keeps running.

        Prices and populations for entities that persist across the change
        are preserved; departed flows/classes/resources are dropped and new
        ones start from the configured initial state.  This reproduces the
        "flow source leaves the system" dynamics of figure 3.
        """
        self._engine.bind(problem, preserve_state=True)

    def remove_flow(self, flow_id: FlowId) -> None:
        """Remove one flow (and its consumer classes) from the system."""
        self.set_problem(self.problem.without_flow(flow_id))

    # -- the algorithm --------------------------------------------------------

    def step(self) -> IterationRecord:
        """Execute one full LRGP iteration and return its record."""
        telemetry = self._config.telemetry
        registry = telemetry.registry
        snapshots = self._config.record_snapshots

        outcome = self._engine.step()
        self._iteration += 1
        utility = outcome.utility

        registry.counter("lrgp.iterations").inc()
        registry.gauge("lrgp.utility").set(utility)
        self._utilities.append(utility)
        record = IterationRecord(
            iteration=self._iteration,
            utility=utility,
            rates=self._engine.rates() if snapshots else None,
            populations=self._engine.populations() if snapshots else None,
            node_prices=self._engine.node_prices() if snapshots else None,
            link_prices=self._engine.link_prices() if snapshots else None,
            node_gammas=self._engine.node_gammas() if snapshots else None,
            slack=outcome.slack if snapshots else None,
        )
        self._records.append(record)
        if telemetry.enabled:
            telemetry.emit(
                IterationEvent(
                    iteration=record.iteration,
                    utility=record.utility,
                    t_ns=now_ns(),
                    rates=record.rates,
                    populations=record.populations,
                    node_prices=record.node_prices,
                    link_prices=record.link_prices,
                    gammas=record.node_gammas,
                    slack=record.slack,
                )
            )
        return record

    def run(self, iterations: int) -> list[IterationRecord]:
        """Run a fixed number of iterations, returning their records.

        The whole batch runs under one ``solve`` profiler phase, so the
        per-iteration phases nest as ``solve -> iteration -> ...`` and
        the sum of phase self-times accounts for the run's wall clock.
        """
        if iterations < 0:
            raise ValueError(f"iterations must be non-negative, got {iterations}")
        start = len(self._records)
        with self._config.telemetry.profiler.phase("solve"):
            for _ in range(iterations):
                self.step()
        return self._records[start:]

    def run_until_converged(
        self,
        max_iterations: int = 1000,
        window: int = DEFAULT_WINDOW,
        rel_amplitude: float = DEFAULT_REL_AMPLITUDE,
    ) -> int | None:
        """Iterate until the paper's stability criterion holds.

        Returns the 1-based iteration count at first convergence, or
        ``None`` if ``max_iterations`` elapse without stabilizing.  Only the
        iterations of *this call* are examined, so the method composes with
        earlier :meth:`run` calls and reconfigurations.
        """
        criterion = ConvergenceCriterion(window, rel_amplitude)
        utilities: list[float] = []
        for count in range(1, max_iterations + 1):
            utilities.append(self.step().utility)
            if count >= window and criterion.window_converged(utilities):
                return count
        return None

    def convergence_iteration(
        self,
        window: int = DEFAULT_WINDOW,
        rel_amplitude: float = DEFAULT_REL_AMPLITUDE,
    ) -> int | None:
        """Iterations-until-convergence over the whole recorded history."""
        return iterations_until_convergence(self._utilities, window, rel_amplitude)
