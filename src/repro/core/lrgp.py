"""The synchronous LRGP driver (section 3).

One LRGP iteration is:

1. **Rate allocation** (Algorithm 1) at every flow source, using the prices
   and populations from the previous iteration;
2. **Consumer allocation** (Algorithm 2, step 2) at every consumer node,
   using the fresh rates;
3. **Node price update** (eq. 12) at every consumer node and **link price
   update** (eq. 13) for every link, closing the loop for the next
   iteration.

This module is the *reference* implementation: a direct, centralized
composition of the per-agent algorithms, convenient for experiments.  The
message-passing deployment of the very same steps lives in
:mod:`repro.runtime`; in synchronous mode it produces bit-identical
trajectories (verified by integration tests).

The driver supports runtime reconfiguration (flows leaving/joining,
capacity changes) to reproduce the recovery experiment of figure 3.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.core.consumer_allocation import NodeAllocation, allocate_consumers
from repro.core.convergence import (
    DEFAULT_REL_AMPLITUDE,
    DEFAULT_WINDOW,
    ConvergenceCriterion,
    iterations_until_convergence,
)
from repro.core.gamma import AdaptiveGamma, FixedGamma, GammaSchedule
from repro.core.prices import LinkPriceController, NodePriceController
from repro.core.rate_allocation import aggregate_flow_price, allocate_rate
from repro.model.allocation import Allocation, link_usage, total_utility
from repro.model.entities import ClassId, FlowId, LinkId, NodeId
from repro.model.problem import Problem
from repro.obs.events import AdmissionEvent, IterationEvent, now_ns
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.utility.tolerance import close_enough


#: Signature of a consumer-admission strategy: given the problem, a node and
#: the current rates, produce that node's :class:`NodeAllocation`.  The
#: default is the paper's greedy benefit/cost fill; the admission ablation
#: (:mod:`repro.experiments.ablations`) substitutes alternatives.
AdmissionStrategy = Callable[[Problem, NodeId, Mapping[FlowId, float]], NodeAllocation]


@dataclass(frozen=True)
class LRGPConfig:
    """Tuning knobs for the driver.

    ``node_gamma`` is a prototype schedule, cloned per node so each node
    adapts independently (section 4.2).  The default is the paper's adaptive
    heuristic.  ``link_gamma`` is the gradient-projection step size for link
    prices (only links with finite capacity maintain prices).

    ``telemetry`` wires the driver into the observability layer
    (:mod:`repro.obs`): phase timers and counters go to its registry,
    ``iteration`` / ``admission`` / ``price_update`` / ``gamma_step``
    events to its sink.  The default :data:`~repro.obs.NULL_TELEMETRY`
    keeps the hot path allocation-free.
    """

    node_gamma: GammaSchedule = field(default_factory=AdaptiveGamma)
    link_gamma: float = 1e-4
    initial_node_price: float = 0.0
    initial_link_price: float = 0.0
    record_snapshots: bool = False
    admission: AdmissionStrategy = allocate_consumers
    telemetry: Telemetry = NULL_TELEMETRY

    @staticmethod
    def fixed(gamma: float, **kwargs: Any) -> "LRGPConfig":
        """Config with a fixed node-price step size (figure 1 runs)."""
        return LRGPConfig(node_gamma=FixedGamma(gamma), **kwargs)

    @staticmethod
    def adaptive(**kwargs: Any) -> "LRGPConfig":
        """Config with the adaptive step size (the paper's default)."""
        return LRGPConfig(node_gamma=AdaptiveGamma(), **kwargs)


@dataclass(frozen=True)
class IterationRecord:
    """Observable state at the end of one LRGP iteration.

    ``node_gammas`` holds the adaptive step size each node would apply on
    its next tracking update; ``slack`` maps ``node:<id>`` / ``link:<id>``
    to remaining constraint headroom (eq. 4/5 capacity minus usage,
    negative when violated).  Both are populated only when snapshots are
    recorded, like the other mappings.
    """

    iteration: int
    utility: float
    rates: dict[FlowId, float] | None = None
    populations: dict[ClassId, int] | None = None
    node_prices: dict[NodeId, float] | None = None
    link_prices: dict[LinkId, float] | None = None
    node_gammas: dict[NodeId, float] | None = None
    slack: dict[str, float] | None = None


class LRGP:
    """Synchronous LRGP optimizer over a :class:`Problem`.

    Typical use::

        optimizer = LRGP(problem)
        history = optimizer.run(250)
        allocation = optimizer.allocation()

    The optimizer keeps running state (prices, populations, rates) so it can
    be stepped indefinitely and reconfigured mid-run, as an autonomic
    deployment would.
    """

    def __init__(self, problem: Problem, config: LRGPConfig | None = None) -> None:
        self._config = config or LRGPConfig()
        self._iteration = 0
        self._utilities: list[float] = []
        self._records: list[IterationRecord] = []
        self._problem: Problem = problem
        self._rates: dict[FlowId, float] = {}
        self._populations: dict[ClassId, int] = {}
        self._node_controllers: dict[NodeId, NodePriceController] = {}
        self._link_controllers: dict[LinkId, LinkPriceController] = {}
        self._bind_problem(problem, preserve_state=False)

    # -- state accessors ----------------------------------------------------

    @property
    def problem(self) -> Problem:
        return self._problem

    @property
    def iteration(self) -> int:
        return self._iteration

    @property
    def utilities(self) -> list[float]:
        """Utility after each completed iteration."""
        return self._utilities

    @property
    def records(self) -> list[IterationRecord]:
        return self._records

    def allocation(self) -> Allocation:
        """The current (rates, populations) solution."""
        return Allocation(rates=dict(self._rates), populations=dict(self._populations))

    def node_prices(self) -> dict[NodeId, float]:
        return {n: c.price for n, c in self._node_controllers.items()}

    def link_prices(self) -> dict[LinkId, float]:
        return {link_id: c.price for link_id, c in self._link_controllers.items()}

    def node_gammas(self) -> dict[NodeId, float]:
        """The step size each node's next tracking update would apply."""
        return {n: c.gamma for n, c in self._node_controllers.items()}

    # -- reconfiguration ------------------------------------------------------

    def set_problem(self, problem: Problem) -> None:
        """Swap the problem while the optimizer keeps running.

        Prices and populations for entities that persist across the change
        are preserved; departed flows/classes/resources are dropped and new
        ones start from the configured initial state.  This reproduces the
        "flow source leaves the system" dynamics of figure 3.
        """
        self._bind_problem(problem, preserve_state=True)

    def remove_flow(self, flow_id: FlowId) -> None:
        """Remove one flow (and its consumer classes) from the system."""
        self.set_problem(self._problem.without_flow(flow_id))

    def _bind_problem(self, problem: Problem, preserve_state: bool) -> None:
        old_rates = self._rates if preserve_state else {}
        old_populations = self._populations if preserve_state else {}
        old_nodes = self._node_controllers if preserve_state else {}
        old_links = self._link_controllers if preserve_state else {}

        self._problem = problem
        self._rates = {
            flow_id: old_rates.get(flow_id, flow.rate_min)
            for flow_id, flow in problem.flows.items()
        }
        self._populations = {
            class_id: old_populations.get(class_id, 0) for class_id in problem.classes
        }
        self._node_controllers = {}
        for node_id in problem.consumer_nodes():
            existing = old_nodes.get(node_id)
            if existing is not None and close_enough(
                existing.capacity, problem.nodes[node_id].capacity
            ):
                self._node_controllers[node_id] = existing
            else:
                self._node_controllers[node_id] = NodePriceController(
                    capacity=problem.nodes[node_id].capacity,
                    gamma_under=self._config.node_gamma.clone(),
                    initial_price=self._config.initial_node_price,
                )
        self._link_controllers = {}
        for link_id, link in problem.links.items():
            if math.isinf(link.capacity):
                continue
            existing = old_links.get(link_id)
            if existing is not None and close_enough(existing.capacity, link.capacity):
                self._link_controllers[link_id] = existing
            else:
                self._link_controllers[link_id] = LinkPriceController(
                    capacity=link.capacity,
                    gamma=self._config.link_gamma,
                    initial_price=self._config.initial_link_price,
                )

        telemetry = self._config.telemetry
        if telemetry.enabled:
            for node_id, node_controller in self._node_controllers.items():
                probe = telemetry.probe("node", node_id)
                if probe is not None:
                    node_controller.attach_probe(probe)
            for link_id, link_controller in self._link_controllers.items():
                probe = telemetry.probe("link", link_id)
                if probe is not None:
                    link_controller.attach_probe(probe)

    # -- the algorithm --------------------------------------------------------

    def step(self) -> IterationRecord:
        """Execute one full LRGP iteration and return its record."""
        problem = self._problem
        telemetry = self._config.telemetry
        registry = telemetry.registry
        snapshots = self._config.record_snapshots
        node_prices = self.node_prices()
        link_prices = self.link_prices()
        slack: dict[str, float] = {}

        with registry.timer("lrgp.iteration"):
            # 1. Rate allocation at each source (Algorithm 1), using last
            #    iteration's populations and prices.
            with registry.timer("lrgp.rate_allocation"):
                for flow_id in problem.flows:
                    price = aggregate_flow_price(
                        problem, flow_id, self._populations, node_prices, link_prices
                    )
                    self._rates[flow_id] = allocate_rate(
                        problem, flow_id, self._populations, price
                    )

            # 2. Consumer allocation at each node (Algorithm 2, step 2 —
            #    greedy by default), then 3a. node price update (eq. 12).
            with registry.timer("lrgp.consumer_allocation"):
                for node_id in problem.consumer_nodes():
                    result = self._config.admission(problem, node_id, self._rates)
                    self._populations.update(result.populations)
                    controller = self._node_controllers[node_id]
                    controller.update(
                        benefit_cost=result.best_unsatisfied_ratio, used=result.used
                    )
                    if snapshots:
                        slack[f"node:{node_id}"] = controller.capacity - result.used
                    if telemetry.enabled:
                        telemetry.emit(
                            AdmissionEvent(
                                node=node_id,
                                admitted=dict(result.populations),
                                used=result.used,
                                capacity=controller.capacity,
                                best_ratio=result.best_unsatisfied_ratio,
                                t_ns=now_ns(),
                            )
                        )

            # 3b. Link price update (Algorithm 3 / eq. 13).
            with registry.timer("lrgp.link_prices"):
                if self._link_controllers:
                    allocation = self.allocation()
                    for link_id, link_controller in self._link_controllers.items():
                        usage = link_usage(problem, allocation, link_id)
                        link_controller.update(usage)
                        if snapshots:
                            slack[f"link:{link_id}"] = (
                                link_controller.capacity - usage
                            )

            self._iteration += 1
            utility = total_utility(problem, self.allocation())

        registry.counter("lrgp.iterations").inc()
        registry.gauge("lrgp.utility").set(utility)
        self._utilities.append(utility)
        record = IterationRecord(
            iteration=self._iteration,
            utility=utility,
            rates=dict(self._rates) if snapshots else None,
            populations=dict(self._populations) if snapshots else None,
            node_prices=self.node_prices() if snapshots else None,
            link_prices=self.link_prices() if snapshots else None,
            node_gammas=self.node_gammas() if snapshots else None,
            slack=slack if snapshots else None,
        )
        self._records.append(record)
        if telemetry.enabled:
            telemetry.emit(
                IterationEvent(
                    iteration=record.iteration,
                    utility=record.utility,
                    t_ns=now_ns(),
                    rates=record.rates,
                    populations=record.populations,
                    node_prices=record.node_prices,
                    link_prices=record.link_prices,
                    gammas=record.node_gammas,
                    slack=record.slack,
                )
            )
        return record

    def run(self, iterations: int) -> list[IterationRecord]:
        """Run a fixed number of iterations, returning their records."""
        if iterations < 0:
            raise ValueError(f"iterations must be non-negative, got {iterations}")
        start = len(self._records)
        for _ in range(iterations):
            self.step()
        return self._records[start:]

    def run_until_converged(
        self,
        max_iterations: int = 1000,
        window: int = DEFAULT_WINDOW,
        rel_amplitude: float = DEFAULT_REL_AMPLITUDE,
    ) -> int | None:
        """Iterate until the paper's stability criterion holds.

        Returns the 1-based iteration count at first convergence, or
        ``None`` if ``max_iterations`` elapse without stabilizing.  Only the
        iterations of *this call* are examined, so the method composes with
        earlier :meth:`run` calls and reconfigurations.
        """
        criterion = ConvergenceCriterion(window, rel_amplitude)
        utilities: list[float] = []
        for count in range(1, max_iterations + 1):
            utilities.append(self.step().utility)
            if count >= window and criterion.window_converged(utilities):
                return count
        return None

    def convergence_iteration(
        self,
        window: int = DEFAULT_WINDOW,
        rel_amplitude: float = DEFAULT_REL_AMPLITUDE,
    ) -> int | None:
        """Iterations-until-convergence over the whole recorded history."""
        return iterations_until_convergence(self._utilities, window, rel_amplitude)
