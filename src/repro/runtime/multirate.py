"""Distributed deployment of multirate LRGP.

The multirate extension (:mod:`repro.core.multirate`) adds exactly one
message to the paper's protocol: a **demand update** — each node advertises,
per flow, the delivery rate it would locally prefer at its current price
and populations.  Sources turn the advertised demands into a rate *cap*
(maximizing total priced surplus) and announce it; nodes then thin to
``min(cap, own demand)`` and run the ordinary greedy admission and price
update at their local rates.

The synchronous runtime here is bit-identical to the centralized
:class:`~repro.core.multirate.MultirateLRGP` driver (asserted by
integration tests), mirroring the relationship between
:class:`~repro.runtime.synchronous.SynchronousRuntime` and the reference
:class:`~repro.core.lrgp.LRGP`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.gamma import AdaptiveGamma, GammaSchedule
from repro.core.consumer_allocation import allocate_consumers
from repro.core.multirate import (
    MultirateAllocation,
    multirate_total_utility,
    node_demand,
    source_cap,
)
from repro.core.prices import NodePriceController
from repro.model.entities import ClassId, FlowId, NodeId
from repro.model.problem import Problem
from repro.runtime.agents import (
    Agent,
    LinkAgent,
    link_address,
    merge_populations,
    node_address,
    source_address,
)
from repro.runtime.messages import (
    LinkPriceUpdate,
    Message,
    NodePriceUpdate,
    PopulationUpdate,
    RateUpdate,
)


@dataclass(frozen=True)
class DemandUpdate(Message):
    """A node advertises its locally preferred delivery rate for a flow."""

    node_id: NodeId = ""
    flow_id: FlowId = ""
    demand: float = 0.0


class MultirateSourceAgent(Agent):
    """Computes the flow's rate *cap* from the nodes' advertised demands."""

    def __init__(self, problem: Problem, flow_id: FlowId) -> None:
        super().__init__(source_address(flow_id))
        self._problem = problem
        self._flow_id = flow_id
        self._demands: dict[NodeId, float] = {}
        self._node_prices: dict[NodeId, float] = {}
        self._link_prices: dict[str, float] = {}
        self._populations: dict[ClassId, int] = {
            class_id: 0 for class_id in problem.classes_of_flow(flow_id)
        }
        self.rate = problem.flows[flow_id].rate_min

    @property
    def flow_id(self) -> FlowId:
        return self._flow_id

    def receive(self, message: Message) -> None:
        if isinstance(message, DemandUpdate):
            self._demands[message.node_id] = message.demand
        elif isinstance(message, NodePriceUpdate):
            self._node_prices[message.node_id] = message.price
        elif isinstance(message, LinkPriceUpdate):
            self._link_prices[message.link_id] = message.price
        elif isinstance(message, PopulationUpdate):
            for class_id, population in message.populations.items():
                if class_id in self._populations:
                    self._populations[class_id] = population
        else:
            raise TypeError(
                f"multirate source got unexpected {type(message).__name__}"
            )

    def act(self, stamp: float) -> list[Message]:
        problem = self._problem
        route = problem.route(self._flow_id)
        link_price = sum(
            problem.costs.link(link_id, self._flow_id)
            * self._link_prices.get(link_id, 0.0)
            for link_id in route.links
        )
        self.rate = source_cap(
            problem,
            self._flow_id,
            self._demands,
            self._populations,
            self._node_prices,
            link_price,
        )
        messages: list[Message] = []
        for node_id in route.nodes:
            if node_id in problem.consumer_nodes():
                messages.append(
                    RateUpdate(
                        sender=self.address,
                        recipient=node_address(node_id),
                        stamp=stamp,
                        flow_id=self._flow_id,
                        rate=self.rate,
                    )
                )
        for link_id in route.links:
            if not math.isinf(problem.links[link_id].capacity):
                messages.append(
                    RateUpdate(
                        sender=self.address,
                        recipient=link_address(link_id),
                        stamp=stamp,
                        flow_id=self._flow_id,
                        rate=self.rate,
                    )
                )
        return messages

    def snapshot(self) -> dict[str, object]:
        return {
            "rate": self.rate,
            "demands": dict(self._demands),
            "node_prices": dict(self._node_prices),
            "link_prices": dict(self._link_prices),
            "populations": dict(self._populations),
        }

    def restore(self, state: dict[str, object]) -> None:
        rate = state["rate"]
        assert isinstance(rate, float)
        self.rate = rate
        demands = state["demands"]
        assert isinstance(demands, dict)
        self._demands = dict(demands)
        node_prices = state["node_prices"]
        assert isinstance(node_prices, dict)
        self._node_prices = dict(node_prices)
        link_prices = state["link_prices"]
        assert isinstance(link_prices, dict)
        self._link_prices = dict(link_prices)
        populations = state["populations"]
        assert isinstance(populations, dict)
        for class_id, population in populations.items():
            if class_id in self._populations:
                self._populations[class_id] = population


class MultirateNodeAgent(Agent):
    """Thins flows to ``min(cap, own demand)``, allocates, prices, and
    advertises fresh demands."""

    def __init__(
        self,
        problem: Problem,
        node_id: NodeId,
        gamma: GammaSchedule,
    ) -> None:
        super().__init__(node_address(node_id))
        self._problem = problem
        self._node_id = node_id
        self._controller = NodePriceController(
            capacity=problem.nodes[node_id].capacity, gamma_under=gamma
        )
        self._caps: dict[FlowId, float] = {
            flow_id: problem.flows[flow_id].rate_min
            for flow_id in problem.flows_at_node(node_id)
        }
        self.populations: dict[ClassId, int] = {
            class_id: 0 for class_id in problem.classes_at_node(node_id)
        }
        #: Demands advertised at the end of the previous round, per flow —
        #: the thinning target for the cap arriving this round.
        self._advertised: dict[FlowId, float] = {}
        self.local_rates: dict[FlowId, float] = {}

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    @property
    def price(self) -> float:
        return self._controller.price

    def _hosted_flows(self) -> list[FlowId]:
        return [
            flow_id
            for flow_id in self._problem.flows_at_node(self._node_id)
            if self._problem.classes_of_flow_at_node(flow_id, self._node_id)
        ]

    def initial_feedback(self, stamp: float) -> list[Message]:
        """Bootstrap messages mirroring the centralized driver's initial
        state: zero price, zero populations, demands computed from them."""
        return self._feedback(stamp)

    def receive(self, message: Message) -> None:
        if not isinstance(message, RateUpdate):
            raise TypeError(
                f"multirate node got unexpected {type(message).__name__}"
            )
        if message.flow_id in self._caps:
            self._caps[message.flow_id] = message.rate

    def act(self, stamp: float) -> list[Message]:
        problem = self._problem
        local: dict[FlowId, float] = {}
        for flow_id in problem.flows_at_node(self._node_id):
            demand = self._advertised.get(flow_id)
            cap = self._caps[flow_id]
            local[flow_id] = cap if demand is None else min(cap, demand)
        self.local_rates = local
        result = allocate_consumers(problem, self._node_id, local)
        self.populations = dict(result.populations)
        self._controller.update(
            benefit_cost=result.best_unsatisfied_ratio, used=result.used
        )
        return self._feedback(stamp)

    def _feedback(self, stamp: float) -> list[Message]:
        problem = self._problem
        messages: list[Message] = []
        for flow_id in problem.flows_at_node(self._node_id):
            recipient = source_address(flow_id)
            messages.append(
                NodePriceUpdate(
                    sender=self.address,
                    recipient=recipient,
                    stamp=stamp,
                    node_id=self._node_id,
                    price=self._controller.price,
                )
            )
            class_ids = problem.classes_of_flow_at_node(flow_id, self._node_id)
            if class_ids:
                messages.append(
                    PopulationUpdate(
                        sender=self.address,
                        recipient=recipient,
                        stamp=stamp,
                        node_id=self._node_id,
                        flow_id=flow_id,
                        populations={
                            class_id: self.populations[class_id]
                            for class_id in class_ids
                        },
                    )
                )
                demand = node_demand(
                    problem, self._node_id, flow_id, self.populations,
                    self._controller.price,
                )
                self._advertised[flow_id] = demand
                messages.append(
                    DemandUpdate(
                        sender=self.address,
                        recipient=recipient,
                        stamp=stamp,
                        node_id=self._node_id,
                        flow_id=flow_id,
                        demand=demand,
                    )
                )
        return messages

    def snapshot(self) -> dict[str, object]:
        return {
            "caps": dict(self._caps),
            "populations": dict(self.populations),
            "advertised": dict(self._advertised),
            "local_rates": dict(self.local_rates),
            "controller": self._controller.state_dict(),
        }

    def restore(self, state: dict[str, object]) -> None:
        caps = state["caps"]
        assert isinstance(caps, dict)
        for flow_id, cap in caps.items():
            if flow_id in self._caps:
                self._caps[flow_id] = cap
        populations = state["populations"]
        assert isinstance(populations, dict)
        self.populations = {
            class_id: populations.get(class_id, 0)
            for class_id in self.populations
        }
        advertised = state["advertised"]
        assert isinstance(advertised, dict)
        self._advertised = dict(advertised)
        local_rates = state["local_rates"]
        assert isinstance(local_rates, dict)
        self.local_rates = dict(local_rates)
        controller = state["controller"]
        assert isinstance(controller, dict)
        self._controller.load_state(controller)


class MultirateSynchronousRuntime:
    """Barrier-round deployment of the multirate protocol."""

    def __init__(
        self,
        problem: Problem,
        node_gamma: GammaSchedule | None = None,
        link_gamma: float = 1e-4,
    ) -> None:
        prototype = node_gamma if node_gamma is not None else AdaptiveGamma()
        self._problem = problem
        self._sources = [
            MultirateSourceAgent(problem, flow_id)
            for flow_id in sorted(problem.flows)
        ]
        self._nodes = [
            MultirateNodeAgent(problem, node_id, gamma=prototype.clone())
            for node_id in problem.consumer_nodes()
        ]
        self._links = [
            LinkAgent(problem, link_id, gamma=link_gamma)
            for link_id in problem.bottleneck_links()
        ]
        self._agents: dict[str, Agent] = {
            agent.address: agent
            for agent in [*self._sources, *self._nodes, *self._links]
        }
        self._round = 0
        self.utilities: list[float] = []
        self.messages_sent = 0
        # Bootstrap: nodes advertise their initial prices/populations/
        # demands so round 1's sources see the same state the centralized
        # driver starts from.
        bootstrap: list[Message] = []
        for node in self._nodes:
            bootstrap.extend(node.initial_feedback(stamp=-1.0))
        self._deliver(bootstrap)

    def _deliver(self, messages: list[Message]) -> None:
        for message in messages:
            self._agents[message.recipient].receive(message)
        self.messages_sent += len(messages)

    def step(self) -> float:
        stamp = float(self._round)
        rate_messages: list[Message] = []
        for source in self._sources:
            rate_messages.extend(source.act(stamp))
        self._deliver(rate_messages)
        feedback: list[Message] = []
        for node in self._nodes:
            feedback.extend(node.act(stamp))
        for link in self._links:
            feedback.extend(link.act(stamp))
        self._deliver(feedback)
        self._round += 1
        utility = multirate_total_utility(self._problem, self.allocation())
        self.utilities.append(utility)
        return utility

    def run(self, rounds: int) -> list[float]:
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        return [self.step() for _ in range(rounds)]

    def allocation(self) -> MultirateAllocation:
        source_rates = {source.flow_id: source.rate for source in self._sources}
        local_rates: dict[tuple[NodeId, FlowId], float] = {}
        populations: dict[ClassId, int] = merge_populations(self._nodes)
        for node in self._nodes:
            for flow_id, rate in node.local_rates.items():
                local_rates[(node.node_id, flow_id)] = rate
        return MultirateAllocation(
            source_rates=source_rates,
            local_rates=local_rates,
            populations=populations,
        )

    def node_prices(self) -> dict[NodeId, float]:
        return {node.node_id: node.price for node in self._nodes}
