"""Round-based synchronous deployment of the LRGP protocol.

One round = one LRGP iteration, exactly as in the paper's synchronous
formulation (section 3.5): all sources activate and their rate messages are
delivered; then all node and link agents activate and their price/population
messages are delivered.  With instantaneous per-round delivery this engine
reproduces the reference driver (:class:`repro.core.LRGP`) step for step —
an integration test asserts trajectory equality.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.gamma import AdaptiveGamma, GammaSchedule
from repro.model.allocation import Allocation, total_utility
from repro.model.problem import Problem
from repro.obs.causal import CausalContext
from repro.obs.events import IterationEvent, MessageEvent, now_ns
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.runtime.agents import (
    Agent,
    LinkAgent,
    NodeAgent,
    SourceAgent,
    merge_populations,
)
from repro.runtime.messages import Message


class SynchronousRuntime:
    """Executes LRGP as message-passing agents with barrier rounds.

    ``telemetry`` (default: the no-op :data:`~repro.obs.NULL_TELEMETRY`)
    threads through to every agent: rounds emit ``iteration`` events,
    deliveries ``message`` events (``latency=None`` — barrier delivery is
    instantaneous), agents their ``agent_exchange`` / price events.

    When telemetry is enabled the runtime also threads a
    :class:`~repro.obs.causal.CausalContext` through every activation and
    message (schema v2), so captures support ``repro trace causal`` and
    ``repro replay``.  ``trace_id`` names the capture; with telemetry off
    no context object even exists — the no-op path is unchanged.
    """

    def __init__(
        self,
        problem: Problem,
        node_gamma: GammaSchedule | None = None,
        link_gamma: float = 1e-4,
        telemetry: Telemetry = NULL_TELEMETRY,
        trace_id: str | None = None,
    ) -> None:
        prototype = node_gamma if node_gamma is not None else AdaptiveGamma()
        self._problem = problem
        self._telemetry = telemetry
        self._tracer = (
            CausalContext(trace_id or "sync") if telemetry.enabled else None
        )
        self._sources = [
            SourceAgent(problem, flow_id, telemetry=telemetry)
            for flow_id in sorted(problem.flows)
        ]
        self._nodes = [
            NodeAgent(problem, node_id, gamma=prototype.clone(), telemetry=telemetry)
            for node_id in problem.consumer_nodes()
        ]
        self._links = [
            LinkAgent(problem, link_id, gamma=link_gamma, telemetry=telemetry)
            for link_id in problem.bottleneck_links()
        ]
        self._agents: dict[str, Agent] = {
            agent.address: agent
            for agent in [*self._sources, *self._nodes, *self._links]
        }
        self._round = 0
        self.utilities: list[float] = []
        self.messages_sent = 0

    @property
    def problem(self) -> Problem:
        return self._problem

    @property
    def rounds(self) -> int:
        return self._round

    def _activate(self, agent: Agent, stamp: float) -> list[Message]:
        """Run one activation, stamping causal context when tracing."""
        tracer = self._tracer
        if tracer is None:
            return agent.act(stamp)
        agent.causal = tracer.begin_activation(agent.address)
        messages = agent.act(stamp)
        stamped: list[Message] = []
        for message in messages:
            span_id, parent = tracer.message_context(message.sender)
            stamped.append(
                replace(
                    message,
                    trace_id=tracer.trace_id,
                    span_id=span_id,
                    parent_span_id=parent,
                )
            )
        return stamped

    def _deliver(self, messages: list[Message], stamp: float) -> None:
        telemetry = self._telemetry
        tracer = self._tracer
        for message in messages:
            recipient = self._agents.get(message.recipient)
            if recipient is None:
                raise KeyError(f"message addressed to unknown agent {message.recipient}")
            recipient.receive(message)
            if tracer is not None:
                tracer.record_delivery(message.recipient, message.span_id)
            if telemetry.enabled:
                telemetry.emit(
                    MessageEvent(
                        sender=message.sender,
                        recipient=message.recipient,
                        payload=type(message).__name__,
                        t_ns=now_ns(),
                        latency=None,
                        at=stamp,
                        trace_id=message.trace_id,
                        span_id=message.span_id,
                        parent_span_id=message.parent_span_id,
                    )
                )
        self.messages_sent += len(messages)
        telemetry.registry.counter("runtime.sync.messages").inc(len(messages))

    def step(self) -> float:
        """Run one round (= one LRGP iteration); returns the round utility."""
        telemetry = self._telemetry
        profiler = telemetry.profiler
        with telemetry.registry.timer("runtime.sync.round"), profiler.phase(
            "runtime"
        ):
            stamp = float(self._round)
            rate_messages: list[Message] = []
            with profiler.phase("activation"):
                for source in self._sources:
                    rate_messages.extend(self._activate(source, stamp))
            with profiler.phase("delivery"):
                self._deliver(rate_messages, stamp)

            feedback: list[Message] = []
            with profiler.phase("activation"):
                for node in self._nodes:
                    feedback.extend(self._activate(node, stamp))
                for link in self._links:
                    feedback.extend(self._activate(link, stamp))
            with profiler.phase("delivery"):
                self._deliver(feedback, stamp)

            self._round += 1
            utility = total_utility(self._problem, self.allocation())
        self.utilities.append(utility)
        telemetry.registry.counter("runtime.sync.rounds").inc()
        telemetry.registry.gauge("runtime.sync.utility").set(utility)
        if telemetry.enabled:
            telemetry.emit(
                IterationEvent(
                    iteration=self._round,
                    utility=utility,
                    t_ns=now_ns(),
                    at=float(self._round),
                )
            )
        return utility

    def run(self, rounds: int) -> list[float]:
        """Run several rounds; returns their utilities."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        return [self.step() for _ in range(rounds)]

    def allocation(self) -> Allocation:
        """Global snapshot assembled from the agents' local states."""
        rates = {source.flow_id: source.rate for source in self._sources}
        return Allocation(
            rates=rates, populations=merge_populations(self._nodes)
        )

    def node_prices(self) -> dict[str, float]:
        return {node.node_id: node.price for node in self._nodes}

    def link_prices(self) -> dict[str, float]:
        return {link.link_id: link.price for link in self._links}
