"""Distributed runtime: LRGP as message-passing agents.

The reference driver in :mod:`repro.core` composes the per-agent algorithms
centrally; this package deploys the same algorithms as communicating agents:

* :class:`SynchronousRuntime` — barrier rounds, bit-identical to the
  reference driver;
* :class:`AsynchronousRuntime` — discrete-event execution with jittered
  clocks, message latency/loss and price averaging (section 3.5).
"""

from repro.runtime.agents import (
    Agent,
    LinkAgent,
    NodeAgent,
    SourceAgent,
    link_address,
    node_address,
    source_address,
)
from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime
from repro.runtime.multirate import (
    DemandUpdate,
    MultirateNodeAgent,
    MultirateSourceAgent,
    MultirateSynchronousRuntime,
)
from repro.runtime.messages import (
    LinkPriceUpdate,
    Message,
    NodePriceUpdate,
    PopulationUpdate,
    RateUpdate,
)
from repro.runtime.synchronous import SynchronousRuntime

__all__ = [
    "Agent",
    "AsyncConfig",
    "AsynchronousRuntime",
    "DemandUpdate",
    "LinkAgent",
    "LinkPriceUpdate",
    "Message",
    "MultirateNodeAgent",
    "MultirateSourceAgent",
    "MultirateSynchronousRuntime",
    "NodeAgent",
    "NodePriceUpdate",
    "PopulationUpdate",
    "RateUpdate",
    "SourceAgent",
    "SynchronousRuntime",
    "link_address",
    "node_address",
    "source_address",
]
