"""Distributed runtime: LRGP as message-passing agents.

The reference driver in :mod:`repro.core` composes the per-agent algorithms
centrally; this package deploys the same algorithms as communicating agents:

* :class:`SynchronousRuntime` — barrier rounds, bit-identical to the
  reference driver;
* :class:`AsynchronousRuntime` — discrete-event execution with jittered
  clocks, message latency/loss and price averaging (section 3.5), plus
  sequence-numbered exchanges, acknowledged rate announcements and
  checkpoint/restart fault tolerance;
* :mod:`repro.runtime.faults` — deterministic failure injection
  (:class:`FaultPlan`: crashes, partitions, delay storms) and the
  recovery-time bookkeeping (:class:`RecoveryRecord`).
"""

from repro.runtime.agents import (
    Agent,
    LinkAgent,
    NodeAgent,
    PopulationCollisionError,
    SourceAgent,
    link_address,
    merge_populations,
    node_address,
    source_address,
)
from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime
from repro.runtime.faults import (
    CrashFault,
    DelayStorm,
    FaultPlan,
    PartitionFault,
    RecoveryRecord,
    agent_addresses,
)
from repro.runtime.multirate import (
    DemandUpdate,
    MultirateNodeAgent,
    MultirateSourceAgent,
    MultirateSynchronousRuntime,
)
from repro.runtime.messages import (
    LinkPriceUpdate,
    Message,
    NodePriceUpdate,
    PopulationUpdate,
    RateUpdate,
)
from repro.runtime.synchronous import SynchronousRuntime

__all__ = [
    "Agent",
    "AsyncConfig",
    "AsynchronousRuntime",
    "CrashFault",
    "DelayStorm",
    "DemandUpdate",
    "FaultPlan",
    "LinkAgent",
    "LinkPriceUpdate",
    "Message",
    "MultirateNodeAgent",
    "MultirateSourceAgent",
    "MultirateSynchronousRuntime",
    "NodeAgent",
    "NodePriceUpdate",
    "PartitionFault",
    "PopulationCollisionError",
    "PopulationUpdate",
    "RateUpdate",
    "RecoveryRecord",
    "SourceAgent",
    "SynchronousRuntime",
    "agent_addresses",
    "link_address",
    "merge_populations",
    "node_address",
    "source_address",
]
