"""Message vocabulary of the distributed LRGP protocol.

The paper's Algorithms 1-3 exchange exactly four kinds of information:

* a source tells the nodes and links on its flow's path the new rate
  (:class:`RateUpdate`);
* a node tells the sources of the flows that reach it its new price
  (:class:`NodePriceUpdate`) and the consumer allocations for their classes
  (:class:`PopulationUpdate`);
* a link (well, the endpoint node computing on its behalf — footnote 2)
  tells those sources its new price (:class:`LinkPriceUpdate`).

Messages are immutable records addressed to agent names
(:mod:`repro.runtime.agents` defines the naming scheme).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.model.entities import ClassId, FlowId, LinkId, NodeId


@dataclass(frozen=True)
class Message:
    """Base class: routing envelope shared by all protocol messages."""

    sender: str
    recipient: str
    #: Iteration (sync) or send-time (async) stamp, for diagnostics and
    #: staleness-aware averaging.
    stamp: float
    #: Per-sender send sequence, assigned by engines that can reorder or
    #: retransmit (the asynchronous runtime).  ``-1`` marks an unsequenced
    #: message (synchronous barrier delivery, unit tests): receivers must
    #: accept it unconditionally.  Retransmissions reuse the original
    #: sequence, so a receiver that tracks the last sequence seen per
    #: (sender, message type) can reject both duplicates and stale
    #: reordered updates with one comparison.
    seq: int = -1
    #: Causal-tracing context (schema v2), stamped by engines running with
    #: telemetry on: the capture-wide trace id, this message's own span,
    #: and the span of the sender activation that emitted it.  ``None``
    #: when tracing is off — agents never read these fields, so the
    #: protocol semantics are identical either way.
    trace_id: str | None = None
    span_id: str | None = None
    parent_span_id: str | None = None


@dataclass(frozen=True)
class RateUpdate(Message):
    """Algorithm 1, step 3: a source announces its flow's new rate."""

    flow_id: FlowId = ""
    rate: float = 0.0


@dataclass(frozen=True)
class NodePriceUpdate(Message):
    """Algorithm 2, step 4 (price part): a node announces ``p_b``."""

    node_id: NodeId = ""
    price: float = 0.0


@dataclass(frozen=True)
class LinkPriceUpdate(Message):
    """Algorithm 3, step 3: a link announces ``p_l``."""

    link_id: LinkId = ""
    price: float = 0.0


def _freeze(populations: Mapping[ClassId, int]) -> Mapping[ClassId, int]:
    return MappingProxyType(dict(populations))


@dataclass(frozen=True)
class PopulationUpdate(Message):
    """Algorithm 2, step 4 (population part): a node announces the ``n_j``
    it allocated for the classes of one flow."""

    node_id: NodeId = ""
    flow_id: FlowId = ""
    populations: Mapping[ClassId, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "populations", _freeze(self.populations))
