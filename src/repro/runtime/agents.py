"""Agents of the distributed LRGP deployment.

Three agent roles, one per algorithm in the paper:

* :class:`SourceAgent` — one per flow, colocated with the flow's source
  node; runs Algorithm 1 (Lagrangian rate allocation).
* :class:`NodeAgent` — one per consumer-hosting node; runs Algorithm 2
  (greedy consumer allocation + node price).
* :class:`LinkAgent` — one per finite-capacity link, hosted by one of the
  link's endpoint nodes (footnote 2); runs Algorithm 3 (link price).

An agent holds only local state plus the last values it *received*; each
activation (:meth:`act`) consumes that state and emits protocol messages.
The engines in :mod:`repro.runtime.synchronous` and
:mod:`repro.runtime.asynchronous` decide when agents activate and how
messages travel.

Sources optionally average the last few received prices per resource, the
asynchrony-tolerance device of Low & Lapsley the paper cites in section 3.5.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable

from repro.core.consumer_allocation import allocate_consumers
from repro.core.gamma import GammaSchedule
from repro.core.prices import LinkPriceController, NodePriceController
from repro.core.rate_allocation import allocate_rate
from repro.model.entities import ClassId, FlowId, LinkId, NodeId
from repro.model.problem import Problem
from repro.obs.causal import ActivationSpan
from repro.obs.events import AgentExchangeEvent, now_ns
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.utility.tolerance import is_zero
from repro.runtime.messages import (
    LinkPriceUpdate,
    Message,
    NodePriceUpdate,
    PopulationUpdate,
    RateUpdate,
)


def source_address(flow_id: FlowId) -> str:
    return f"src:{flow_id}"


def node_address(node_id: NodeId) -> str:
    return f"node:{node_id}"


def link_address(link_id: LinkId) -> str:
    return f"link:{link_id}"


class Agent:
    """Common shape: receive messages, activate, emit messages."""

    #: The role tag used in telemetry events and metric names.
    role = "agent"

    def __init__(self, address: str, telemetry: Telemetry = NULL_TELEMETRY) -> None:
        self.address = address
        self.telemetry = telemetry
        #: Causal span of the *current* activation, set by tracing engines
        #: just before :meth:`act` (see ``repro.obs.causal``); ``None``
        #: when the engine runs without causal tracing.
        self.causal: ActivationSpan | None = None

    def receive(self, message: Message) -> None:
        raise NotImplementedError

    def act(self, stamp: float) -> list[Message]:
        """Run this agent's algorithm once; return the messages to send."""
        raise NotImplementedError

    def snapshot(self) -> dict[str, object]:
        """JSON-ready checkpoint of the agent's mutable protocol state.

        Fault-tolerant runtimes checkpoint agents periodically and hand the
        snapshot back via :meth:`restore` after a crash, so a restarted
        agent resumes from its last checkpoint instead of cold state.
        """
        raise NotImplementedError

    def restore(self, state: dict[str, object]) -> None:
        """Inverse of :meth:`snapshot` (on an agent built with the same
        problem and configuration)."""
        raise NotImplementedError

    def _record_activation(
        self,
        sent: int,
        stamp: float,
        rate: float | None = None,
        price: float | None = None,
        populations: dict[ClassId, int] | None = None,
    ) -> None:
        """Emit one ``agent_exchange`` event (no-op when disabled).

        ``rate``/``price``/``populations`` are the agent's post-activation
        deployed state (the schema-v2 replay payload); ``populations`` is
        passed by reference and copied only on the enabled path, so the
        disabled path stays allocation-free.
        """
        telemetry = self.telemetry
        if telemetry.enabled:
            causal = self.causal
            telemetry.emit(
                AgentExchangeEvent(
                    agent=self.address,
                    role=self.role,
                    sent=sent,
                    stamp=stamp,
                    t_ns=now_ns(),
                    trace_id=causal.trace_id if causal is not None else None,
                    span_id=causal.span_id if causal is not None else None,
                    parent_span_id=(
                        causal.parent_span_id if causal is not None else None
                    ),
                    rate=rate,
                    price=price,
                    populations=(
                        dict(populations) if populations is not None else None
                    ),
                )
            )
            telemetry.registry.counter(f"agents.activations.{self.role}").inc()
            telemetry.registry.counter("agents.messages_sent").inc(sent)


class _Averager:
    """Sliding-window mean of the last ``window`` observations per key."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError(f"averaging window must be >= 1, got {window}")
        self._window = window
        self._values: dict[str, deque[float]] = {}

    def observe(self, key: str, value: float) -> None:
        queue = self._values.setdefault(key, deque(maxlen=self._window))
        queue.append(value)

    def mean(self, key: str, default: float = 0.0) -> float:
        queue = self._values.get(key)
        if not queue:
            return default
        return sum(queue) / len(queue)

    @property
    def observed(self) -> bool:
        """Whether *any* observation was ever recorded.

        Distinguishes "no price received yet" from "price is genuinely
        zero" — the distinction behind the cold-start hold in
        :meth:`SourceAgent.act`.
        """
        return any(self._values.values())

    def state_dict(self) -> dict[str, list[float]]:
        return {key: list(queue) for key, queue in self._values.items()}

    def load_state(self, state: dict[str, list[float]]) -> None:
        self._values = {
            key: deque(values, maxlen=self._window)
            for key, values in state.items()
        }


class SourceAgent(Agent):
    """Algorithm 1 at the source node of one flow.

    State: the latest (or window-averaged) node and link prices received
    from the flow's route, and the latest consumer allocations for the
    flow's classes.  Each activation solves the Lagrangian rate subproblem
    and announces the rate to every node and link agent on the route.

    ``assume_zero_prices`` controls the cold-start semantics.  In the
    synchronous protocol the zero initial prices are *shared knowledge*
    (every agent starts the same round-zero state), so treating a missing
    price as 0.0 is exact — that is the default, and it keeps the
    synchronous runtime bit-identical to the reference driver.  In an
    asynchronous deployment a cold-started (or restarted) source has
    simply *not heard* the prices yet — they are whatever the running
    system converged to, not zero — so defaulting them to 0.0 makes the
    path look free and spikes the rate to ``r_max``.  With
    ``assume_zero_prices=False`` the source holds its current rate
    (``r_min`` at cold start, the last deployed rate after a checkpoint
    restore) until the first price update from the route arrives.
    """

    role = "source"

    def __init__(
        self,
        problem: Problem,
        flow_id: FlowId,
        averaging_window: int = 1,
        telemetry: Telemetry = NULL_TELEMETRY,
        assume_zero_prices: bool = True,
    ) -> None:
        super().__init__(source_address(flow_id), telemetry=telemetry)
        self._problem = problem
        self._flow_id = flow_id
        self._assume_zero_prices = assume_zero_prices
        self._node_prices = _Averager(averaging_window)
        self._link_prices = _Averager(averaging_window)
        self._populations: dict[ClassId, int] = {
            class_id: 0 for class_id in problem.classes_of_flow(flow_id)
        }
        self.rate = problem.flows[flow_id].rate_min

    @property
    def flow_id(self) -> FlowId:
        return self._flow_id

    def receive(self, message: Message) -> None:
        if isinstance(message, NodePriceUpdate):
            self._node_prices.observe(message.node_id, message.price)
        elif isinstance(message, LinkPriceUpdate):
            self._link_prices.observe(message.link_id, message.price)
        elif isinstance(message, PopulationUpdate):
            for class_id, population in message.populations.items():
                if class_id in self._populations:
                    self._populations[class_id] = population
        else:
            raise TypeError(f"source agent got unexpected {type(message).__name__}")

    def _awaiting_first_price(self) -> bool:
        """True while holding for a first price in async cold start.

        Only holds when the route actually contains price-announcing
        agents (consumer nodes / finite links); a route without priced
        resources has structurally zero prices and never waits.
        """
        if self._assume_zero_prices:
            return False
        if self._node_prices.observed or self._link_prices.observed:
            return False
        problem = self._problem
        route = problem.route(self._flow_id)
        consumer_nodes = problem.consumer_nodes()
        return any(node_id in consumer_nodes for node_id in route.nodes) or any(
            not math.isinf(problem.links[link_id].capacity)
            for link_id in route.links
        )

    def act(self, stamp: float) -> list[Message]:
        problem = self._problem
        route = problem.route(self._flow_id)
        if self._awaiting_first_price():
            # Cold start in a running system: the path is NOT free, we
            # just have not heard its price yet.  Hold the current rate
            # (r_min, or the checkpointed rate) instead of spiking to
            # r_max, and keep announcing it so resource agents see us.
            return self._announcements(stamp)
        # PL_i + PB_i (eq. 8-9) from received prices.
        price = 0.0
        for link_id in route.links:
            price += problem.costs.link(link_id, self._flow_id) * self._link_prices.mean(
                link_id
            )
        for node_id in route.nodes:
            node_price = self._node_prices.mean(node_id)
            if is_zero(node_price):
                continue
            coefficient = problem.costs.flow_node(node_id, self._flow_id)
            for class_id in problem.classes_of_flow_at_node(self._flow_id, node_id):
                coefficient += (
                    problem.costs.consumer(node_id, class_id)
                    * self._populations[class_id]
                )
            price += coefficient * node_price
        self.rate = allocate_rate(problem, self._flow_id, self._populations, price)
        return self._announcements(stamp)

    def _announcements(self, stamp: float) -> list[Message]:
        """Rate announcements to every priced resource on the route."""
        problem = self._problem
        route = problem.route(self._flow_id)
        messages: list[Message] = []
        for node_id in route.nodes:
            if node_id in problem.consumer_nodes():
                messages.append(
                    RateUpdate(
                        sender=self.address,
                        recipient=node_address(node_id),
                        stamp=stamp,
                        flow_id=self._flow_id,
                        rate=self.rate,
                    )
                )
        for link_id in route.links:
            if not math.isinf(problem.links[link_id].capacity):
                messages.append(
                    RateUpdate(
                        sender=self.address,
                        recipient=link_address(link_id),
                        stamp=stamp,
                        flow_id=self._flow_id,
                        rate=self.rate,
                    )
                )
        self._record_activation(len(messages), stamp, rate=self.rate)
        return messages

    def snapshot(self) -> dict[str, object]:
        return {
            "rate": self.rate,
            "node_prices": self._node_prices.state_dict(),
            "link_prices": self._link_prices.state_dict(),
            "populations": dict(self._populations),
        }

    def restore(self, state: dict[str, object]) -> None:
        rate = state["rate"]
        assert isinstance(rate, float)
        self.rate = rate
        node_prices = state["node_prices"]
        assert isinstance(node_prices, dict)
        self._node_prices.load_state(node_prices)
        link_prices = state["link_prices"]
        assert isinstance(link_prices, dict)
        self._link_prices.load_state(link_prices)
        populations = state["populations"]
        assert isinstance(populations, dict)
        for class_id, population in populations.items():
            if class_id in self._populations:
                self._populations[class_id] = population


class NodeAgent(Agent):
    """Algorithm 2 at one consumer-hosting node.

    State: the latest rate of each flow reaching the node.  Each activation
    runs the greedy consumer allocation, updates the node price (eq. 12)
    and announces price + populations to the sources of those flows.
    """

    role = "node"

    def __init__(
        self,
        problem: Problem,
        node_id: NodeId,
        gamma: GammaSchedule,
        initial_price: float = 0.0,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        super().__init__(node_address(node_id), telemetry=telemetry)
        self._problem = problem
        self._node_id = node_id
        self._rates: dict[FlowId, float] = {
            flow_id: problem.flows[flow_id].rate_min
            for flow_id in problem.flows_at_node(node_id)
        }
        self._controller = NodePriceController(
            capacity=problem.nodes[node_id].capacity,
            gamma_under=gamma,
            initial_price=initial_price,
        )
        probe = telemetry.probe("node", node_id)
        if probe is not None:
            self._controller.attach_probe(probe)
        self.populations: dict[ClassId, int] = {
            class_id: 0 for class_id in problem.classes_at_node(node_id)
        }

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    @property
    def price(self) -> float:
        return self._controller.price

    def receive(self, message: Message) -> None:
        if not isinstance(message, RateUpdate):
            raise TypeError(f"node agent got unexpected {type(message).__name__}")
        if message.flow_id in self._rates:
            self._rates[message.flow_id] = message.rate

    def act(self, stamp: float) -> list[Message]:
        problem = self._problem
        result = allocate_consumers(problem, self._node_id, self._rates)
        self.populations = dict(result.populations)
        self._controller.update(
            benefit_cost=result.best_unsatisfied_ratio, used=result.used
        )

        messages: list[Message] = []
        for flow_id in problem.flows_at_node(self._node_id):
            recipient = source_address(flow_id)
            messages.append(
                NodePriceUpdate(
                    sender=self.address,
                    recipient=recipient,
                    stamp=stamp,
                    node_id=self._node_id,
                    price=self._controller.price,
                )
            )
            class_ids = problem.classes_of_flow_at_node(flow_id, self._node_id)
            if class_ids:
                messages.append(
                    PopulationUpdate(
                        sender=self.address,
                        recipient=recipient,
                        stamp=stamp,
                        node_id=self._node_id,
                        flow_id=flow_id,
                        populations={
                            class_id: self.populations[class_id]
                            for class_id in class_ids
                        },
                    )
                )
        self._record_activation(
            len(messages),
            stamp,
            price=self._controller.price,
            populations=self.populations,
        )
        return messages

    def snapshot(self) -> dict[str, object]:
        return {
            "rates": dict(self._rates),
            "populations": dict(self.populations),
            "controller": self._controller.state_dict(),
        }

    def restore(self, state: dict[str, object]) -> None:
        rates = state["rates"]
        assert isinstance(rates, dict)
        for flow_id, rate in rates.items():
            if flow_id in self._rates:
                self._rates[flow_id] = rate
        populations = state["populations"]
        assert isinstance(populations, dict)
        self.populations = {
            class_id: populations.get(class_id, 0)
            for class_id in self.populations
        }
        controller = state["controller"]
        assert isinstance(controller, dict)
        self._controller.load_state(controller)


class LinkAgent(Agent):
    """Algorithm 3 on behalf of one finite-capacity link."""

    role = "link"

    def __init__(
        self,
        problem: Problem,
        link_id: LinkId,
        gamma: float,
        initial_price: float = 0.0,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        super().__init__(link_address(link_id), telemetry=telemetry)
        self._problem = problem
        self._link_id = link_id
        self._rates: dict[FlowId, float] = {
            flow_id: problem.flows[flow_id].rate_min
            for flow_id in problem.flows_on_link(link_id)
        }
        self._controller = LinkPriceController(
            capacity=problem.links[link_id].capacity,
            gamma=gamma,
            initial_price=initial_price,
        )
        probe = telemetry.probe("link", link_id)
        if probe is not None:
            self._controller.attach_probe(probe)

    @property
    def link_id(self) -> LinkId:
        return self._link_id

    @property
    def price(self) -> float:
        return self._controller.price

    def receive(self, message: Message) -> None:
        if not isinstance(message, RateUpdate):
            raise TypeError(f"link agent got unexpected {type(message).__name__}")
        if message.flow_id in self._rates:
            self._rates[message.flow_id] = message.rate

    def act(self, stamp: float) -> list[Message]:
        problem = self._problem
        usage = sum(
            problem.costs.link(self._link_id, flow_id) * rate
            for flow_id, rate in self._rates.items()
        )
        self._controller.update(usage)
        messages: list[Message] = [
            LinkPriceUpdate(
                sender=self.address,
                recipient=source_address(flow_id),
                stamp=stamp,
                link_id=self._link_id,
                price=self._controller.price,
            )
            for flow_id in problem.flows_on_link(self._link_id)
        ]
        self._record_activation(len(messages), stamp, price=self._controller.price)
        return messages

    def snapshot(self) -> dict[str, object]:
        return {
            "rates": dict(self._rates),
            "controller": self._controller.state_dict(),
        }

    def restore(self, state: dict[str, object]) -> None:
        rates = state["rates"]
        assert isinstance(rates, dict)
        for flow_id, rate in rates.items():
            if flow_id in self._rates:
                self._rates[flow_id] = rate
        controller = state["controller"]
        assert isinstance(controller, dict)
        self._controller.load_state(controller)


class PopulationCollisionError(RuntimeError):
    """Two node agents reported consumer populations for the same class.

    Every consumer class lives at exactly one node (section 2.2), so a
    collision means the deployment is malformed — e.g. two agents were
    built for the same node, or a problem mutation re-homed a class while
    stale agents were still reporting.  Merging with ``dict.update`` would
    silently keep whichever agent iterated last; fail loudly instead.
    """


def merge_populations(nodes: Iterable[object]) -> dict[ClassId, int]:
    """Merge per-node population reports into one global mapping.

    ``nodes`` is any iterable of agents exposing ``address`` and
    ``populations`` (:class:`NodeAgent`, :class:`MultirateNodeAgent`).
    Raises :class:`PopulationCollisionError` when two distinct agents
    report the same class.
    """
    merged: dict[ClassId, int] = {}
    owners: dict[ClassId, str] = {}
    for node in nodes:
        address = getattr(node, "address", "<unknown>")
        populations = getattr(node, "populations")
        for class_id, population in populations.items():
            previous = owners.get(class_id)
            if previous is not None and previous != address:
                raise PopulationCollisionError(
                    f"class {class_id!r} reported by both {previous} and "
                    f"{address}; every class has exactly one hosting node"
                )
            owners[class_id] = address
            merged[class_id] = population
    return merged
