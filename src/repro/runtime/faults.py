"""Deterministic failure injection for the distributed LRGP deployment.

The paper's asynchronous treatment (sections 3.5, 4.3) argues LRGP
tolerates staleness, loss and churn, but its evaluation only exercises the
mildest case (one flow leaving).  This module supplies the machinery to
test the strong version of the claim: a seeded :class:`FaultPlan`
schedules **agent crashes with restarts**, **network partitions** (healed
after a window) and **message-delay storms** against
:class:`~repro.runtime.asynchronous.AsynchronousRuntime`, which executes
them deterministically alongside the ordinary protocol events.

Crash recovery has two flavours:

* **checkpoint restart** (default) — the runtime checkpoints every live
  agent every :attr:`FaultPlan.checkpoint_interval` time units via
  ``Agent.snapshot()``; a restarted agent resumes from the last checkpoint
  (``Agent.restore()``), i.e. with its converged prices, rates and step
  sizes;
* **cold restart** (``cold=True``) — the agent rejoins with fresh state
  (prices 0, rates ``r_min``), the worst case the recovery-time benchmark
  compares against.

All randomness in plan *generation* flows from one explicit seed
(:meth:`FaultPlan.random`); execution adds no randomness of its own beyond
the runtime's seeded RNG, so a (config, plan) pair pins the entire faulty
trajectory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.model.problem import Problem
from repro.runtime.agents import link_address, node_address, source_address


@dataclass(frozen=True)
class CrashFault:
    """One agent crash, optionally followed by a restart.

    ``restart_after`` is the downtime in simulated time units; ``None``
    means the agent never comes back (permanent failure).  ``cold``
    forces a cold restart even when a checkpoint exists.
    """

    at: float
    address: str
    restart_after: float | None = None
    cold: bool = False

    def __post_init__(self) -> None:
        if self.at < 0.0:
            raise ValueError(f"crash time must be non-negative, got {self.at}")
        if self.restart_after is not None and self.restart_after <= 0.0:
            raise ValueError(
                f"restart_after must be positive, got {self.restart_after}"
            )


@dataclass(frozen=True)
class PartitionFault:
    """A network partition isolating a group of agents for a window.

    While active, any message crossing the cut — one endpoint in
    ``isolated``, the other outside — is dropped at delivery time (it was
    on a link that no longer exists).  The partition heals at
    ``at + duration``.
    """

    at: float
    duration: float
    isolated: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.at < 0.0:
            raise ValueError(f"partition time must be non-negative, got {self.at}")
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if not self.isolated:
            raise ValueError("a partition must isolate at least one agent")
        object.__setattr__(self, "isolated", frozenset(self.isolated))

    @property
    def target(self) -> str:
        """Stable label for telemetry (``+``-joined sorted addresses)."""
        return "+".join(sorted(self.isolated))


@dataclass(frozen=True)
class DelayStorm:
    """A window during which message latency is multiplied by ``factor``."""

    at: float
    duration: float
    factor: float = 10.0

    def __post_init__(self) -> None:
        if self.at < 0.0:
            raise ValueError(f"storm time must be non-negative, got {self.at}")
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.factor < 1.0:
            raise ValueError(
                f"a delay storm slows messages down: factor >= 1, got {self.factor}"
            )


def agent_addresses(problem: Problem) -> tuple[str, ...]:
    """Every agent address the asynchronous runtime deploys for ``problem``
    (sources, consumer-node agents, bottleneck-link agents), sorted."""
    addresses = [source_address(flow_id) for flow_id in sorted(problem.flows)]
    addresses.extend(node_address(node_id) for node_id in problem.consumer_nodes())
    addresses.extend(link_address(link_id) for link_id in problem.bottleneck_links())
    return tuple(sorted(addresses))


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults plus the recovery knobs.

    ``checkpoint_interval`` controls how often the runtime snapshots live
    agents (``None`` disables checkpointing — every restart is cold).
    ``recovery_threshold`` is the fraction of pre-fault utility at which a
    restarted agent counts as *recovered* for the recovery-time metric.
    """

    crashes: tuple[CrashFault, ...] = ()
    partitions: tuple[PartitionFault, ...] = ()
    storms: tuple[DelayStorm, ...] = ()
    checkpoint_interval: float | None = 5.0
    recovery_threshold: float = 0.99

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "storms", tuple(self.storms))
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0.0:
            raise ValueError(
                f"checkpoint_interval must be positive, got {self.checkpoint_interval}"
            )
        if not 0.0 < self.recovery_threshold <= 1.0:
            raise ValueError(
                f"recovery_threshold must be in (0, 1], got {self.recovery_threshold}"
            )

    def __bool__(self) -> bool:
        return bool(self.crashes or self.partitions or self.storms)

    @property
    def fault_count(self) -> int:
        return len(self.crashes) + len(self.partitions) + len(self.storms)

    def addresses(self) -> frozenset[str]:
        """Every address named anywhere in the plan (for validation)."""
        named: set[str] = {crash.address for crash in self.crashes}
        for partition in self.partitions:
            named.update(partition.isolated)
        return frozenset(named)

    @staticmethod
    def random(
        problem: Problem,
        seed: int,
        horizon: float,
        crash_rate: float = 0.01,
        mean_downtime: float = 5.0,
        cold_probability: float = 0.0,
        partition_rate: float = 0.0,
        mean_partition: float = 10.0,
        storm_rate: float = 0.0,
        mean_storm: float = 10.0,
        storm_factor: float = 10.0,
        warmup: float = 0.0,
        checkpoint_interval: float | None = 5.0,
    ) -> "FaultPlan":
        """A seeded random plan against ``problem``'s agent fleet.

        Fault arrivals are Poisson processes over ``(warmup, horizon)``:
        ``crash_rate`` / ``partition_rate`` / ``storm_rate`` are expected
        events per time unit across the whole fleet; downtimes and window
        lengths are exponential with the given means (floored at one tenth
        of the mean so zero-length windows cannot occur).  The same
        ``(problem, seed, ...)`` arguments always produce the same plan —
        there is no entropy-seeded path.
        """
        if horizon <= warmup:
            raise ValueError(
                f"horizon {horizon} must exceed warmup {warmup}"
            )
        for name, rate in (
            ("crash_rate", crash_rate),
            ("partition_rate", partition_rate),
            ("storm_rate", storm_rate),
        ):
            if rate < 0.0:
                raise ValueError(f"{name} must be non-negative, got {rate}")
        if not 0.0 <= cold_probability <= 1.0:
            raise ValueError(
                f"cold_probability must be in [0, 1], got {cold_probability}"
            )
        rng = random.Random(seed)
        fleet = agent_addresses(problem)

        def arrivals(rate: float) -> list[float]:
            times: list[float] = []
            now = warmup
            while rate > 0.0:
                now += rng.expovariate(rate)
                if now >= horizon:
                    break
                times.append(now)
            return times

        def window(mean: float) -> float:
            return max(rng.expovariate(1.0 / mean), mean / 10.0)

        crashes = tuple(
            CrashFault(
                at=at,
                address=rng.choice(fleet),
                restart_after=window(mean_downtime),
                cold=rng.random() < cold_probability,
            )
            for at in arrivals(crash_rate)
        )
        partitions = tuple(
            PartitionFault(
                at=at,
                duration=window(mean_partition),
                isolated=frozenset({rng.choice(fleet)}),
            )
            for at in arrivals(partition_rate)
        )
        storms = tuple(
            DelayStorm(at=at, duration=window(mean_storm), factor=storm_factor)
            for at in arrivals(storm_rate)
        )
        return FaultPlan(
            crashes=crashes,
            partitions=partitions,
            storms=storms,
            checkpoint_interval=checkpoint_interval,
        )


@dataclass(frozen=True)
class RecoveryRecord:
    """One completed crash-restart-recover cycle, for the recovery metric."""

    address: str
    crashed_at: float
    restarted_at: float
    recovered_at: float
    from_checkpoint: bool

    @property
    def downtime(self) -> float:
        return self.restarted_at - self.crashed_at

    @property
    def recovery_time(self) -> float:
        """Time from restart until global utility re-crossed the
        recovery threshold."""
        return self.recovered_at - self.restarted_at
