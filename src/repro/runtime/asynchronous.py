"""Asynchronous deployment of the LRGP protocol.

Section 3.5: the synchronous formulation can be made asynchronous with known
techniques — agents act on their own clocks over possibly stale state, and
sources average over the last few prices from a resource (Low & Lapsley) to
tolerate missing or delayed updates.

This engine is a discrete-event simulation: every agent activates
periodically (with jitter), messages travel with random latency and may be
lost, and sources apply window averaging to received prices.  A global
observer samples the "deployed" state (rates at the sources, populations at
the nodes) on a fixed interval, producing a utility-over-time trajectory
comparable to the synchronous per-iteration one.

Three protocol-hardening layers sit on top of the basic simulation:

* **sequence numbers** — every dispatched message carries a per-sender
  sequence number; a delivery whose sequence is not newer than the last
  one seen on the same (sender, recipient, type) channel is rejected as
  stale, so reordered or retransmitted updates cannot roll state backwards;
* **bounded retry** — with a :class:`~repro.events.reliability.RetryPolicy`,
  rate announcements are acknowledged at delivery and retransmitted (same
  sequence number) after ``timeout`` up to ``max_retries`` times, the same
  machinery :mod:`repro.events.reliability` applies to consumer delivery;
* **failure injection** — a :class:`~repro.runtime.faults.FaultPlan`
  schedules agent crashes/restarts, network partitions and delay storms;
  the runtime checkpoints live agents periodically so a restarted agent
  resumes from its last checkpoint (see :mod:`repro.runtime.faults`).

All randomness flows from one seeded :class:`random.Random`, so runs are
reproducible — including faulty ones.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from collections.abc import Callable
from dataclasses import dataclass, replace

from repro.core.gamma import AdaptiveGamma, GammaSchedule
from repro.events.reliability import RetryPolicy
from repro.model.allocation import Allocation, total_utility
from repro.model.problem import Problem
from repro.obs.causal import CausalContext
from repro.obs.events import (
    AgentRestartedEvent,
    FaultInjectedEvent,
    IterationEvent,
    MessageEvent,
    now_ns,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.runtime.agents import (
    Agent,
    LinkAgent,
    NodeAgent,
    SourceAgent,
    merge_populations,
)
from repro.runtime.faults import CrashFault, FaultPlan, RecoveryRecord
from repro.runtime.messages import Message, RateUpdate

#: Profiler phase for each event kind; the ``fault_*`` family falls through
#: to the ``"faults"`` default.
_PHASE_OF_KIND = {
    "activate": "activation",
    "deliver": "delivery",
    "ack_check": "retransmit",
    "sample": "sample",
    "checkpoint": "checkpoint",
}


@dataclass(frozen=True)
class AsyncConfig:
    """Timing, reliability and staleness-tolerance knobs.

    Times are in abstract units; one synchronous iteration corresponds
    roughly to one ``activation_period`` (the paper equates iteration time
    with the maximum round-trip time, section 4.3).
    """

    activation_period: float = 1.0
    #: Relative jitter on each agent's activation period (uniform +-).
    period_jitter: float = 0.2
    #: Mean one-way message latency.
    latency_mean: float = 0.25
    #: Relative jitter on latency (uniform +-).
    latency_jitter: float = 0.5
    #: Probability that any message is silently dropped.
    loss_probability: float = 0.0
    #: Number of recent prices a source averages per resource (1 = latest).
    averaging_window: int = 3
    #: Interval at which the observer samples global utility.
    sample_interval: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.activation_period <= 0.0:
            raise ValueError("activation_period must be positive")
        if not 0.0 <= self.period_jitter < 1.0:
            raise ValueError("period_jitter must be in [0, 1)")
        if self.latency_mean < 0.0:
            raise ValueError("latency_mean must be non-negative")
        if not 0.0 <= self.latency_jitter <= 1.0:
            raise ValueError("latency_jitter must be in [0, 1]")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if self.averaging_window < 1:
            raise ValueError("averaging_window must be >= 1")
        if self.sample_interval <= 0.0:
            raise ValueError("sample_interval must be positive")


class _Recovering:
    """Book-keeping for one crash awaiting utility recovery."""

    __slots__ = ("crashed_at", "pre_utility", "restarted_at", "from_checkpoint")

    def __init__(self, crashed_at: float, pre_utility: float) -> None:
        self.crashed_at = crashed_at
        self.pre_utility = pre_utility
        self.restarted_at: float | None = None
        self.from_checkpoint = False


class AsynchronousRuntime:
    """Discrete-event asynchronous execution of the LRGP agents.

    ``fault_plan`` injects the scheduled crashes/partitions/storms (see
    :mod:`repro.runtime.faults`); ``retry`` enables acknowledged delivery
    with bounded retransmission for rate announcements.  Both default to
    off, leaving the plain lossy-asynchronous behaviour.

    Sources here run with ``assume_zero_prices=False``: a source that has
    not yet heard a price holds its current rate instead of treating the
    route as free and spiking to ``r_max`` (the synchronous runtime keeps
    the exact zero-initial-price semantics; see
    :class:`~repro.runtime.agents.SourceAgent`).
    """

    def __init__(
        self,
        problem: Problem,
        config: AsyncConfig | None = None,
        node_gamma: GammaSchedule | None = None,
        link_gamma: float = 1e-4,
        telemetry: Telemetry = NULL_TELEMETRY,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        trace_id: str | None = None,
    ) -> None:
        self._problem = problem
        self._config = config or AsyncConfig()
        self._rng = random.Random(self._config.seed)
        self._telemetry = telemetry
        # Causal tracing (schema v2): span ids are allocated sequentially
        # in event order, which the seeded simulation makes deterministic.
        # No context object exists at all when telemetry is off.
        self._tracer = (
            CausalContext(trace_id or f"async-{self._config.seed}")
            if telemetry.enabled
            else None
        )
        self._plan = fault_plan
        self._retry = retry
        prototype = node_gamma if node_gamma is not None else AdaptiveGamma()

        # Factories rebuild an agent with cold state after a crash; a
        # checkpoint (if any) is then layered on via Agent.restore().
        self._factories: dict[str, Callable[[], Agent]] = {}

        def source_factory(flow_id: str) -> Callable[[], Agent]:
            return lambda: SourceAgent(
                problem,
                flow_id,
                averaging_window=self._config.averaging_window,
                telemetry=telemetry,
                assume_zero_prices=False,
            )

        def node_factory(node_id: str) -> Callable[[], Agent]:
            return lambda: NodeAgent(
                problem, node_id, gamma=prototype.clone(), telemetry=telemetry
            )

        def link_factory(link_id: str) -> Callable[[], Agent]:
            return lambda: LinkAgent(
                problem, link_id, gamma=link_gamma, telemetry=telemetry
            )

        self._sources: list[SourceAgent] = []
        for flow_id in sorted(problem.flows):
            factory = source_factory(flow_id)
            agent = factory()
            assert isinstance(agent, SourceAgent)
            self._factories[agent.address] = factory
            self._sources.append(agent)
        self._nodes: list[NodeAgent] = []
        for node_id in problem.consumer_nodes():
            factory = node_factory(node_id)
            agent = factory()
            assert isinstance(agent, NodeAgent)
            self._factories[agent.address] = factory
            self._nodes.append(agent)
        self._links: list[LinkAgent] = []
        for link_id in problem.bottleneck_links():
            factory = link_factory(link_id)
            agent = factory()
            assert isinstance(agent, LinkAgent)
            self._factories[agent.address] = factory
            self._links.append(agent)
        self._agents: dict[str, Agent] = {
            agent.address: agent
            for agent in [*self._sources, *self._nodes, *self._links]
        }

        self._queue: list[tuple[float, int, str, object]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self.samples: list[tuple[float, float]] = []
        self.messages_sent = 0
        self.messages_lost = 0
        #: Sequenced deliveries rejected because a newer update from the
        #: same sender had already been seen on that channel.
        self.messages_stale = 0
        #: Deliveries dropped because the recipient was crashed.
        self.messages_to_down = 0
        #: Deliveries dropped because they crossed an active partition cut.
        self.messages_partitioned = 0
        self.retransmissions = 0
        self.retries_abandoned = 0
        #: Completed crash -> restart -> utility-recovered cycles.
        self.recoveries: list[RecoveryRecord] = []

        #: Per-sender send counters; each dispatched message gets the next.
        self._send_seq: dict[str, int] = {}
        #: Newest sequence seen per (sender, recipient, message type).
        self._last_seen: dict[tuple[str, str, str], int] = {}
        #: Unacknowledged rate announcements, keyed (sender, seq).
        self._pending_acks: dict[tuple[str, int], Message] = {}

        self._down: set[str] = set()
        self._partitions: list[frozenset[str]] = []
        self._storm_factors: list[float] = []
        self._checkpoints: dict[str, dict[str, object]] = {}
        self._recovering: dict[str, _Recovering] = {}

        # Stagger initial activations uniformly across one period so agents
        # do not start in lockstep.
        for agent in self._agents.values():
            offset = self._rng.uniform(0.0, self._config.activation_period)
            self._schedule(offset, "activate", agent.address)
        # Samples live on the absolute grid k * sample_interval.  Scheduling
        # them by repeated ``now + interval`` accumulates float error, so a
        # sample nominally at the end of a run_until() window could land
        # just past it and silently slip into the next call.
        self._schedule(self._config.sample_interval, "sample", 1)

        if fault_plan is not None:
            unknown = fault_plan.addresses() - set(self._agents)
            if unknown:
                raise ValueError(
                    "fault plan names unknown agents: "
                    + ", ".join(sorted(unknown))
                )
            for crash in fault_plan.crashes:
                self._schedule(crash.at, "fault_crash", crash)
                if crash.restart_after is not None:
                    self._schedule(
                        crash.at + crash.restart_after, "fault_restart", crash
                    )
            for partition in fault_plan.partitions:
                self._schedule(partition.at, "fault_partition", partition)
                self._schedule(
                    partition.at + partition.duration, "fault_heal", partition
                )
            for storm in fault_plan.storms:
                self._schedule(storm.at, "fault_storm", storm)
                self._schedule(storm.at + storm.duration, "fault_storm_end", storm)
            if fault_plan.checkpoint_interval is not None:
                self._schedule(fault_plan.checkpoint_interval, "checkpoint", 1)

    # -- event plumbing -----------------------------------------------------

    def _schedule(self, at: float, kind: str, payload: object) -> None:
        heapq.heappush(self._queue, (at, next(self._sequence), kind, payload))

    def _next_period(self) -> float:
        jitter = self._config.period_jitter
        return self._config.activation_period * (
            1.0 + self._rng.uniform(-jitter, jitter)
        )

    def _latency(self) -> float:
        jitter = self._config.latency_jitter
        latency = self._config.latency_mean * (
            1.0 + self._rng.uniform(-jitter, jitter)
        )
        return latency * math.prod(self._storm_factors)

    def _dispatch(self, messages: list[Message]) -> None:
        retry = self._retry
        tracer = self._tracer
        for message in messages:
            seq = self._send_seq.get(message.sender, 0)
            self._send_seq[message.sender] = seq + 1
            if tracer is not None:
                span_id, parent = tracer.message_context(message.sender)
                message = replace(
                    message,
                    seq=seq,
                    trace_id=tracer.trace_id,
                    span_id=span_id,
                    parent_span_id=parent,
                )
            else:
                message = replace(message, seq=seq)
            if retry is not None and isinstance(message, RateUpdate):
                self._pending_acks[(message.sender, seq)] = message
                self._schedule(
                    self._now + retry.timeout, "ack_check", (message, 0)
                )
            self._send(message)

    def _send(self, message: Message) -> None:
        """One transmission attempt (first send or retransmission)."""
        registry = self._telemetry.registry
        self.messages_sent += 1
        registry.counter("runtime.async.messages_sent").inc()
        if self._rng.random() < self._config.loss_probability:
            self.messages_lost += 1
            registry.counter("runtime.async.messages_lost").inc()
            return
        self._schedule(self._now + self._latency(), "deliver", message)

    def _partitioned(self, sender: str, recipient: str) -> bool:
        return any(
            (sender in isolated) != (recipient in isolated)
            for isolated in self._partitions
        )

    def _replace_agent(self, agent: Agent) -> None:
        address = agent.address
        self._agents[address] = agent
        if isinstance(agent, SourceAgent):
            self._sources = [
                agent if existing.address == address else existing
                for existing in self._sources
            ]
        elif isinstance(agent, NodeAgent):
            self._nodes = [
                agent if existing.address == address else existing
                for existing in self._nodes
            ]
        elif isinstance(agent, LinkAgent):
            self._links = [
                agent if existing.address == address else existing
                for existing in self._links
            ]

    def _emit_fault(self, fault: str, target: str) -> None:
        telemetry = self._telemetry
        telemetry.registry.counter("runtime.async.faults").inc()
        if telemetry.enabled:
            telemetry.emit(
                FaultInjectedEvent(
                    fault=fault, target=target, at=self._now, t_ns=now_ns()
                )
            )

    # -- event handlers -----------------------------------------------------

    def _handle_activate(self, address: str) -> None:
        if address in self._down:
            # Crashed: swallow the activation and do not reschedule; the
            # restart event seeds a fresh activation chain.
            return
        agent = self._agents[address]
        if self._tracer is not None:
            agent.causal = self._tracer.begin_activation(address)
        self._dispatch(agent.act(self._now))
        self._schedule(self._now + self._next_period(), "activate", address)

    def _handle_deliver(self, message: Message) -> None:
        telemetry = self._telemetry
        if message.recipient in self._down:
            self.messages_to_down += 1
            telemetry.registry.counter("runtime.async.messages_to_down").inc()
            return
        if self._partitioned(message.sender, message.recipient):
            self.messages_partitioned += 1
            telemetry.registry.counter(
                "runtime.async.messages_partitioned"
            ).inc()
            return
        # The recipient's transport acks a rate announcement on receipt,
        # duplicate or not; the ack itself may be lost.
        if (
            self._retry is not None
            and isinstance(message, RateUpdate)
            and (message.sender, message.seq) in self._pending_acks
            and not self._rng.random() < self._config.loss_probability
        ):
            del self._pending_acks[(message.sender, message.seq)]
        if message.seq >= 0:
            channel = (message.sender, message.recipient, type(message).__name__)
            if message.seq <= self._last_seen.get(channel, -1):
                self.messages_stale += 1
                telemetry.registry.counter("runtime.async.messages_stale").inc()
                return
            self._last_seen[channel] = message.seq
        self._agents[message.recipient].receive(message)
        if self._tracer is not None:
            self._tracer.record_delivery(message.recipient, message.span_id)
        if telemetry.enabled:
            latency = self._now - message.stamp
            telemetry.emit(
                MessageEvent(
                    sender=message.sender,
                    recipient=message.recipient,
                    payload=type(message).__name__,
                    t_ns=now_ns(),
                    latency=latency,
                    at=self._now,
                    trace_id=message.trace_id,
                    span_id=message.span_id,
                    parent_span_id=message.parent_span_id,
                )
            )
            telemetry.registry.histogram("runtime.async.latency").observe(latency)

    def _handle_ack_check(self, message: Message, attempt: int) -> None:
        retry = self._retry
        assert retry is not None
        key = (message.sender, message.seq)
        if key not in self._pending_acks:
            return  # acknowledged
        if attempt >= retry.max_retries or message.sender in self._down:
            del self._pending_acks[key]
            self.retries_abandoned += 1
            self._telemetry.registry.counter(
                "runtime.async.retries_abandoned"
            ).inc()
            return
        self.retransmissions += 1
        self._telemetry.registry.counter("runtime.async.retransmissions").inc()
        self._send(message)
        self._schedule(self._now + retry.timeout, "ack_check", (message, attempt + 1))

    def _handle_sample(self, index: int) -> None:
        utility = self.utility()
        self.samples.append((self._now, utility))
        telemetry = self._telemetry
        telemetry.registry.gauge("runtime.async.utility").set(utility)
        if telemetry.enabled:
            telemetry.emit(
                IterationEvent(
                    iteration=len(self.samples),
                    utility=utility,
                    t_ns=now_ns(),
                    at=self._now,
                )
            )
        self._resolve_recoveries(utility)
        self._schedule(
            (index + 1) * self._config.sample_interval, "sample", index + 1
        )

    def _resolve_recoveries(self, utility: float) -> None:
        if self._plan is None or not self._recovering:
            return
        threshold = self._plan.recovery_threshold
        for address in list(self._recovering):
            info = self._recovering[address]
            if info.restarted_at is None:
                continue
            if utility >= threshold * info.pre_utility:
                record = RecoveryRecord(
                    address=address,
                    crashed_at=info.crashed_at,
                    restarted_at=info.restarted_at,
                    recovered_at=self._now,
                    from_checkpoint=info.from_checkpoint,
                )
                self.recoveries.append(record)
                self._telemetry.registry.histogram(
                    "runtime.async.recovery_time"
                ).observe(record.recovery_time)
                del self._recovering[address]

    def _handle_crash(self, crash: CrashFault) -> None:
        if crash.address in self._down:
            return
        # Utility just before the failure: the recovery baseline.
        pre_utility = self.utility()
        self._down.add(crash.address)
        self._recovering[crash.address] = _Recovering(
            crashed_at=self._now, pre_utility=pre_utility
        )
        self._emit_fault("crash", crash.address)

    def _handle_restart(self, crash: CrashFault) -> None:
        address = crash.address
        if address not in self._down:
            return
        self._down.discard(address)
        checkpoint = None if crash.cold else self._checkpoints.get(address)
        agent = self._factories[address]()
        if checkpoint is not None:
            agent.restore(checkpoint)
        self._replace_agent(agent)
        info = self._recovering.get(address)
        if info is not None:
            info.restarted_at = self._now
            info.from_checkpoint = checkpoint is not None
        telemetry = self._telemetry
        telemetry.registry.counter("runtime.async.restarts").inc()
        if telemetry.enabled:
            # The restored state comes from a checkpoint (or cold init)
            # that never appears in the event stream, so the restart event
            # must carry it — otherwise a trace replay loses track of the
            # agent's deployed state across the crash.
            rate = agent.rate if isinstance(agent, SourceAgent) else None
            price: float | None = None
            populations: dict[str, int] | None = None
            if isinstance(agent, NodeAgent):
                price = agent.price
                populations = dict(agent.populations)
            elif isinstance(agent, LinkAgent):
                price = agent.price
            telemetry.emit(
                AgentRestartedEvent(
                    agent=address,
                    at=self._now,
                    downtime=self._now - crash.at,
                    from_checkpoint=checkpoint is not None,
                    t_ns=now_ns(),
                    rate=rate,
                    price=price,
                    populations=populations,
                )
            )
        self._schedule(self._now, "activate", address)

    def _handle_checkpoint(self, index: int) -> None:
        assert self._plan is not None and self._plan.checkpoint_interval is not None
        for address, agent in self._agents.items():
            if address not in self._down:
                self._checkpoints[address] = agent.snapshot()
        self._telemetry.registry.counter("runtime.async.checkpoints").inc()
        self._schedule(
            (index + 1) * self._plan.checkpoint_interval, "checkpoint", index + 1
        )

    # -- execution ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def down_agents(self) -> frozenset[str]:
        """Addresses currently crashed."""
        return frozenset(self._down)

    def run_until(self, end_time: float) -> None:
        """Process events until the clock passes ``end_time``.

        Events scheduled exactly at ``end_time`` fire in this call (and,
        having been consumed, never again in a later call) — the window is
        half-open on the left: ``(previous end, end_time]``.
        """
        if end_time < self._now:
            raise ValueError(f"end_time {end_time} is in the past (now={self._now})")
        profiler = self._telemetry.profiler
        with profiler.phase("runtime"):
            while self._queue and self._queue[0][0] <= end_time:
                at, _, kind, payload = heapq.heappop(self._queue)
                self._now = at
                with profiler.phase(_PHASE_OF_KIND.get(kind, "faults")):
                    if kind == "activate":
                        assert isinstance(payload, str)
                        self._handle_activate(payload)
                    elif kind == "deliver":
                        assert isinstance(payload, Message)
                        self._handle_deliver(payload)
                    elif kind == "ack_check":
                        assert isinstance(payload, tuple)
                        message, attempt = payload
                        self._handle_ack_check(message, attempt)
                    elif kind == "sample":
                        assert isinstance(payload, int)
                        self._handle_sample(payload)
                    elif kind == "fault_crash":
                        assert isinstance(payload, CrashFault)
                        self._handle_crash(payload)
                    elif kind == "fault_restart":
                        assert isinstance(payload, CrashFault)
                        self._handle_restart(payload)
                    elif kind == "fault_partition":
                        self._partitions.append(payload.isolated)  # type: ignore[attr-defined]
                        self._emit_fault("partition", payload.target)  # type: ignore[attr-defined]
                    elif kind == "fault_heal":
                        self._partitions.remove(payload.isolated)  # type: ignore[attr-defined]
                        self._emit_fault("partition_heal", payload.target)  # type: ignore[attr-defined]
                    elif kind == "fault_storm":
                        self._storm_factors.append(payload.factor)  # type: ignore[attr-defined]
                        self._emit_fault("delay_storm", "*")
                    elif kind == "fault_storm_end":
                        self._storm_factors.remove(payload.factor)  # type: ignore[attr-defined]
                        self._emit_fault("delay_storm_end", "*")
                    elif kind == "checkpoint":
                        assert isinstance(payload, int)
                        self._handle_checkpoint(payload)
                    else:  # pragma: no cover - defensive
                        raise RuntimeError(f"unknown event kind {kind!r}")
        self._now = end_time

    def allocation(self) -> Allocation:
        """Global snapshot of deployed state (may be mutually stale).

        Crashed node agents contribute zero populations — their consumers
        are disconnected while the agent is down.  Crashed sources keep
        their last deployed rate: the data plane keeps forwarding at the
        last configured rate even though the control agent is dead.
        """
        rates = {source.flow_id: source.rate for source in self._sources}
        populations = merge_populations(
            node for node in self._nodes if node.address not in self._down
        )
        for node in self._nodes:
            if node.address in self._down:
                for class_id in node.populations:
                    populations.setdefault(class_id, 0)
        return Allocation(rates=rates, populations=populations)

    def node_prices(self) -> dict[str, float]:
        return {node.node_id: node.price for node in self._nodes}

    def link_prices(self) -> dict[str, float]:
        return {link.link_id: link.price for link in self._links}

    def utility(self) -> float:
        return total_utility(self._problem, self.allocation())

    def utilities(self) -> list[float]:
        """The sampled utility trajectory (one value per sample tick)."""
        return [value for _, value in self.samples]

    def converged_utility(self, tail: int = 20) -> float:
        """Mean utility over the trailing ``tail`` samples."""
        values = self.utilities()[-tail:]
        if not values:
            raise RuntimeError("no samples recorded yet; call run_until first")
        return math.fsum(values) / len(values)
