"""Asynchronous deployment of the LRGP protocol.

Section 3.5: the synchronous formulation can be made asynchronous with known
techniques — agents act on their own clocks over possibly stale state, and
sources average over the last few prices from a resource (Low & Lapsley) to
tolerate missing or delayed updates.

This engine is a discrete-event simulation: every agent activates
periodically (with jitter), messages travel with random latency and may be
lost, and sources apply window averaging to received prices.  A global
observer samples the "deployed" state (rates at the sources, populations at
the nodes) on a fixed interval, producing a utility-over-time trajectory
comparable to the synchronous per-iteration one.

All randomness flows from one seeded :class:`random.Random`, so runs are
reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from dataclasses import dataclass

from repro.core.gamma import AdaptiveGamma, GammaSchedule
from repro.model.allocation import Allocation, total_utility
from repro.model.problem import Problem
from repro.obs.events import IterationEvent, MessageEvent, now_ns
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.runtime.agents import Agent, LinkAgent, NodeAgent, SourceAgent
from repro.runtime.messages import Message


@dataclass(frozen=True)
class AsyncConfig:
    """Timing, reliability and staleness-tolerance knobs.

    Times are in abstract units; one synchronous iteration corresponds
    roughly to one ``activation_period`` (the paper equates iteration time
    with the maximum round-trip time, section 4.3).
    """

    activation_period: float = 1.0
    #: Relative jitter on each agent's activation period (uniform +-).
    period_jitter: float = 0.2
    #: Mean one-way message latency.
    latency_mean: float = 0.25
    #: Relative jitter on latency (uniform +-).
    latency_jitter: float = 0.5
    #: Probability that any message is silently dropped.
    loss_probability: float = 0.0
    #: Number of recent prices a source averages per resource (1 = latest).
    averaging_window: int = 3
    #: Interval at which the observer samples global utility.
    sample_interval: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.activation_period <= 0.0:
            raise ValueError("activation_period must be positive")
        if not 0.0 <= self.period_jitter < 1.0:
            raise ValueError("period_jitter must be in [0, 1)")
        if self.latency_mean < 0.0:
            raise ValueError("latency_mean must be non-negative")
        if not 0.0 <= self.latency_jitter <= 1.0:
            raise ValueError("latency_jitter must be in [0, 1]")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if self.averaging_window < 1:
            raise ValueError("averaging_window must be >= 1")
        if self.sample_interval <= 0.0:
            raise ValueError("sample_interval must be positive")


class AsynchronousRuntime:
    """Discrete-event asynchronous execution of the LRGP agents."""

    def __init__(
        self,
        problem: Problem,
        config: AsyncConfig | None = None,
        node_gamma: GammaSchedule | None = None,
        link_gamma: float = 1e-4,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        self._problem = problem
        self._config = config or AsyncConfig()
        self._rng = random.Random(self._config.seed)
        self._telemetry = telemetry
        prototype = node_gamma if node_gamma is not None else AdaptiveGamma()

        self._sources = [
            SourceAgent(
                problem,
                flow_id,
                averaging_window=self._config.averaging_window,
                telemetry=telemetry,
            )
            for flow_id in sorted(problem.flows)
        ]
        self._nodes = [
            NodeAgent(problem, node_id, gamma=prototype.clone(), telemetry=telemetry)
            for node_id in problem.consumer_nodes()
        ]
        self._links = [
            LinkAgent(problem, link_id, gamma=link_gamma, telemetry=telemetry)
            for link_id in problem.bottleneck_links()
        ]
        self._agents: dict[str, Agent] = {
            agent.address: agent
            for agent in [*self._sources, *self._nodes, *self._links]
        }

        self._queue: list[tuple[float, int, str, object]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self.samples: list[tuple[float, float]] = []
        self.messages_sent = 0
        self.messages_lost = 0

        # Stagger initial activations uniformly across one period so agents
        # do not start in lockstep.
        for agent in self._agents.values():
            offset = self._rng.uniform(0.0, self._config.activation_period)
            self._schedule(offset, "activate", agent.address)
        self._schedule(self._config.sample_interval, "sample", None)

    # -- event plumbing -----------------------------------------------------

    def _schedule(self, at: float, kind: str, payload: object) -> None:
        heapq.heappush(self._queue, (at, next(self._sequence), kind, payload))

    def _next_period(self) -> float:
        jitter = self._config.period_jitter
        return self._config.activation_period * (
            1.0 + self._rng.uniform(-jitter, jitter)
        )

    def _latency(self) -> float:
        jitter = self._config.latency_jitter
        return self._config.latency_mean * (1.0 + self._rng.uniform(-jitter, jitter))

    def _dispatch(self, messages: list[Message]) -> None:
        registry = self._telemetry.registry
        for message in messages:
            self.messages_sent += 1
            registry.counter("runtime.async.messages_sent").inc()
            if self._rng.random() < self._config.loss_probability:
                self.messages_lost += 1
                registry.counter("runtime.async.messages_lost").inc()
                continue
            self._schedule(self._now + self._latency(), "deliver", message)

    # -- execution ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def run_until(self, end_time: float) -> None:
        """Process events until the clock passes ``end_time``."""
        if end_time < self._now:
            raise ValueError(f"end_time {end_time} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= end_time:
            at, _, kind, payload = heapq.heappop(self._queue)
            self._now = at
            if kind == "activate":
                agent = self._agents[payload]  # type: ignore[index]
                self._dispatch(agent.act(self._now))
                self._schedule(self._now + self._next_period(), "activate", payload)
            elif kind == "deliver":
                message = payload  # type: ignore[assignment]
                assert isinstance(message, Message)
                self._agents[message.recipient].receive(message)
                telemetry = self._telemetry
                if telemetry.enabled:
                    latency = self._now - message.stamp
                    telemetry.emit(
                        MessageEvent(
                            sender=message.sender,
                            recipient=message.recipient,
                            payload=type(message).__name__,
                            t_ns=now_ns(),
                            latency=latency,
                        )
                    )
                    telemetry.registry.histogram(
                        "runtime.async.latency"
                    ).observe(latency)
            elif kind == "sample":
                utility = self.utility()
                self.samples.append((self._now, utility))
                telemetry = self._telemetry
                telemetry.registry.gauge("runtime.async.utility").set(utility)
                if telemetry.enabled:
                    telemetry.emit(
                        IterationEvent(
                            iteration=len(self.samples),
                            utility=utility,
                            t_ns=now_ns(),
                        )
                    )
                self._schedule(
                    self._now + self._config.sample_interval, "sample", None
                )
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")
        self._now = end_time

    def allocation(self) -> Allocation:
        """Global snapshot of deployed state (may be mutually stale)."""
        rates = {source.flow_id: source.rate for source in self._sources}
        populations = {}
        for node in self._nodes:
            populations.update(node.populations)
        return Allocation(rates=rates, populations=populations)

    def utility(self) -> float:
        return total_utility(self._problem, self.allocation())

    def utilities(self) -> list[float]:
        """The sampled utility trajectory (one value per sample tick)."""
        return [value for _, value in self.samples]

    def converged_utility(self, tail: int = 20) -> float:
        """Mean utility over the trailing ``tail`` samples."""
        values = self.utilities()[-tail:]
        if not values:
            raise RuntimeError("no samples recorded yet; call run_until first")
        return math.fsum(values) / len(values)
