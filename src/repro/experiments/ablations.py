"""Ablations of LRGP's design choices (not in the paper, motivated by it).

* **Node-price ablation** — section 3.3 argues the raw benefit/cost ratio is
  too unstable to use directly as the price and that the boundary coupling
  matters.  We compare: the paper's damped/adaptive tracking, raw tracking
  (gamma = 1, i.e. ``p = BC`` each iteration), and an "overload-only" price
  that ignores BC entirely (decays toward zero when under capacity).
* **Admission ablation** — section 3.2's greedy benefit/cost ordering vs.
  FIFO (class-id order), random order, and proportional fair-share fill.
* **Asynchrony ablation** — section 3.5: how latency, message loss and
  price-averaging windows affect the achieved utility.
"""

from __future__ import annotations

import math
import random
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.consumer_allocation import (
    NodeAllocation,
    allocate_consumers,
    benefit_cost_ratio,
)
from repro.core.convergence import iterations_until_convergence, oscillation_amplitude
from repro.core.lrgp import LRGP, LRGPConfig
from repro.experiments.reporting import TableResult, format_number
from repro.model.entities import ClassId, FlowId, NodeId
from repro.model.metrics import admission_fairness
from repro.model.problem import Problem
from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime
from repro.workloads.base import base_workload

DEFAULT_ITERATIONS = 250


# ---------------------------------------------------------------------------
# Alternative admission strategies (all satisfy the node constraint; they
# differ only in *which* consumers occupy the budget).
# ---------------------------------------------------------------------------


def _fill_in_order(
    problem: Problem,
    node_id: NodeId,
    rates: Mapping[FlowId, float],
    order: list[ClassId],
) -> NodeAllocation:
    """Shared fill loop: admit classes to saturation in the given order."""
    capacity = problem.nodes[node_id].capacity
    flow_cost = sum(
        problem.costs.flow_node(node_id, flow_id) * rates.get(flow_id, 0.0)
        for flow_id in problem.flows_at_node(node_id)
    )
    ratios = {
        class_id: benefit_cost_ratio(
            problem, node_id, class_id,
            rates.get(problem.flow_of_class(class_id), 0.0),
        )
        for class_id in problem.classes_at_node(node_id)
    }
    populations: dict[ClassId, int] = {}
    budget = capacity - flow_cost
    consumer_cost = 0.0
    for class_id in order:
        cls = problem.classes[class_id]
        unit_cost = problem.costs.consumer(node_id, class_id) * rates.get(
            cls.flow_id, 0.0
        )
        if unit_cost <= 0.0:
            populations[class_id] = cls.max_consumers
            continue
        if budget <= 0.0:
            populations[class_id] = 0
            continue
        admitted = min(cls.max_consumers, int(budget / unit_cost + 1e-9))
        populations[class_id] = admitted
        budget -= admitted * unit_cost
        consumer_cost += admitted * unit_cost
    unsatisfied = [
        ratios[class_id]
        for class_id in problem.classes_at_node(node_id)
        if populations[class_id] < problem.classes[class_id].max_consumers
        and math.isfinite(ratios[class_id])
    ]
    return NodeAllocation(
        node_id=node_id,
        populations=populations,
        used=flow_cost + consumer_cost,
        best_unsatisfied_ratio=max(unsatisfied, default=0.0),
        ratios=ratios,
    )


def fifo_admission(
    problem: Problem, node_id: NodeId, rates: Mapping[FlowId, float]
) -> NodeAllocation:
    """Admit classes in class-id order, ignoring benefit/cost."""
    return _fill_in_order(
        problem, node_id, rates, list(problem.classes_at_node(node_id))
    )


def make_random_admission(seed: int = 0):
    """Admit classes in a fresh random order every call (seeded)."""
    rng = random.Random(seed)

    def random_admission(
        problem: Problem, node_id: NodeId, rates: Mapping[FlowId, float]
    ) -> NodeAllocation:
        order = list(problem.classes_at_node(node_id))
        rng.shuffle(order)
        return _fill_in_order(problem, node_id, rates, order)

    return random_admission


def proportional_admission(
    problem: Problem, node_id: NodeId, rates: Mapping[FlowId, float]
) -> NodeAllocation:
    """Fair-share fill: every class is admitted the same fraction of its
    ``n^max`` (the largest feasible fraction), regardless of value."""
    capacity = problem.nodes[node_id].capacity
    flow_cost = sum(
        problem.costs.flow_node(node_id, flow_id) * rates.get(flow_id, 0.0)
        for flow_id in problem.flows_at_node(node_id)
    )
    class_ids = problem.classes_at_node(node_id)
    ratios = {
        class_id: benefit_cost_ratio(
            problem, node_id, class_id,
            rates.get(problem.flow_of_class(class_id), 0.0),
        )
        for class_id in class_ids
    }
    budget = capacity - flow_cost
    full_demand = sum(
        problem.costs.consumer(node_id, class_id)
        * problem.classes[class_id].max_consumers
        * rates.get(problem.classes[class_id].flow_id, 0.0)
        for class_id in class_ids
    )
    if budget <= 0.0 or full_demand <= 0.0:
        fraction = 1.0 if full_demand <= 0.0 and budget > 0.0 else 0.0
    else:
        fraction = min(1.0, budget / full_demand)
    populations = {
        class_id: int(fraction * problem.classes[class_id].max_consumers)
        for class_id in class_ids
    }
    consumer_cost = sum(
        problem.costs.consumer(node_id, class_id)
        * populations[class_id]
        * rates.get(problem.classes[class_id].flow_id, 0.0)
        for class_id in class_ids
    )
    unsatisfied = [
        ratios[class_id]
        for class_id in class_ids
        if populations[class_id] < problem.classes[class_id].max_consumers
        and math.isfinite(ratios[class_id])
    ]
    return NodeAllocation(
        node_id=node_id,
        populations=populations,
        used=flow_cost + consumer_cost,
        best_unsatisfied_ratio=max(unsatisfied, default=0.0),
        ratios=ratios,
    )


def overload_only_admission(
    problem: Problem, node_id: NodeId, rates: Mapping[FlowId, float]
) -> NodeAllocation:
    """The paper's greedy admission, but reporting ``BC(b,t) = 0`` so the
    node price never tracks consumer value — isolating how much the
    benefit/cost price coupling (key idea 4, section 3) contributes."""
    result = allocate_consumers(problem, node_id, rates)
    return NodeAllocation(
        node_id=result.node_id,
        populations=result.populations,
        used=result.used,
        best_unsatisfied_ratio=0.0,
        ratios=result.ratios,
    )


# ---------------------------------------------------------------------------
# Ablation experiments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AblationRow:
    label: str
    final_utility: float
    convergence_iteration: int | None
    tail_amplitude: float
    #: Jain's index over per-class admitted fractions — admission ablations
    #: surface the utility/fairness tradeoff explicitly.
    fairness: float


def _run_variant(
    label: str, problem: Problem, config: LRGPConfig, iterations: int
) -> AblationRow:
    optimizer = LRGP(problem, config)
    optimizer.run(iterations)
    return AblationRow(
        label=label,
        final_utility=optimizer.utilities[-1],
        convergence_iteration=iterations_until_convergence(optimizer.utilities),
        tail_amplitude=oscillation_amplitude(optimizer.utilities),
        fairness=admission_fairness(problem, optimizer.allocation()),
    )


def _ablation_table(table_id: str, title: str, rows: list[AblationRow]) -> TableResult:
    return TableResult(
        table_id=table_id,
        title=title,
        columns=(
            "variant", "final utility", "conv. iter", "tail amplitude",
            "fairness",
        ),
        rows=tuple(
            (
                row.label,
                format_number(row.final_utility),
                str(row.convergence_iteration)
                if row.convergence_iteration is not None
                else ">max",
                f"{row.tail_amplitude:.5f}",
                f"{row.fairness:.3f}",
            )
            for row in rows
        ),
    )


def ablation_node_price(
    iterations: int = DEFAULT_ITERATIONS, shape: str = "log"
) -> TableResult:
    """Ablation A: what the damped benefit/cost node price buys."""
    problem = base_workload(shape)
    rows = [
        _run_variant("damped BC (adaptive gamma)", problem, LRGPConfig.adaptive(), iterations),
        _run_variant("damped BC (gamma=0.1)", problem, LRGPConfig.fixed(0.1), iterations),
        _run_variant("raw BC (gamma=1)", problem, LRGPConfig.fixed(1.0), iterations),
        _run_variant(
            "overload-only price",
            problem,
            LRGPConfig(admission=overload_only_admission),
            iterations,
        ),
    ]
    return _ablation_table(
        "Ablation A",
        "Node price determination (section 3.3 design choices)",
        rows,
    )


def ablation_admission(
    iterations: int = DEFAULT_ITERATIONS, shape: str = "log", seed: int = 0
) -> TableResult:
    """Ablation B: greedy benefit/cost admission vs value-blind fills."""
    problem = base_workload(shape)
    rows = [
        _run_variant("greedy benefit/cost (paper)", problem, LRGPConfig.adaptive(), iterations),
        _run_variant(
            "FIFO (class-id order)",
            problem,
            LRGPConfig(admission=fifo_admission),
            iterations,
        ),
        _run_variant(
            "random order",
            problem,
            LRGPConfig(admission=make_random_admission(seed)),
            iterations,
        ),
        _run_variant(
            "proportional fair-share",
            problem,
            LRGPConfig(admission=proportional_admission),
            iterations,
        ),
    ]
    return _ablation_table(
        "Ablation B",
        "Consumer admission strategy (section 3.2 design choice)",
        rows,
    )


def ablation_asynchrony(
    duration: float = 250.0, shape: str = "log", seed: int = 0
) -> TableResult:
    """Ablation C: robustness of the asynchronous deployment.

    Compares the synchronous utility against async runs with increasing
    latency, loss and different price-averaging windows.  Utilities are
    trailing means over the last 20 samples.
    """
    problem = base_workload(shape)
    sync = LRGP(problem, LRGPConfig.adaptive())
    sync.run(int(duration))
    rows: list[tuple[str, ...]] = [
        (
            "synchronous",
            format_number(sync.utilities[-1]),
            str(iterations_until_convergence(sync.utilities) or ">max"),
        )
    ]
    variants = [
        ("async: low latency, window=3", AsyncConfig(latency_mean=0.1, seed=seed)),
        ("async: high latency, window=3", AsyncConfig(latency_mean=0.8, seed=seed)),
        (
            "async: high latency, window=1",
            AsyncConfig(latency_mean=0.8, averaging_window=1, seed=seed),
        ),
        (
            "async: 10% loss, window=3",
            AsyncConfig(latency_mean=0.25, loss_probability=0.1, seed=seed),
        ),
        (
            "async: 30% loss, window=3",
            AsyncConfig(latency_mean=0.25, loss_probability=0.3, seed=seed),
        ),
    ]
    for label, config in variants:
        runtime = AsynchronousRuntime(problem, config)
        runtime.run_until(duration)
        utilities = runtime.utilities()
        converged = iterations_until_convergence(utilities)
        rows.append(
            (
                label,
                format_number(runtime.converged_utility()),
                str(converged) if converged is not None else ">max",
            )
        )
    return TableResult(
        table_id="Ablation C",
        title="Synchronous vs asynchronous LRGP (section 3.5)",
        columns=("variant", "utility (tail mean)", "stable by"),
        rows=tuple(rows),
        notes="async time unit ~ one activation period ~ one sync iteration",
    )
