"""Plain-text rendering of experiment results.

Benchmarks and examples print the paper's tables and figure series as
aligned text so runs are directly comparable with the paper without a
plotting stack.  Figures are rendered both as a compact ASCII chart and as
``iteration, value`` rows suitable for external plotting.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Series:
    """One labelled trajectory of a figure."""

    label: str
    xs: tuple[float, ...]
    ys: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.label!r}: {len(self.xs)} xs vs {len(self.ys)} ys"
            )


@dataclass(frozen=True)
class FigureResult:
    """A reproduced figure: several series over a shared x-axis meaning."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: tuple[Series, ...]
    notes: str = ""


@dataclass(frozen=True)
class TableResult:
    """A reproduced table."""

    table_id: str
    title: str
    columns: tuple[str, ...]
    rows: tuple[tuple[str, ...], ...]
    notes: str = ""

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"table {self.table_id}: row {row} does not match "
                    f"{len(self.columns)} columns"
                )


def format_number(value: float, decimals: int = 0) -> str:
    """Thousands-separated fixed-point formatting."""
    return f"{value:,.{decimals}f}"


def render_table(table: TableResult) -> str:
    """Render a :class:`TableResult` as aligned text."""
    widths = [len(column) for column in table.columns]
    for row in table.rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"{table.table_id}: {table.title}"]
    header = "  ".join(
        column.ljust(widths[index]) for index, column in enumerate(table.columns)
    )
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in table.rows:
        lines.append(
            "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(row))
        )
    if table.notes:
        lines.append(f"note: {table.notes}")
    return "\n".join(lines)


def render_ascii_chart(
    figure: FigureResult, width: int = 72, height: int = 16
) -> str:
    """Render a figure's series as an ASCII chart (one glyph per series)."""
    glyphs = "*o+x#@%&"
    all_xs = [x for series in figure.series for x in series.xs]
    all_ys = [y for series in figure.series for y in series.ys]
    if not all_xs:
        return f"{figure.figure_id}: {figure.title} (no data)"
    x_low, x_high = min(all_xs), max(all_xs)
    y_low, y_high = min(all_ys), max(all_ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for series_index, series in enumerate(figure.series):
        glyph = glyphs[series_index % len(glyphs)]
        for x, y in zip(series.xs, series.ys):
            column = int((x - x_low) / x_span * (width - 1))
            row = height - 1 - int((y - y_low) / y_span * (height - 1))
            grid[row][column] = glyph

    lines = [f"{figure.figure_id}: {figure.title}"]
    lines.append(f"y: {figure.y_label}  [{y_low:,.0f} .. {y_high:,.0f}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: {figure.x_label}  [{x_low:,.0f} .. {x_high:,.0f}]")
    for series_index, series in enumerate(figure.series):
        lines.append(f"  {glyphs[series_index % len(glyphs)]} = {series.label}")
    if figure.notes:
        lines.append(f"note: {figure.notes}")
    return "\n".join(lines)


def render_series_rows(
    figure: FigureResult, every: int = 10, decimals: int = 0
) -> str:
    """Render figure data as aligned numeric rows (one column per series),
    sampling every ``every`` points."""
    table_columns = [figure.x_label] + [series.label for series in figure.series]
    xs = figure.series[0].xs if figure.series else ()
    rows = []
    for index in range(0, len(xs), max(1, every)):
        row = [format_number(xs[index])]
        for series in figure.series:
            row.append(
                format_number(series.ys[index], decimals)
                if index < len(series.ys)
                else ""
            )
        rows.append(tuple(row))
    return render_table(
        TableResult(
            table_id=figure.figure_id,
            title=figure.title,
            columns=tuple(table_columns),
            rows=tuple(rows),
        )
    )
