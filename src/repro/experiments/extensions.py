"""Extension experiments — beyond the paper's evaluation.

* **E1 — link pricing** (paper §4.1 footnote 3 defers this to Low &
  Lapsley): a shared-uplink workload sweeping the bottleneck capacity; the
  gradient-projection price should pin usage to capacity and match the
  analytic equilibrium ``p* = (sum_i N_i) / (c_l + |F|)``.
* **E2 — multirate delivery** (paper §5 future work): per-node flow
  thinning vs the single-rate model, on the base workload and on a
  heterogeneous-capacity variant where thinning should pay clearly.
* **E3 — two-stage path pruning** (paper §2.4, stage 2): on a workload
  with a starved node, pruning the branches nobody was admitted on
  releases the flow-node pressure and stage 2 recovers utility.
* **E4 — why the node constraint exists**: run the queueing simulator at
  controlled utilizations; end-to-end latency explodes as eq. 5's LHS
  approaches the capacity — the failure mode admission control prevents.
* **E8 — recovery under faults** (section 2.1's "responding to changes in
  system capacity", taken to agent granularity): crash a node agent in the
  asynchronous deployment and measure recovery, checkpoint vs cold
  restart, plus retention under randomized fault plans of rising rate.
"""

from __future__ import annotations

from repro.core.lrgp import LRGP, LRGPConfig
from repro.core.multirate import MultirateLRGP
from repro.core.two_stage import two_stage_optimize
from repro.events.simulator import EventInfrastructure
from repro.experiments.reporting import TableResult, format_number
from repro.model.allocation import Allocation, link_usage, node_usage
from repro.workloads.base import base_workload
from repro.workloads.bottleneck import link_bottleneck_workload

#: Step size for link prices in the bottleneck regime (see
#: tests/workloads/test_bottleneck.py for the stability analysis).
LINK_GAMMA = 0.5


def extension_link_pricing(
    capacities: tuple[float, ...] = (300.0, 100.0, 30.0),
    iterations: int = 600,
) -> TableResult:
    """E1: sweep the uplink capacity; report rates, usage, measured and
    analytic equilibrium prices."""
    rows = []
    for capacity in capacities:
        problem = link_bottleneck_workload(link_capacity=capacity)
        optimizer = LRGP(problem, LRGPConfig(link_gamma=LINK_GAMMA))
        optimizer.run(iterations)
        allocation = optimizer.allocation()
        usage = link_usage(problem, allocation, "uplink")
        total_weight = sum(
            problem.classes[class_id].max_consumers
            * problem.classes[class_id].utility.scale
            for class_id in problem.classes
        )
        analytic_price = total_weight / (capacity + len(problem.flows))
        rows.append(
            (
                format_number(capacity),
                " / ".join(
                    f"{allocation.rates[f]:.1f}" for f in sorted(allocation.rates)
                ),
                f"{usage:.1f}",
                f"{optimizer.link_prices()['uplink']:.1f}",
                f"{analytic_price:.1f}",
                format_number(optimizer.utilities[-1]),
            )
        )
    return TableResult(
        table_id="Extension E1",
        title="Link pricing on a shared uplink (deferred in the paper to "
        "Low & Lapsley)",
        columns=("uplink cap", "rates f0/f1/f2", "usage", "price",
                 "analytic p*", "utility"),
        rows=tuple(rows),
        notes="log utilities: r_i = N_i/p - 1, so p* = sum(N)/(c + flows)",
    )


def extension_multirate(iterations: int = 250) -> TableResult:
    """E2: single-rate LRGP vs multirate LRGP."""
    rows = []
    scenarios = [
        ("base workload", base_workload()),
        (
            "base, S1 capacity / 10",
            base_workload().with_node_capacity("S1", 9.0e4),
        ),
        (
            "base, S1 cap/10 & S2 cap/3",
            base_workload()
            .with_node_capacity("S1", 9.0e4)
            .with_node_capacity("S2", 3.0e5),
        ),
    ]
    for label, problem in scenarios:
        single = LRGP(problem, LRGPConfig.adaptive())
        single.run(iterations)
        multi = MultirateLRGP(problem)
        multi.run(iterations)
        gain = (multi.utilities[-1] - single.utilities[-1]) / single.utilities[-1]
        rows.append(
            (
                label,
                format_number(single.utilities[-1]),
                format_number(multi.utilities[-1]),
                f"{gain * 100.0:+.2f}%",
            )
        )
    return TableResult(
        table_id="Extension E2",
        title="Multirate delivery (the paper's deferred future work, §5)",
        columns=("workload", "single-rate utility", "multirate utility", "gain"),
        rows=tuple(rows),
        notes="multirate lets capacity-starved nodes thin flows locally "
        "instead of slowing every receiver",
    )


def extension_two_stage(iterations: int = 250) -> TableResult:
    """E3: the two-stage approximation's pruning pass."""
    rows = []
    scenarios = [
        ("base workload", base_workload()),
        ("base, S2 capacity -> 100", base_workload().with_node_capacity("S2", 100.0)),
        ("base, S2 cap 100 & S1 cap/10",
         base_workload()
         .with_node_capacity("S2", 100.0)
         .with_node_capacity("S1", 9.0e4)),
    ]
    for label, problem in scenarios:
        result = two_stage_optimize(problem, iterations=iterations)
        rows.append(
            (
                label,
                format_number(result.stage1_utility),
                format_number(result.stage2_utility),
                str(len(result.prune_set.flow_nodes)),
                f"{result.improvement * 100.0:+.2f}%",
            )
        )
    return TableResult(
        table_id="Extension E3",
        title="Two-stage approximation with path pruning (§2.4)",
        columns=("workload", "stage 1 utility", "stage 2 utility",
                 "(node,flow) pruned", "gain"),
        rows=tuple(rows),
        notes="pruning zeroes F/L coefficients on branches where stage 1 "
        "admitted nobody",
    )


def extension_queueing_latency(
    utilizations: tuple[float, ...] = (0.5, 0.8, 0.95, 1.05, 1.2),
    capacity: float = 2000.0,
    duration: float = 60.0,
    seed: int = 3,
) -> TableResult:
    """E4: mean delivery latency vs node utilization on the queueing
    simulator.

    Uses a single-node instance where the utilization (eq. 5 LHS over
    capacity) can be dialed exactly through one flow's rate: with one
    admitted class of 5 consumers at consumer cost 10 and flow costs 1,
    ``usage = 51 * r_a + 1``.  Poisson arrivals, FIFO service at
    ``capacity`` resource units per second.
    """
    from repro.workloads.micro import micro_workload

    rows = []
    problem = micro_workload(capacity=capacity)
    for utilization in utilizations:
        rate_a = (utilization * capacity - 1.0) / 51.0
        allocation = Allocation(
            rates={"fa": rate_a, "fb": 1.0},
            populations={"ca": 5, "cb": 0, "cc": 0},
        )
        infra = EventInfrastructure(problem, queueing=True, poisson=True, seed=seed)
        infra.enact(allocation)
        infra.run_for(duration)
        rho = node_usage(problem, allocation, "S") / capacity
        rows.append(
            (
                f"{rho:.2f}",
                f"{rate_a:.1f}",
                f"{infra.mean_delivery_latency() * 1000.0:.1f}",
                str(infra.total_deliveries()),
            )
        )
    return TableResult(
        table_id="Extension E4",
        title="Why eq. 5 exists: delivery latency vs node utilization "
        "(queueing simulator)",
        columns=("utilization", "rate f_a", "mean latency (ms)", "deliveries"),
        rows=tuple(rows),
        notes="FIFO node server; latency diverges as utilization crosses 1 "
        "- the overload admission control prevents",
    )


def extension_capacity_churn(total_iterations: int = 300):
    """E5: the autonomic story — LRGP tracking a sequence of system
    changes (capacity loss, flow departure, capacity restoration).

    Returns a :class:`FigureResult` whose single series is the utility
    trajectory, with the scripted events recorded in the notes.
    """
    from repro.experiments.reporting import FigureResult, Series
    from repro.workloads.dynamics import churn_scenario

    run = churn_scenario(total_iterations=total_iterations).run()
    series = Series(
        label="adaptive gamma",
        xs=tuple(float(i) for i in range(1, len(run.utilities) + 1)),
        ys=tuple(run.utilities),
    )
    notes = "; ".join(f"iter {it}: {label}" for it, label in run.events)
    return FigureResult(
        figure_id="Extension E5",
        title="Utility under capacity and membership churn",
        x_label="iteration",
        y_label="total utility",
        series=(series,),
        notes=notes,
    )


def extension_coordinate(iterations: int = 250) -> TableResult:
    """E6: LRGP vs centralized block-coordinate ascent.

    Three comparisons per workload: alternation from a cold start, the
    best of 8 random starts, and alternation *seeded with LRGP's own
    solution* (which certifies LRGP's output as a partial optimum when no
    improvement is found).
    """
    from repro.baselines.coordinate import (
        alternating_optimization,
        multistart_alternating,
    )
    from repro.workloads.bottleneck import link_bottleneck_workload

    rows = []
    scenarios = [
        ("base workload", base_workload(), LRGPConfig.adaptive(), iterations),
        (
            "link bottleneck (cap 100)",
            link_bottleneck_workload(link_capacity=100.0),
            LRGPConfig(link_gamma=0.5),
            600,
        ),
    ]
    for label, problem, config, lrgp_iterations in scenarios:
        optimizer = LRGP(problem, config)
        optimizer.run(lrgp_iterations)
        lrgp_utility = optimizer.utilities[-1]
        cold = alternating_optimization(problem)
        multi = multistart_alternating(problem, starts=8, seed=0)
        seeded = alternating_optimization(problem, initial=optimizer.allocation())
        rows.append(
            (
                label,
                format_number(lrgp_utility),
                format_number(cold.best_utility),
                format_number(multi.best_utility),
                format_number(seeded.best_utility),
            )
        )
    return TableResult(
        table_id="Extension E6",
        title="LRGP vs centralized block-coordinate ascent (the §3.5 "
        "centralization discussion, made concrete)",
        columns=(
            "workload", "LRGP", "coordinate (cold)", "coordinate (8 starts)",
            "coordinate from LRGP",
        ),
        rows=tuple(rows),
        notes="'coordinate from LRGP' == LRGP means LRGP's solution is a "
        "fixpoint of exact alternation (partial-optimality certificate)",
    )


def extension_communication(rounds: int = 30) -> TableResult:
    """E7: protocol message cost of distributed LRGP as the system grows.

    Counts the messages exchanged per synchronous round (rate updates from
    sources + price/population feedback from nodes) across the Table 2
    workloads.  Per round the count is Θ(Σ_i |B_i|): each flow source
    messages every consumer node it reaches, and each node answers every
    flow reaching it — linear in the topology's flow-node incidences, the
    scalability property that makes the distributed deployment viable.
    """
    from repro.core.gamma import AdaptiveGamma
    from repro.runtime.synchronous import SynchronousRuntime
    from repro.workloads.scaling import TABLE2_WORKLOADS

    rows = []
    for label, build in TABLE2_WORKLOADS.items():
        problem = build()
        runtime = SynchronousRuntime(problem, node_gamma=AdaptiveGamma())
        runtime.run(rounds)
        per_round = runtime.messages_sent / rounds
        incidences = sum(
            sum(
                1
                for node_id in problem.route(flow_id).nodes
                if node_id in problem.consumer_nodes()
            )
            for flow_id in problem.flows
        )
        rows.append(
            (
                label,
                str(len(problem.flows)),
                str(len(problem.consumer_nodes())),
                f"{per_round:.0f}",
                f"{per_round / incidences:.2f}",
            )
        )
    return TableResult(
        table_id="Extension E7",
        title="Protocol messages per LRGP iteration (synchronous runtime)",
        columns=("workload", "flows", "c-nodes", "msgs/round",
                 "msgs per flow-node incidence"),
        rows=tuple(rows),
        notes="3 messages per incidence: one RateUpdate down, one "
        "NodePriceUpdate + one PopulationUpdate back",
    )


def _chaos_runtime(problem, plan, *, seed: float, horizon: float):
    """One asynchronous run to the horizon, retries on, faults optional."""
    from repro.events.reliability import RetryPolicy
    from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime

    runtime = AsynchronousRuntime(
        problem,
        AsyncConfig(seed=seed),
        fault_plan=plan,
        retry=RetryPolicy(),
    )
    runtime.run_until(horizon)
    return runtime


def samples_to_plateau(
    samples,
    *,
    restart_at: float,
    target: float,
    tolerance: float = 0.01,
    window: int = 5,
) -> int | None:
    """Post-restart samples burned before the utility settles.

    Returns the number of samples at ``t >= restart_at`` that pass before
    ``window`` consecutive samples all sit within ``tolerance`` of
    ``target`` (the pre-fault utility), or ``None`` if the run never
    settles.  0 means the very first post-restart sample already sits on
    the plateau — the checkpoint-restore signature.  A cold restart
    resets the node price to zero, transiently over-admits, and
    oscillates for many samples before settling.
    """
    post = [utility for t, utility in samples if t >= restart_at]
    for start in range(len(post) - window + 1):
        if all(
            abs(utility - target) <= tolerance * target
            for utility in post[start : start + window]
        ):
            return start
    return None


def fault_recovery_detail(
    *,
    cold: bool,
    crash_at: float = 250.0,
    downtime: float = 10.0,
    horizon: float = 500.0,
    seed: int = 29,
) -> dict[str, float | int | None]:
    """One single-crash measurement: crash ``node:S1`` after convergence,
    restart it, and report how the run recovered.

    Both modes checkpoint every 5 time units; ``cold=True`` merely skips
    the restore at restart, isolating the value of the checkpoint itself.
    """
    from repro.runtime.faults import CrashFault, FaultPlan

    problem = base_workload()
    plan = FaultPlan(
        crashes=(
            CrashFault(
                at=crash_at, address="node:S1",
                restart_after=downtime, cold=cold,
            ),
        ),
        checkpoint_interval=5.0,
    )
    runtime = _chaos_runtime(problem, plan, seed=seed, horizon=horizon)
    # The sample *at* the crash instant already reflects the crash (fault
    # events scheduled earlier sort first at equal timestamps), so the
    # pre-fault utility is the last sample strictly before it.
    pre_utility = [u for t, u in runtime.samples if t < crash_at][-1]
    (record,) = runtime.recoveries
    plateau = samples_to_plateau(
        runtime.samples,
        restart_at=crash_at + downtime,
        target=pre_utility,
    )
    return {
        "mode": "cold" if cold else "checkpoint",
        "pre_utility": pre_utility,
        "final_utility": runtime.converged_utility(),
        "retention": runtime.converged_utility() / pre_utility,
        "recovery_time": record.recovery_time,
        "samples_to_plateau": plateau,
    }


def extension_fault_recovery(
    fault_rates: tuple[float, ...] = (0.005, 0.02, 0.05),
    horizon: float = 500.0,
    seed: int = 29,
) -> TableResult:
    """E8: fault tolerance of the asynchronous deployment.

    Two single-crash rows contrast checkpoint restore with a cold restart
    of the same node agent; the sweep rows drive randomized
    :class:`~repro.runtime.faults.FaultPlan`\\ s of rising crash rate and
    report utility retention against the fault-free run.
    """
    from repro.runtime.faults import FaultPlan

    rows = []
    for cold in (False, True):
        detail = fault_recovery_detail(cold=cold, horizon=horizon, seed=seed)
        plateau = detail["samples_to_plateau"]
        rows.append(
            (
                f"1 crash, {detail['mode']} restart",
                "1",
                f"{detail['recovery_time']:.1f}",
                "never" if plateau is None else str(plateau),
                f"{100.0 * detail['retention']:.2f}%",
            )
        )
    problem = base_workload()
    baseline = _chaos_runtime(problem, None, seed=seed, horizon=horizon)
    baseline_utility = baseline.converged_utility()
    for rate in fault_rates:
        plan = FaultPlan.random(
            problem,
            seed=seed,
            horizon=horizon,
            crash_rate=rate,
            mean_downtime=5.0,
            warmup=150.0,
        )
        runtime = _chaos_runtime(problem, plan, seed=seed, horizon=horizon)
        recoveries = runtime.recoveries
        mean_recovery = (
            sum(r.recovery_time for r in recoveries) / len(recoveries)
            if recoveries
            else 0.0
        )
        rows.append(
            (
                f"random plan, rate {rate:g}",
                str(len(plan.crashes)),
                f"{mean_recovery:.1f}",
                "-",
                f"{100.0 * runtime.converged_utility() / baseline_utility:.2f}%",
            )
        )
    return TableResult(
        table_id="Extension E8",
        title="Recovery under agent crashes (asynchronous runtime, "
        "checkpoint interval 5)",
        columns=(
            "scenario", "crashes", "mean recovery time",
            "samples to plateau", "utility retention",
        ),
        rows=tuple(rows),
        notes="plateau = post-restart samples before 5 consecutive samples "
        "sit within 1% of the pre-fault utility; retention vs the "
        "same-seed fault-free run",
    )
