"""Reproduction of the paper's tables.

* Table 1 — the base workload specification (an input; rendered for
  inspection).
* Table 2 — quality of results for LRGP and simulated annealing as the
  system grows (section 4.3/4.4).
* Table 3 — convergence and quality as the class utility shape varies
  (section 4.5).

The SA step budget defaults to ``10**6`` — the *smallest* budget the paper
swept; the paper's headline SA numbers used ``10**8`` steps (23-357 minutes
per run).  Pass ``sa_steps=10**8`` to spend the paper's compute.  LRGP's
numbers do not depend on that budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.annealing import (
    PAPER_START_TEMPERATURES,
    AnnealingResult,
    best_of_temperatures,
)
from repro.core.convergence import iterations_until_convergence
from repro.core.lrgp import LRGP, LRGPConfig
from repro.experiments.reporting import TableResult, format_number
from repro.model.problem import Problem
from repro.workloads.base import TABLE1_CLASS_SPECS, base_workload
from repro.workloads.scaling import TABLE2_WORKLOADS

DEFAULT_SA_STEPS = 10**6
DEFAULT_LRGP_ITERATIONS = 250

#: Utility shapes of Table 3, in paper order: label -> workload shape key.
TABLE3_SHAPES = {
    "rank * log(1+r)": "log",
    "rank * r^0.25": "pow25",
    "rank * r^0.5": "pow50",
    "rank * r^0.75": "pow75",
}


def table1_workload() -> TableResult:
    """Render the Table 1 base-workload specification."""
    rows = []
    class_index = 0
    for flow_index, attach_nodes, max_consumers, rank in TABLE1_CLASS_SPECS:
        pair = f"{class_index},{class_index + 1}"
        rows.append(
            (
                pair,
                str(flow_index),
                ",".join(attach_nodes),
                str(max_consumers),
                format_number(rank),
            )
        )
        class_index += 2
    return TableResult(
        table_id="Table 1",
        title="Base workload",
        columns=("class", "flow", "nodes", "n^max", "rank"),
        rows=tuple(rows),
        notes="F=3, G=19, c_b=9e5, r in [10, 1000] for every flow",
    )


@dataclass(frozen=True)
class ComparisonRow:
    """One LRGP-vs-SA comparison (a row of Table 2 or Table 3)."""

    label: str
    sa: AnnealingResult
    lrgp_iterations: int | None
    lrgp_utility: float

    @property
    def utility_increase(self) -> float:
        """LRGP's relative utility gain over SA (the paper's last column)."""
        if self.sa.best_utility <= 0.0:
            return float("inf")
        return (self.lrgp_utility - self.sa.best_utility) / self.sa.best_utility


def compare_lrgp_and_annealing(
    label: str,
    problem: Problem,
    sa_steps: int = DEFAULT_SA_STEPS,
    lrgp_iterations: int = DEFAULT_LRGP_ITERATIONS,
    seed: int = 0,
    engine: str = "reference",
) -> ComparisonRow:
    """Run both optimizers on one workload, the paper's protocol:
    SA takes the best over the four start temperatures; LRGP reports
    iterations-until-convergence (0.1% amplitude) and final utility.
    ``engine`` selects the LRGP execution engine; both produce the same
    trajectory (see ``docs/engines.md``), so it only affects wall time."""
    sa_result = best_of_temperatures(
        problem,
        start_temperatures=PAPER_START_TEMPERATURES,
        max_steps=sa_steps,
        seed=seed,
    )
    optimizer = LRGP(problem, LRGPConfig.adaptive(), engine=engine)
    optimizer.run(lrgp_iterations)
    return ComparisonRow(
        label=label,
        sa=sa_result,
        lrgp_iterations=iterations_until_convergence(optimizer.utilities),
        lrgp_utility=optimizer.utilities[-1],
    )


def _comparison_table(
    table_id: str,
    title: str,
    first_column: str,
    rows: list[ComparisonRow],
    sa_steps: int,
) -> TableResult:
    rendered = tuple(
        (
            row.label,
            format_number(row.sa.start_temperature),
            f"{row.sa.steps:.0e}",
            f"{row.sa.runtime_seconds / 60.0:.1f}",
            format_number(row.sa.best_utility),
            str(row.lrgp_iterations) if row.lrgp_iterations is not None else ">max",
            format_number(row.lrgp_utility),
            f"{row.utility_increase * 100.0:.2f}%",
        )
        for row in rows
    )
    return TableResult(
        table_id=table_id,
        title=title,
        columns=(
            first_column,
            "SA temp",
            "SA steps",
            "SA min",
            "SA utility",
            "LRGP iters",
            "LRGP utility",
            "increase",
        ),
        rows=rendered,
        notes=(
            f"SA budget {sa_steps:.0e} steps/run (paper: 1e8); "
            "LRGP convergence = 0.1% utility amplitude"
        ),
    )


def table2_scalability(
    sa_steps: int = DEFAULT_SA_STEPS,
    lrgp_iterations: int = DEFAULT_LRGP_ITERATIONS,
    seed: int = 0,
    engine: str = "vectorized",
) -> TableResult:
    """Table 2: LRGP vs SA across the six scaled workloads.

    The scaled workloads are exactly where the vectorized engine pays
    (3-6x per iteration from 12 flows up), so it is the default here.
    """
    rows = [
        compare_lrgp_and_annealing(
            label, build(), sa_steps=sa_steps, lrgp_iterations=lrgp_iterations,
            seed=seed, engine=engine,
        )
        for label, build in TABLE2_WORKLOADS.items()
    ]
    return _comparison_table(
        "Table 2",
        "Quality of results for LRGP and Simulated Annealing as the system grows",
        "Workload",
        rows,
        sa_steps,
    )


def table3_utility_shapes(
    sa_steps: int = DEFAULT_SA_STEPS,
    lrgp_iterations: int = DEFAULT_LRGP_ITERATIONS,
    seed: int = 0,
    engine: str = "reference",
) -> TableResult:
    """Table 3: LRGP vs SA on the base workload across utility shapes."""
    rows = [
        compare_lrgp_and_annealing(
            label,
            base_workload(shape),
            sa_steps=sa_steps,
            lrgp_iterations=lrgp_iterations,
            seed=seed,
            engine=engine,
        )
        for label, shape in TABLE3_SHAPES.items()
    ]
    return _comparison_table(
        "Table 3",
        "Convergence and quality of results as the utility function varies",
        "Utility function",
        rows,
        sa_steps,
    )
