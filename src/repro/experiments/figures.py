"""Reproduction of the paper's figures (section 4.2 and 4.5).

Each function runs the relevant LRGP configurations and returns a
:class:`repro.experiments.reporting.FigureResult` whose series correspond
one-to-one with the curves in the paper:

* Figure 1 — the effect of damping: fixed gamma in {1, 0.1, 0.01}.
* Figure 2 — adaptive gamma versus fixed gamma.
* Figure 3 — recovery when flow 5 (serving the highest-ranked class) leaves
  at iteration 150; shown for iterations 100-200.
* Figure 4 — the utility trajectory under the steep ``rank * r^0.75``
  class utility.
"""

from __future__ import annotations

from repro.core.lrgp import LRGP, LRGPConfig
from repro.experiments.reporting import FigureResult, Series
from repro.model.problem import Problem
from repro.workloads.base import base_workload

#: The fixed step sizes of figure 1.
FIGURE1_GAMMAS = (1.0, 0.1, 0.01)
DEFAULT_ITERATIONS = 250


def _utility_series(label: str, utilities: list[float], start: int = 1) -> Series:
    xs = tuple(float(index) for index in range(start, start + len(utilities)))
    return Series(label=label, xs=xs, ys=tuple(utilities))


def run_lrgp_trajectory(
    problem: Problem, config: LRGPConfig, iterations: int
) -> list[float]:
    """Run LRGP for ``iterations`` and return the utility trajectory."""
    optimizer = LRGP(problem, config)
    optimizer.run(iterations)
    return optimizer.utilities


def figure1_damping(
    iterations: int = DEFAULT_ITERATIONS,
    gammas: tuple[float, ...] = FIGURE1_GAMMAS,
    shape: str = "log",
) -> FigureResult:
    """Figure 1: utility vs. iteration for fixed gamma values.

    Expected shape: gamma=1 oscillates with large amplitude; gamma=0.1
    stabilizes in ~10 iterations; gamma=0.01 takes ~100 iterations.
    """
    problem = base_workload(shape)
    series = tuple(
        _utility_series(
            f"gamma={gamma:g}",
            run_lrgp_trajectory(problem, LRGPConfig.fixed(gamma), iterations),
        )
        for gamma in gammas
    )
    return FigureResult(
        figure_id="Figure 1",
        title="The effect of damping",
        x_label="iteration",
        y_label="total utility",
        series=series,
    )


def figure2_adaptive_gamma(
    iterations: int = DEFAULT_ITERATIONS,
    fixed_gammas: tuple[float, ...] = (0.1, 0.01),
    shape: str = "log",
) -> FigureResult:
    """Figure 2: adaptive gamma converges faster than fixed gamma and keeps
    fluctuations small."""
    problem = base_workload(shape)
    series = [
        _utility_series(
            "adaptive gamma",
            run_lrgp_trajectory(problem, LRGPConfig.adaptive(), iterations),
        )
    ]
    series.extend(
        _utility_series(
            f"gamma={gamma:g}",
            run_lrgp_trajectory(problem, LRGPConfig.fixed(gamma), iterations),
        )
        for gamma in fixed_gammas
    )
    return FigureResult(
        figure_id="Figure 2",
        title="The effect of adaptive gamma",
        x_label="iteration",
        y_label="total utility",
        series=tuple(series),
    )


def figure3_recovery(
    remove_at: int = 150,
    window: tuple[int, int] = (100, 200),
    removed_flow: str = "f5",
    fixed_gamma: float = 0.01,
    shape: str = "log",
) -> FigureResult:
    """Figure 3: removing flow 5 (whose class has the highest rank) at
    iteration ``remove_at``; adaptive gamma recovers faster than fixed.

    The returned series cover iterations ``window[0]..window[1]``, matching
    the paper's plot range.
    """
    start, end = window
    if not 0 < start <= remove_at <= end:
        raise ValueError(f"need 0 < start <= remove_at <= end, got {window}, {remove_at}")

    def trajectory(config: LRGPConfig) -> list[float]:
        optimizer = LRGP(base_workload(shape), config)
        optimizer.run(remove_at)
        optimizer.remove_flow(removed_flow)
        optimizer.run(end - remove_at)
        return optimizer.utilities[start - 1 : end]

    series = (
        _utility_series("adaptive gamma", trajectory(LRGPConfig.adaptive()), start=start),
        _utility_series(
            f"gamma={fixed_gamma:g}",
            trajectory(LRGPConfig.fixed(fixed_gamma)),
            start=start,
        ),
    )
    return FigureResult(
        figure_id="Figure 3",
        title="The effect of adaptive gamma on recovery from system changes",
        x_label="iteration",
        y_label="total utility",
        series=series,
        notes=f"flow {removed_flow} removed at iteration {remove_at}",
    )


def figure4_power_utility(
    iterations: int = DEFAULT_ITERATIONS,
    exponent_shape: str = "pow75",
) -> FigureResult:
    """Figure 4: global utility when the class utility is
    ``rank * r^0.75`` — the steep shape that converges slowest (table 3)."""
    problem = base_workload(exponent_shape)
    series = (
        _utility_series(
            "adaptive gamma",
            run_lrgp_trajectory(problem, LRGPConfig.adaptive(), iterations),
        ),
    )
    return FigureResult(
        figure_id="Figure 4",
        title="Global utility with class utility rank * r^0.75",
        x_label="iteration",
        y_label="total utility",
        series=series,
    )
