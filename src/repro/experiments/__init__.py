"""Experiment harness: the paper's figures and tables, plus ablations.

Every function returns a structured :class:`FigureResult` /
:class:`TableResult`; render with :func:`render_table`,
:func:`render_ascii_chart` or :func:`render_series_rows`.  The benchmark
suite under ``benchmarks/`` wraps these one-to-one.
"""

from repro.experiments.ablations import (
    ablation_admission,
    ablation_asynchrony,
    ablation_node_price,
    fifo_admission,
    make_random_admission,
    overload_only_admission,
    proportional_admission,
)
from repro.experiments.extensions import (
    extension_capacity_churn,
    extension_communication,
    extension_coordinate,
    extension_link_pricing,
    extension_multirate,
    extension_queueing_latency,
    extension_two_stage,
)
from repro.experiments.sweeps import SweepResult, gamma_sensitivity, sweep
from repro.experiments.figures import (
    figure1_damping,
    figure2_adaptive_gamma,
    figure3_recovery,
    figure4_power_utility,
    run_lrgp_trajectory,
)
from repro.experiments.reporting import (
    FigureResult,
    Series,
    TableResult,
    format_number,
    render_ascii_chart,
    render_series_rows,
    render_table,
)
from repro.experiments.tables import (
    ComparisonRow,
    compare_lrgp_and_annealing,
    table1_workload,
    table2_scalability,
    table3_utility_shapes,
)

__all__ = [
    "ComparisonRow",
    "FigureResult",
    "Series",
    "TableResult",
    "ablation_admission",
    "ablation_asynchrony",
    "ablation_node_price",
    "SweepResult",
    "compare_lrgp_and_annealing",
    "extension_capacity_churn",
    "extension_communication",
    "extension_coordinate",
    "extension_link_pricing",
    "extension_multirate",
    "extension_queueing_latency",
    "extension_two_stage",
    "gamma_sensitivity",
    "sweep",
    "fifo_admission",
    "figure1_damping",
    "figure2_adaptive_gamma",
    "figure3_recovery",
    "figure4_power_utility",
    "format_number",
    "make_random_admission",
    "overload_only_admission",
    "proportional_admission",
    "render_ascii_chart",
    "render_series_rows",
    "render_table",
    "run_lrgp_trajectory",
    "table1_workload",
    "table2_scalability",
    "table3_utility_shapes",
]
