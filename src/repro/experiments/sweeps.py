"""Generic parameter-sweep harness and the gamma-sensitivity study.

Experiments beyond the paper's fixed grid keep recurring in the same shape:
vary one knob, run the optimizer, collect scalar outcomes.  The harness
captures that shape once; :func:`gamma_sensitivity` uses it to map the
stability/speed landscape the paper's figure 1 samples at three points.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.convergence import (
    iterations_until_convergence,
    oscillation_amplitude,
)
from repro.core.lrgp import LRGP, LRGPConfig
from repro.experiments.reporting import TableResult, format_number
from repro.model.problem import Problem
from repro.workloads.base import base_workload


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: the knob value and the measured outcomes."""

    value: Any
    outcomes: dict[str, float]


@dataclass(frozen=True)
class SweepResult:
    """All points of one sweep, renderable as a table."""

    name: str
    knob: str
    points: tuple[SweepPoint, ...]

    def table(self, decimals: int = 2) -> TableResult:
        if not self.points:
            raise ValueError("empty sweep")
        outcome_names = list(self.points[0].outcomes)
        rows = tuple(
            (
                str(point.value),
                *(
                    format_number(point.outcomes[name], decimals)
                    for name in outcome_names
                ),
            )
            for point in self.points
        )
        return TableResult(
            table_id=self.name,
            title=f"sweep over {self.knob}",
            columns=(self.knob, *outcome_names),
            rows=rows,
        )


def sweep(
    name: str,
    knob: str,
    values: Sequence[Any],
    run: Callable[[Any], dict[str, float]],
) -> SweepResult:
    """Run ``run`` once per value and collect the outcome dicts.

    Every outcome dict must expose the same keys (checked) so the result
    renders as a rectangular table.
    """
    points: list[SweepPoint] = []
    keys: list[str] | None = None
    for value in values:
        outcomes = run(value)
        if keys is None:
            keys = list(outcomes)
        elif list(outcomes) != keys:
            raise ValueError(
                f"sweep point {value!r} produced keys {list(outcomes)}, "
                f"expected {keys}"
            )
        points.append(SweepPoint(value=value, outcomes=dict(outcomes)))
    return SweepResult(name=name, knob=knob, points=tuple(points))


DEFAULT_GAMMA_GRID = (1.0, 0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.001)


def gamma_sensitivity(
    gammas: Sequence[float] = DEFAULT_GAMMA_GRID,
    iterations: int = 400,
    problem: Problem | None = None,
) -> SweepResult:
    """Convergence speed and residual oscillation across fixed gamma values.

    Fills in the landscape between figure 1's three samples: convergence
    iterations fall as gamma grows until oscillation takes over, motivating
    both the adaptive heuristic and its [0.001, 0.1] clamp.
    """
    target = problem if problem is not None else base_workload()

    def run(gamma: float) -> dict[str, float]:
        optimizer = LRGP(target, LRGPConfig.fixed(gamma))
        optimizer.run(iterations)
        converged = iterations_until_convergence(optimizer.utilities)
        return {
            "iterations to converge": float(converged) if converged else float("nan"),
            "final utility": optimizer.utilities[-1],
            "tail amplitude": oscillation_amplitude(optimizer.utilities, window=50),
        }

    return sweep("Gamma sensitivity", "gamma", list(gammas), run)
