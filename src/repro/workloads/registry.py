"""Workload registry: stable names onto parameterized problem factories.

Before PR 8 every consumer of a workload addressed it its own way — the
CLI kept a hand-rolled name->lambda table, experiments called the
builders directly, and there was no single list of "the workloads this
repository ships".  The registry is that single place:

>>> from repro.workloads.registry import get_workload, list_workloads
>>> problem = get_workload("base", shape="pow50")
>>> problem = get_workload("tree", depth=4, branching=3)
>>> sorted(list_workloads())[:3]
['base', 'bottleneck', 'cnodes']

Specs
-----
A *workload spec* is the one-string spelling the CLI and sweep grids use::

    NAME                  # defaults
    NAME:k=v,k2=v2        # keyword parameters for the factory

Parameter values parse as ``int``, then ``float``, then ``true``/``false``
booleans, then plain strings — enough to reach every keyword the shipped
factories expose (counts, capacities, seeds, utility shape names).

Aliases
-------
Convenience names (``flows-x4`` for ``flows:factor=4``) resolve through
:data:`_ALIASES`; the deprecated pre-registry spellings (``base-pow50``,
``link-bottleneck``) still work but raise :class:`DeprecationWarning`
with the canonical replacement in the message.  Every workload reachable
from the old CLI table is reachable by name here — pinned by
``tests/workloads/test_registry.py``.
"""

from __future__ import annotations

import math
import warnings
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.model.problem import Problem
from repro.workloads.base import base_workload
from repro.workloads.bottleneck import link_bottleneck_workload
from repro.workloads.datacenter import fat_tree_workload, leaf_spine_workload
from repro.workloads.dynamics import fault_churn_scenario
from repro.workloads.generator import GeneratorConfig, generate_workload
from repro.workloads.micro import micro_workload
from repro.workloads.scaling import scale_consumer_nodes, scale_flows
from repro.workloads.scenarios import latest_price_scenario, trade_data_scenario
from repro.workloads.tree import tree_workload

__all__ = [
    "WorkloadEntry",
    "get_workload",
    "list_workloads",
    "list_aliases",
    "parse_workload_spec",
    "format_workload_spec",
    "workload_from_spec",
    "register_workload",
]


@dataclass(frozen=True)
class WorkloadEntry:
    """One registered workload family."""

    name: str
    factory: Callable[..., Problem]
    summary: str
    #: Documented keyword parameters (name -> default), for ``--help`` and
    #: error messages; factories may accept more.
    defaults: Mapping[str, Any] = field(default_factory=dict)


_REGISTRY: dict[str, WorkloadEntry] = {}

#: alias -> (canonical name, implied params, deprecated?).  Explicit params
#: passed by the caller override the implied ones.
_ALIASES: dict[str, tuple[str, dict[str, Any], bool]] = {}


def register_workload(
    name: str,
    factory: Callable[..., Problem],
    summary: str,
    defaults: Mapping[str, Any] | None = None,
) -> None:
    """Add a workload family under a stable name (idempotent re-register
    of the same name replaces the entry — tests use that)."""
    if ":" in name or "," in name or "=" in name:
        raise ValueError(f"workload name {name!r} contains spec syntax")
    _REGISTRY[name] = WorkloadEntry(
        name=name, factory=factory, summary=summary, defaults=dict(defaults or {})
    )


def register_alias(
    alias: str,
    target: str,
    params: Mapping[str, Any] | None = None,
    deprecated: bool = False,
) -> None:
    """Map ``alias`` to ``target`` with implied parameters."""
    _ALIASES[alias] = (target, dict(params or {}), deprecated)


def list_workloads() -> tuple[str, ...]:
    """Canonical registered names, sorted."""
    return tuple(sorted(_REGISTRY))


def list_aliases() -> dict[str, str]:
    """alias -> canonical spec it resolves to (deprecated ones included)."""
    return {
        alias: format_workload_spec(target, params)
        for alias, (target, params, _) in sorted(_ALIASES.items())
    }


def entry_for(name: str) -> WorkloadEntry:
    """The registry entry behind a canonical name (aliases not resolved)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; registered: "
            f"{', '.join(list_workloads())}"
        ) from None


def get_workload(name: str, **params: Any) -> Problem:
    """Build the named workload; keyword ``params`` reach the factory.

    Aliases resolve first (explicit params override the alias's implied
    ones); deprecated spellings warn with the canonical replacement.
    """
    if name in _ALIASES:
        target, implied, deprecated = _ALIASES[name]
        if deprecated:
            replacement = format_workload_spec(target, implied)
            warnings.warn(
                f"workload name {name!r} is deprecated; use {replacement!r}",
                DeprecationWarning,
                stacklevel=2,
            )
        merged = {**implied, **params}
        return get_workload(target, **merged)
    entry = entry_for(name)
    try:
        return entry.factory(**params)
    except TypeError as error:
        known = ", ".join(sorted(entry.defaults)) or "(none documented)"
        raise TypeError(
            f"workload {name!r} rejected parameters {sorted(params)}: "
            f"{error}; documented parameters: {known}"
        ) from error


def _coerce(text: str) -> Any:
    """Parse one ``k=v`` value: int, float, bool, then plain string.

    Numeric spellings canonicalize through the parse (``1_0`` and ``10``
    coerce to the same int, ``1e2`` and ``100.0`` to the same float), so
    one workload cannot alias to several sweep-cache entries.  Non-finite
    floats (``nan``/``inf``/``infinity``/``-inf`` and friends) are
    rejected outright: they would poison ``config_hash`` cache keys and
    violate the no-non-finite contract of ``canonical_json``/``JsonlSink``
    downstream.  A factory parameter that genuinely means "unbounded"
    spells it through the factory's default, not through a spec literal.
    """
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        value = float(text)
    except ValueError:
        return text
    if math.isnan(value) or math.isinf(value):
        raise ValueError(
            f"non-finite workload parameter value {text!r}; spec values "
            "must be finite (non-finite floats poison config hashes and "
            "cannot be serialized canonically)"
        )
    return value


def parse_workload_spec(spec: str) -> tuple[str, dict[str, Any]]:
    """Split ``NAME[:k=v,...]`` into the name and coerced parameters.

    Malformed specs raise: a bare ``k`` without ``=``, an empty part
    (``base:,,flows=4``), and a dangling colon (``base:``) are all
    rejected rather than silently dropped — a typo'd spec aliasing to the
    defaults would otherwise poison sweep grids quietly.
    """
    name, sep, tail = spec.partition(":")
    name = name.strip()
    if not name:
        raise ValueError(f"empty workload name in spec {spec!r}")
    params: dict[str, Any] = {}
    if sep and not tail.strip():
        raise ValueError(
            f"dangling {':'!r} in workload spec {spec!r}; expected k=v "
            "parameters after it"
        )
    if tail:
        for part in tail.split(","):
            part = part.strip()
            if not part:
                raise ValueError(
                    f"empty parameter in workload spec {spec!r}; "
                    "expected k=v between commas"
                )
            key, eq, value = part.partition("=")
            if not eq or not key.strip():
                raise ValueError(
                    f"malformed parameter {part!r} in workload spec "
                    f"{spec!r}; expected k=v"
                )
            params[key.strip()] = _coerce(value.strip())
    return name, params


def format_workload_spec(name: str, params: Mapping[str, Any]) -> str:
    """Inverse of :func:`parse_workload_spec`, parameters sorted by key."""
    if not params:
        return name
    rendered = ",".join(f"{key}={params[key]}" for key in sorted(params))
    return f"{name}:{rendered}"


def canonical_workload_spec(spec: str) -> str:
    """Normalize a spec string: aliases resolved, parameters key-sorted.

    Two spellings of the same cell (``flows-x4`` vs ``flows:factor=4``,
    or parameters in a different order) normalize to the same string, so
    the sweep cache treats them as the same content.  Deprecation
    warnings are suppressed — normalization is not use.
    """
    name, params = parse_workload_spec(spec)
    seen = set()
    while name in _ALIASES:
        if name in seen:
            raise ValueError(f"alias cycle at workload {name!r}")
        seen.add(name)
        target, implied, _ = _ALIASES[name]
        params = {**implied, **params}
        name = target
    entry_for(name)  # unknown names fail here, with the full listing
    return format_workload_spec(name, params)


def workload_from_spec(spec: str) -> Problem:
    """Build a workload from its one-string spec (``NAME[:k=v,...]``)."""
    name, params = parse_workload_spec(spec)
    return get_workload(name, **params)


def _generated(seed: int = 0, **params: Any) -> Problem:
    """Seeded random workload; extra params map onto GeneratorConfig."""
    return generate_workload(GeneratorConfig(**params), seed=seed)


def _fault_churn(
    seed: int = 0,
    horizon: float = 400.0,
    crash_rate: float = 0.01,
    warmup: float = 60.0,
) -> Problem:
    """The problem under the bundled chaos scenario (base workload).

    The scenario's fault plan is reconstructed from the same parameters
    by the chaos runner; the registry only hands out problems.
    """
    return fault_churn_scenario(
        seed=seed, horizon=horizon, crash_rate=crash_rate, warmup=warmup
    ).problem


def _bottleneck(**params: Any) -> Problem:
    """Shared-uplink workload; the historical CLI capacity is the default."""
    return link_bottleneck_workload(**{"link_capacity": 100.0, **params})


def _trade_data(**params: Any) -> Problem:
    return trade_data_scenario(**params).problem


def _latest_price(**params: Any) -> Problem:
    return latest_price_scenario(**params).problem


register_workload(
    "micro",
    micro_workload,
    "2 flows, 1 node, 3 contending classes (exhaustive-search scale)",
    {"capacity": 2000.0, "rate_min": 1.0, "rate_max": 20.0},
)
register_workload(
    "base",
    base_workload,
    "the paper's Table 1 workload (6 flows, 3 nodes, 20 classes)",
    {"shape": "log"},
)
register_workload(
    "flows",
    scale_flows,
    "base workload replicated: 6*factor flows, 3*factor nodes",
    {"factor": 2, "shape": "log"},
)
register_workload(
    "cnodes",
    scale_consumer_nodes,
    "base workload with 3*factor consumer nodes (same 6 flows)",
    {"factor": 2, "shape": "log"},
)
register_workload(
    "tree",
    tree_workload,
    "branching broker tree with overlapping flow subtrees",
    {"depth": 3, "branching": 2, "flows": 4},
)
register_workload(
    "leafspine",
    leaf_spine_workload,
    "two-tier leaf-spine fabric, round-robin spine per flow",
    {"spines": 4, "leaves": 8, "flows": 16, "leaves_per_flow": 2},
)
register_workload(
    "fattree",
    fat_tree_workload,
    "three-tier k-ary fat tree, round-robin core per flow",
    {"k": 4, "flows": 8, "edges_per_flow": 2},
)
register_workload(
    "bottleneck",
    _bottleneck,
    "shared-uplink workload where link pricing binds (eq. 4)",
    {"link_capacity": 100.0, "flows": 3, "consumer_nodes": 2},
)
register_workload(
    "generated",
    _generated,
    "seeded random instance (GeneratorConfig parameters + seed)",
    {"seed": 0, "flows": 6, "consumer_nodes": 3},
)
register_workload(
    "trade-data",
    _trade_data,
    "section 1.1 Trade Data scenario (gold vs public consumers)",
    {"gold_consumers": 50, "public_consumers": 5000},
)
register_workload(
    "latest-price",
    _latest_price,
    "section 1.1 Latest Price scenario (filtered elastic updates)",
    {"consumer_nodes": 2, "consumers_per_class": 2000},
)
register_workload(
    "fault-churn",
    _fault_churn,
    "base workload under the bundled chaos scenario (problem only)",
    {"seed": 0, "horizon": 400.0, "crash_rate": 0.01, "warmup": 60.0},
)

# Stable convenience aliases (the scalability-study grid of section 4.3).
register_alias("flows-x2", "flows", {"factor": 2})
register_alias("flows-x4", "flows", {"factor": 4})
register_alias("cnodes-x2", "cnodes", {"factor": 2})
register_alias("cnodes-x4", "cnodes", {"factor": 4})
register_alias("cnodes-x8", "cnodes", {"factor": 8})

# Deprecated pre-registry spellings (the old CLI BUILTIN_WORKLOADS table).
register_alias("base-pow25", "base", {"shape": "pow25"}, deprecated=True)
register_alias("base-pow50", "base", {"shape": "pow50"}, deprecated=True)
register_alias("base-pow75", "base", {"shape": "pow75"}, deprecated=True)
register_alias("link-bottleneck", "bottleneck", {}, deprecated=True)
