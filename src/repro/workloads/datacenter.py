"""Datacenter-fabric workloads: leaf-spine and fat-tree dissemination.

The paper's evaluation overlays are single-digit-node stars; the ROADMAP
north star is datacenter scale.  This family builds broker overlays shaped
like the two canonical datacenter fabrics (psim builds exactly these
topologies for its packet simulator) and loads them with the same
producer-hub / consumer-leaf structure as the tree workloads:

* producers attach at a hub above the fabric;
* spine/core/aggregation brokers are pure relays (flow-node cost, no
  consumers, infinite node capacity);
* leaf (or edge) brokers host the consumer classes;
* each flow is disseminated to a contiguous block of leaves through **one**
  fabric path picked round-robin per flow — a deterministic stand-in for
  ECMP hashing.  The fabrics are multipath (every leaf is reachable via
  every spine/core), and BFS tie-breaking would collapse all flows onto
  the first spine; the round-robin choice is what actually spreads load,
  and it is insertion-order independent by construction.

Unlike the paper overlays, fabric links default to a *finite* capacity,
so every link is a bottleneck link (eq. 4) with a live price controller —
at ``spines=100, leaves=100`` that is the 10k+ link / 1k+ flow scale the
sparse engine layout exists for, with compiled-array memory proportional
to route nonzeros rather than ``n_links x n_flows``.
"""

from __future__ import annotations

from repro.model.costs import (
    GRYPHON_CONSUMER_COST,
    GRYPHON_FLOW_NODE_COST,
    GRYPHON_NODE_CAPACITY,
    CostModelBuilder,
)
from repro.model.entities import ConsumerClass, Flow, Route
from repro.model.problem import Problem, build_problem
from repro.model.topology import fat_tree_overlay, leaf_spine_overlay
from repro.utility.functions import UTILITY_SHAPES
from repro.workloads.base import UtilityFactory
from repro.workloads.tree import DEFAULT_RANKS

#: Default fabric link capacity: finite so links carry price controllers
#: (making them bottleneck links in the compiled lowering), but generous
#: enough that link prices only bind when a workload oversubscribes a
#: fabric on purpose.
DEFAULT_FABRIC_LINK_CAPACITY = 1_000_000.0


def leaf_spine_workload(
    spines: int = 4,
    leaves: int = 8,
    flows: int = 16,
    leaves_per_flow: int = 2,
    classes_per_leaf: int = 2,
    max_consumers: int = 500,
    leaf_capacity: float = GRYPHON_NODE_CAPACITY,
    link_capacity: float = DEFAULT_FABRIC_LINK_CAPACITY,
    rate_min: float = 10.0,
    rate_max: float = 1000.0,
    shape: str | UtilityFactory = "log",
) -> Problem:
    """A two-tier leaf-spine fabric under dissemination load.

    Flow ``i`` routes hub → ``spine{i % spines}`` → its leaf block
    ``[i * leaves_per_flow, ...)`` modulo the leaf count, so consecutive
    flows ride different spines and overlapping blocks share leaves.
    Registered as ``leafspine:...``; the 1k-flow scale leg of the engine
    bench is ``leafspine:spines=100,leaves=100,flows=1024,leaves_per_flow=4``
    (10100 fabric links).
    """
    if flows < 1 or leaves_per_flow < 1 or classes_per_leaf < 1:
        raise ValueError("flows/leaves_per_flow/classes_per_leaf must be >= 1")
    if callable(shape):
        make_utility = shape
    else:
        make_utility = UTILITY_SHAPES[shape]

    overlay = leaf_spine_overlay(
        spines=spines,
        leaves=leaves,
        leaf_capacity=leaf_capacity,
        link_capacity=link_capacity,
    )
    leaf_ids = [f"leaf{j}" for j in range(leaves)]

    flow_objs = []
    classes = []
    routes: dict[str, Route] = {}
    costs = CostModelBuilder()
    for flow_index in range(flows):
        flow_id = f"f{flow_index}"
        flow_objs.append(
            Flow(flow_id, source="hub", rate_min=rate_min, rate_max=rate_max)
        )
        spine = f"spine{flow_index % spines}"
        targets = [
            leaf_ids[(flow_index * leaves_per_flow + offset) % leaves]
            for offset in range(min(leaves_per_flow, leaves))
        ]
        # The flow's dissemination tree through its round-robin spine: the
        # fabric gives exactly one path per (spine, leaf), so the explicit
        # construction equals dissemination_route restricted to that spine.
        route = Route(
            nodes=("hub", spine, *targets),
            links=(
                overlay.link_between("hub", spine),
                *(overlay.link_between(spine, leaf) for leaf in targets),
            ),
        )
        routes[flow_id] = route
        for node_id in route.nodes[1:]:  # every traversed broker pays F
            costs.set_flow_node(node_id, flow_id, GRYPHON_FLOW_NODE_COST)
        for link_id in route.links:
            costs.set_link(link_id, flow_id, 1.0)
        for leaf in targets:
            for class_index in range(classes_per_leaf):
                class_id = f"c{flow_index}.{leaf}.{class_index}"
                rank = DEFAULT_RANKS[class_index % len(DEFAULT_RANKS)]
                classes.append(
                    ConsumerClass(
                        class_id=class_id,
                        flow_id=flow_id,
                        node=leaf,
                        max_consumers=max_consumers,
                        utility=make_utility(rank),
                    )
                )
                costs.set_consumer(leaf, class_id, GRYPHON_CONSUMER_COST)

    return build_problem(
        nodes=list(overlay.nodes.values()),
        links=list(overlay.links.values()),
        flows=flow_objs,
        classes=classes,
        routes=routes,
        costs=costs.build(),
    )


def fat_tree_workload(
    k: int = 4,
    flows: int = 8,
    edges_per_flow: int = 2,
    classes_per_edge: int = 2,
    max_consumers: int = 500,
    edge_capacity: float = GRYPHON_NODE_CAPACITY,
    link_capacity: float = DEFAULT_FABRIC_LINK_CAPACITY,
    rate_min: float = 10.0,
    rate_max: float = 1000.0,
    shape: str | UtilityFactory = "log",
) -> Problem:
    """A three-tier ``k``-ary fat tree under dissemination load.

    Flow ``i`` enters through core ``i % (k/2)^2`` and fans out to a
    contiguous block of edge switches across pods; below a given core the
    fat tree is a tree (one aggregation switch per pod), so the
    dissemination route is the unique shortest-path tree from that core.
    Registered as ``fattree:...``.
    """
    if flows < 1 or edges_per_flow < 1 or classes_per_edge < 1:
        raise ValueError("flows/edges_per_flow/classes_per_edge must be >= 1")
    if callable(shape):
        make_utility = shape
    else:
        make_utility = UTILITY_SHAPES[shape]

    overlay = fat_tree_overlay(
        k=k, edge_capacity=edge_capacity, link_capacity=link_capacity
    )
    half = k // 2
    n_cores = half * half
    edge_ids = [f"edge{pod}_{e}" for pod in range(k) for e in range(half)]

    flow_objs = []
    classes = []
    routes: dict[str, Route] = {}
    costs = CostModelBuilder()
    for flow_index in range(flows):
        flow_id = f"f{flow_index}"
        flow_objs.append(
            Flow(flow_id, source="hub", rate_min=rate_min, rate_max=rate_max)
        )
        core = f"core{flow_index % n_cores}"
        targets = [
            edge_ids[(flow_index * edges_per_flow + offset) % len(edge_ids)]
            for offset in range(min(edges_per_flow, len(edge_ids)))
        ]
        below = overlay.dissemination_route(core, targets)
        route = Route(
            nodes=("hub", *below.nodes),
            links=(overlay.link_between("hub", core), *below.links),
        )
        routes[flow_id] = route
        for node_id in route.nodes[1:]:
            costs.set_flow_node(node_id, flow_id, GRYPHON_FLOW_NODE_COST)
        for link_id in route.links:
            costs.set_link(link_id, flow_id, 1.0)
        for edge in targets:
            for class_index in range(classes_per_edge):
                class_id = f"c{flow_index}.{edge}.{class_index}"
                rank = DEFAULT_RANKS[class_index % len(DEFAULT_RANKS)]
                classes.append(
                    ConsumerClass(
                        class_id=class_id,
                        flow_id=flow_id,
                        node=edge,
                        max_consumers=max_consumers,
                        utility=make_utility(rank),
                    )
                )
                costs.set_consumer(edge, class_id, GRYPHON_CONSUMER_COST)

    return build_problem(
        nodes=list(overlay.nodes.values()),
        links=list(overlay.links.values()),
        flows=flow_objs,
        classes=classes,
        routes=routes,
        costs=costs.build(),
    )
