"""Scaled workloads for the scalability study (section 4.3, Table 2).

Two scaling dimensions:

* :func:`scale_consumer_nodes` — "the same amount of information propagates
  to more consumers": the number of consumer nodes grows, the flows stay;
* :func:`scale_flows` — "the system accommodates new information flows":
  whole-workload replicas with fresh flows and fresh consumer nodes.

:data:`TABLE2_WORKLOADS` enumerates the six rows of Table 2.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.model.problem import Problem
from repro.workloads.base import UtilityFactory, WorkloadParams, build_workload


def scale_consumer_nodes(
    factor: int, shape: str | UtilityFactory = "log"
) -> Problem:
    """Base workload with ``3 * factor`` consumer nodes and 6 flows."""
    return build_workload(WorkloadParams(shape=shape, node_replicas=factor))


def scale_flows(factor: int, shape: str | UtilityFactory = "log") -> Problem:
    """``factor`` independent replicas: ``6 * factor`` flows and
    ``3 * factor`` consumer nodes."""
    return build_workload(WorkloadParams(shape=shape, flow_replicas=factor))


#: The six rows of Table 2, in paper order: label -> builder.
TABLE2_WORKLOADS: dict[str, Callable[[], Problem]] = {
    "6 flows, 3 c-nodes": lambda: scale_flows(1),
    "12 flows, 6 c-nodes": lambda: scale_flows(2),
    "24 flows, 12 c-nodes": lambda: scale_flows(4),
    "6 flows, 6 c-nodes": lambda: scale_consumer_nodes(2),
    "6 flows, 12 c-nodes": lambda: scale_consumer_nodes(4),
    "6 flows, 24 c-nodes": lambda: scale_consumer_nodes(8),
}
