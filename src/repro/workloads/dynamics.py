"""Dynamic scenarios: workload and capacity churn over time.

Section 2.1 frames LRGP as "running all the time, and responding to changes
in workload and system capacity".  A :class:`DynamicScenario` scripts those
changes — flows leaving, capacity shifts — against an optimizer that keeps
iterating, and records the utility trajectory with event markers.  Figure
3's single flow-removal is the simplest instance; the churn scenario
bundled here exercises a whole sequence.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.lrgp import LRGP, LRGPConfig
from repro.events.reliability import RetryPolicy
from repro.model.problem import Problem
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime
from repro.runtime.faults import FaultPlan
from repro.workloads.base import base_workload

#: A mutation takes the current problem and returns the new problem.
Mutation = Callable[[Problem], Problem]


@dataclass(frozen=True)
class ScheduledChange:
    """One scripted system change."""

    iteration: int
    label: str
    mutate: Mutation

    def __post_init__(self) -> None:
        if self.iteration < 1:
            raise ValueError("changes must be scheduled at iteration >= 1")


@dataclass
class DynamicRun:
    """Outcome of driving an optimizer through a scenario."""

    utilities: list[float]
    #: (iteration, label) for each enacted change, in order.
    events: list[tuple[int, str]] = field(default_factory=list)

    def utility_before(self, iteration: int) -> float:
        """Utility at the end of the given 1-based iteration."""
        return self.utilities[iteration - 1]


@dataclass
class DynamicScenario:
    """A scripted sequence of system changes."""

    initial: Problem
    changes: list[ScheduledChange]
    total_iterations: int = 300

    def __post_init__(self) -> None:
        iterations = [change.iteration for change in self.changes]
        if iterations != sorted(iterations):
            raise ValueError("changes must be sorted by iteration")
        if iterations and iterations[-1] > self.total_iterations:
            raise ValueError("a change is scheduled after the run ends")

    def run(self, config: LRGPConfig | None = None) -> DynamicRun:
        """Drive a fresh optimizer through the scenario.

        Each scheduled change is applied *after* its iteration completes,
        mirroring an autonomic system reacting to an external event; prices
        and populations for surviving entities are preserved across changes
        (warm start), which is what makes recovery fast.
        """
        optimizer = LRGP(self.initial, config or LRGPConfig.adaptive())
        run = DynamicRun(utilities=optimizer.utilities)
        pending = list(self.changes)
        for iteration in range(1, self.total_iterations + 1):
            optimizer.step()
            while pending and pending[0].iteration == iteration:
                change = pending.pop(0)
                optimizer.set_problem(change.mutate(optimizer.problem))
                run.events.append((iteration, change.label))
        return run


@dataclass(frozen=True)
class ChaosScenario:
    """Churn-under-faults: the asynchronous deployment driven through a
    seeded :class:`~repro.runtime.faults.FaultPlan`.

    Where :class:`DynamicScenario` scripts *workload* churn against the
    centralized driver, this scripts *infrastructure* churn — agent
    crashes, partitions, delay storms — against the distributed runtime.
    """

    problem: Problem
    plan: FaultPlan
    horizon: float = 400.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon <= 0.0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")

    def run(self, telemetry: Telemetry = NULL_TELEMETRY) -> AsynchronousRuntime:
        """Execute to the horizon; returns the finished runtime (samples,
        recovery records and fault counters attached)."""
        runtime = AsynchronousRuntime(
            self.problem,
            AsyncConfig(seed=self.seed),
            fault_plan=self.plan,
            retry=RetryPolicy(),
            telemetry=telemetry,
        )
        runtime.run_until(self.horizon)
        return runtime


def fault_churn_scenario(
    seed: int = 0,
    horizon: float = 400.0,
    crash_rate: float = 0.01,
    warmup: float = 60.0,
) -> ChaosScenario:
    """The bundled chaos scenario: the base workload's agent fleet under a
    seeded mix of crashes (with checkpoint restarts), one-agent partitions
    and delay storms, starting after a convergence warmup."""
    problem = base_workload()
    plan = FaultPlan.random(
        problem,
        seed=seed,
        horizon=horizon,
        crash_rate=crash_rate,
        mean_downtime=8.0,
        partition_rate=crash_rate / 4.0,
        mean_partition=10.0,
        storm_rate=crash_rate / 4.0,
        mean_storm=10.0,
        storm_factor=5.0,
        warmup=warmup,
    )
    return ChaosScenario(problem=problem, plan=plan, horizon=horizon, seed=seed)


def churn_scenario(total_iterations: int = 300) -> DynamicScenario:
    """A bundled stress scenario on the base workload:

    * iteration 80: node S1 loses half its capacity (failure / co-tenant);
    * iteration 140: flow f5 (highest-rank classes) leaves — figure 3's
      event, now mid-churn;
    * iteration 200: S1's capacity is restored.
    """
    problem = base_workload()
    s1_capacity = problem.nodes["S1"].capacity
    return DynamicScenario(
        initial=problem,
        changes=[
            ScheduledChange(
                iteration=80,
                label="S1 capacity halved",
                mutate=lambda p: p.with_node_capacity("S1", s1_capacity / 2.0),
            ),
            ScheduledChange(
                iteration=140,
                label="flow f5 leaves",
                mutate=lambda p: p.without_flow("f5"),
            ),
            ScheduledChange(
                iteration=200,
                label="S1 capacity restored",
                mutate=lambda p: p.with_node_capacity("S1", s1_capacity),
            ),
        ],
        total_iterations=total_iterations,
    )
