"""Seeded random workload generator.

The paper constructs hand-made workloads (there were no benchmarks for
utility-based event infrastructures).  This generator produces structurally
similar random instances — a producer hub, a pool of consumer nodes, flows
routed to random node subsets, rank-ordered consumer classes with
populations growing as rank falls — for robustness testing, property tests
and experiments beyond the paper's grid.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.model.costs import (
    GRYPHON_CONSUMER_COST,
    GRYPHON_FLOW_NODE_COST,
    GRYPHON_NODE_CAPACITY,
    CostModelBuilder,
)
from repro.model.entities import ConsumerClass, Flow, Link, Node, Route
from repro.model.problem import Problem, build_problem
from repro.utility.functions import UTILITY_SHAPES
from repro.workloads.base import UtilityFactory


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape of the random instances."""

    flows: int = 6
    consumer_nodes: int = 3
    #: Consumer nodes each flow is routed to (clamped to the node count).
    nodes_per_flow: int = 2
    #: Consumer classes attached per (flow, reached node).
    classes_per_flow_node: int = 2
    rank_low: float = 1.0
    rank_high: float = 100.0
    max_consumers_low: int = 100
    max_consumers_high: int = 2000
    rate_min: float = 10.0
    rate_max: float = 1000.0
    node_capacity: float = GRYPHON_NODE_CAPACITY
    flow_node_cost: float = GRYPHON_FLOW_NODE_COST
    #: Consumer cost is drawn uniformly from this range (heterogeneous
    #: per-consumer processing, section 1.1).
    consumer_cost_low: float = GRYPHON_CONSUMER_COST
    consumer_cost_high: float = GRYPHON_CONSUMER_COST
    shape: str | UtilityFactory = "log"
    #: When finite, links get this capacity so link pricing engages.
    link_capacity: float = math.inf

    def __post_init__(self) -> None:
        if self.flows < 1 or self.consumer_nodes < 1:
            raise ValueError("need at least one flow and one consumer node")
        if self.nodes_per_flow < 1:
            raise ValueError("nodes_per_flow must be at least 1")
        if self.classes_per_flow_node < 1:
            raise ValueError("classes_per_flow_node must be at least 1")
        if not 0 < self.rank_low <= self.rank_high:
            raise ValueError("ranks must satisfy 0 < low <= high")
        if not 0 < self.max_consumers_low <= self.max_consumers_high:
            raise ValueError("max_consumers must satisfy 0 < low <= high")
        if not 0 <= self.rate_min <= self.rate_max:
            raise ValueError("rates must satisfy 0 <= min <= max")
        if self.consumer_cost_low < 0 or self.consumer_cost_high < self.consumer_cost_low:
            raise ValueError("consumer cost range invalid")


def generate_workload(config: GeneratorConfig | None = None, seed: int = 0) -> Problem:
    """Draw one random problem instance; same seed, same instance."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    if callable(config.shape):
        make_utility = config.shape
    else:
        make_utility = UTILITY_SHAPES[config.shape]

    node_names = [f"S{index}" for index in range(config.consumer_nodes)]
    nodes = [Node("P", capacity=math.inf)] + [
        Node(name, capacity=config.node_capacity) for name in node_names
    ]
    links = [
        Link(f"P->{name}", tail="P", head=name, capacity=config.link_capacity)
        for name in node_names
    ]

    flows = []
    classes = []
    routes: dict[str, Route] = {}
    costs = CostModelBuilder()
    class_counter = 0

    for flow_index in range(config.flows):
        flow_id = f"f{flow_index}"
        flows.append(
            Flow(
                flow_id,
                source="P",
                rate_min=config.rate_min,
                rate_max=config.rate_max,
            )
        )
        count = min(config.nodes_per_flow, config.consumer_nodes)
        reached = rng.sample(node_names, count)
        route_nodes = ["P"] + reached
        route_links = [f"P->{name}" for name in reached]
        routes[flow_id] = Route(nodes=tuple(route_nodes), links=tuple(route_links))
        for name in reached:
            costs.set_flow_node(name, flow_id, config.flow_node_cost)
            costs.set_link(f"P->{name}", flow_id, 1.0)

        # Rank-ordered classes: population grows as rank falls, mirroring
        # "less important users are more numerous" (section 4.1).
        drawn_ranks = sorted(
            (
                rng.uniform(config.rank_low, config.rank_high)
                for _ in range(config.classes_per_flow_node)
            ),
            reverse=True,
        )
        populations = sorted(
            rng.randint(config.max_consumers_low, config.max_consumers_high)
            for _ in range(config.classes_per_flow_node)
        )
        for name in reached:
            for rank, max_consumers in zip(drawn_ranks, populations):
                class_id = f"c{class_counter:03d}"
                class_counter += 1
                classes.append(
                    ConsumerClass(
                        class_id=class_id,
                        flow_id=flow_id,
                        node=name,
                        max_consumers=max_consumers,
                        utility=make_utility(rank),
                    )
                )
                costs.set_consumer(
                    name,
                    class_id,
                    rng.uniform(config.consumer_cost_low, config.consumer_cost_high),
                )

    return build_problem(
        nodes=nodes,
        links=links,
        flows=flows,
        classes=classes,
        routes=routes,
        costs=costs.build(),
    )
