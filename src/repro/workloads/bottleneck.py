"""Link-bottleneck workloads.

The paper's evaluation deliberately has no link bottlenecks (section 4.1,
footnote 3: link pricing for rate control is prior work, Low & Lapsley).
Our implementation carries the full link-price machinery (eq. 13), so this
module provides workloads that actually exercise it: all flows share one
capacitated uplink through a relay, making the gradient-projection link
price the binding control.

Topology::

    P --[uplink: capacity c_l]--> R --> S0, S1, ... (consumer nodes)

Every flow traverses the uplink; node capacities are generous so the
uplink is the sole bottleneck (or set ``node_capacity`` low to get mixed
node+link contention).
"""

from __future__ import annotations

import math

from repro.model.costs import (
    GRYPHON_CONSUMER_COST,
    GRYPHON_FLOW_NODE_COST,
    CostModelBuilder,
)
from repro.model.entities import ConsumerClass, Flow, Link, Node, Route
from repro.model.problem import Problem, build_problem
from repro.utility.functions import UTILITY_SHAPES
from repro.workloads.base import UtilityFactory

#: Rank/population pairs for the bottleneck classes (one class per flow per
#: consumer node): heavier ranks on earlier flows so the price allocation
#: has a clear utility-weighted pecking order.
DEFAULT_CLASS_RANKS = (50.0, 20.0, 5.0)
DEFAULT_MAX_CONSUMERS = 200


def link_bottleneck_workload(
    link_capacity: float,
    flows: int = 3,
    consumer_nodes: int = 2,
    ranks: tuple[float, ...] = DEFAULT_CLASS_RANKS,
    max_consumers: int = DEFAULT_MAX_CONSUMERS,
    node_capacity: float = 5.0e6,
    rate_min: float = 1.0,
    rate_max: float = 1000.0,
    shape: str | UtilityFactory = "log",
) -> Problem:
    """A shared-uplink workload where eq. 4 is the binding constraint.

    ``link_capacity`` bounds ``sum_i r_i`` (all link costs are 1).  With the
    default ``5e6`` node capacity the nodes never bind, isolating link
    pricing; lower it to study joint node+link contention.
    """
    if flows < 1 or consumer_nodes < 1:
        raise ValueError("need at least one flow and one consumer node")
    if link_capacity <= 0.0:
        raise ValueError("link_capacity must be positive")
    if callable(shape):
        make_utility = shape
    else:
        make_utility = UTILITY_SHAPES[shape]

    node_names = [f"S{index}" for index in range(consumer_nodes)]
    nodes = [Node("P", capacity=math.inf), Node("R", capacity=math.inf)] + [
        Node(name, capacity=node_capacity) for name in node_names
    ]
    links = [Link("uplink", tail="P", head="R", capacity=link_capacity)] + [
        Link(f"R->{name}", tail="R", head=name) for name in node_names
    ]

    flow_objs = []
    classes = []
    routes: dict[str, Route] = {}
    costs = CostModelBuilder()
    for flow_index in range(flows):
        flow_id = f"f{flow_index}"
        flow_objs.append(
            Flow(flow_id, source="P", rate_min=rate_min, rate_max=rate_max)
        )
        routes[flow_id] = Route(
            nodes=("P", "R", *node_names),
            links=("uplink", *(f"R->{name}" for name in node_names)),
        )
        costs.set_link("uplink", flow_id, 1.0)
        rank = ranks[flow_index % len(ranks)]
        for name in node_names:
            costs.set_link(f"R->{name}", flow_id, 1.0)
            costs.set_flow_node(name, flow_id, GRYPHON_FLOW_NODE_COST)
            class_id = f"c{flow_index}@{name}"
            classes.append(
                ConsumerClass(
                    class_id=class_id,
                    flow_id=flow_id,
                    node=name,
                    max_consumers=max_consumers,
                    utility=make_utility(rank),
                )
            )
            costs.set_consumer(name, class_id, GRYPHON_CONSUMER_COST)

    return build_problem(
        nodes=nodes,
        links=links,
        flows=flow_objs,
        classes=classes,
        routes=routes,
        costs=costs.build(),
    )
