"""The motivating scenarios of section 1.1, as runnable workloads.

* :func:`trade_data_scenario` — a trade feed with high-priority *gold*
  consumers (paying brokerages, reliable delivery, near-inelastic) and
  numerous *public* consumers whose messages are stripped of gold-only
  fields; admission control sheds public consumers under pressure.
* :func:`latest_price_scenario` — an elastic latest-price feed where
  consumers apply content filters (``price > threshold``); the system can
  shed load by reducing the producer rate or denying consumers, or both.

Each scenario returns the optimization :class:`Problem` plus the per-class
transforms and per-flow payload factories needed to run it on the
:mod:`repro.events` simulator.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.events.pubsub import PayloadFactory
from repro.events.transforms import FilterTransform, ProjectTransform, Transform
from repro.model.costs import (
    GRYPHON_CONSUMER_COST,
    GRYPHON_FLOW_NODE_COST,
    GRYPHON_NODE_CAPACITY,
    CostModelBuilder,
)
from repro.model.entities import ConsumerClass, Flow, Link, Node, Route
from repro.model.problem import Problem, build_problem
from repro.utility.functions import ExponentialSaturationUtility, LogUtility


@dataclass(frozen=True)
class Scenario:
    """A problem plus the simulator dressing that makes it a live system."""

    name: str
    problem: Problem
    transforms: Mapping[str, Transform] = field(default_factory=dict)
    payload_factories: Mapping[str, PayloadFactory] = field(default_factory=dict)


def trade_data_scenario(
    gold_consumers: int = 50,
    public_consumers: int = 5000,
    node_capacity: float = GRYPHON_NODE_CAPACITY,
) -> Scenario:
    """The Trade Data example.

    One flow of trade messages.  Gold consumers (brokerages) are few, pay
    for the data, require reliable delivery — modeled as a high-rank
    near-inelastic (saturating) utility and a higher per-consumer cost (the
    acknowledgement and reliability overhead the paper describes).  Public
    consumers are numerous, low-rank, elastic (log utility), and receive
    messages with the gold-only fields removed.
    """
    nodes = [
        Node("hub", capacity=math.inf),
        Node("brokerage", capacity=node_capacity),
        Node("internet-pop", capacity=node_capacity),
    ]
    links = [
        Link("hub->brokerage", tail="hub", head="brokerage"),
        Link("hub->internet-pop", tail="hub", head="internet-pop"),
    ]
    flow = Flow("trades", source="hub", rate_min=50.0, rate_max=2000.0)
    classes = [
        ConsumerClass(
            class_id="gold",
            flow_id="trades",
            node="brokerage",
            max_consumers=gold_consumers,
            # Saturates near 500 msg/s: gold consumers want the full feed
            # and gain little from rates beyond it (inelastic beyond knee).
            utility=ExponentialSaturationUtility(scale=5000.0, knee=500.0),
        ),
        ConsumerClass(
            class_id="public",
            flow_id="trades",
            node="internet-pop",
            max_consumers=public_consumers,
            utility=LogUtility(scale=5.0),
        ),
    ]
    routes = {
        "trades": Route(
            nodes=("hub", "brokerage", "internet-pop"),
            links=("hub->brokerage", "hub->internet-pop"),
        )
    }
    costs = (
        CostModelBuilder()
        .set_flow_node("brokerage", "trades", GRYPHON_FLOW_NODE_COST)
        .set_flow_node("internet-pop", "trades", GRYPHON_FLOW_NODE_COST)
        # Reliable delivery (acks, retransmit state) costs extra per gold
        # consumer; public delivery includes the field-stripping work.
        .set_consumer("brokerage", "gold", 3.0 * GRYPHON_CONSUMER_COST)
        .set_consumer("internet-pop", "public", GRYPHON_CONSUMER_COST)
        .set_link("hub->brokerage", "trades", 1.0)
        .set_link("hub->internet-pop", "trades", 1.0)
        .build()
    )
    problem = build_problem(
        nodes=nodes, links=links, flows=[flow], classes=classes, routes=routes,
        costs=costs,
    )

    rng = random.Random(7)

    def trade_payload(sequence: int) -> dict:
        return {
            "symbol": "IBM",
            "price": round(80.0 + rng.gauss(0.0, 5.0), 2),
            "volume": rng.randint(100, 10_000),
            # Gold-only fields, stripped before public delivery:
            "counterparty": f"firm-{rng.randint(1, 20)}",
            "order_book_depth": rng.randint(1, 50),
        }

    return Scenario(
        name="trade-data",
        problem=problem,
        transforms={
            "public": ProjectTransform(["counterparty", "order_book_depth"])
        },
        payload_factories={"trades": trade_payload},
    )


def latest_price_scenario(
    consumer_nodes: int = 2,
    consumers_per_class: int = 2000,
    price_threshold: float = 80.0,
    node_capacity: float = GRYPHON_NODE_CAPACITY,
) -> Scenario:
    """The Latest Price Data example.

    One very elastic flow of latest-price updates.  Consumers specify a
    content filter (``price > threshold``); the system evaluates the filter
    per message per consumer class — which is exactly the per-consumer CPU
    cost ``G`` models.  Rate can be lowered (updates skipped, latency grows)
    or consumers denied, or both.
    """
    if consumer_nodes < 1:
        raise ValueError("need at least one consumer node")
    node_names = [f"pop{index}" for index in range(consumer_nodes)]
    nodes = [Node("hub", capacity=math.inf)] + [
        Node(name, capacity=node_capacity) for name in node_names
    ]
    links = [Link(f"hub->{name}", tail="hub", head=name) for name in node_names]
    flow = Flow("prices", source="hub", rate_min=1.0, rate_max=500.0)
    classes = []
    costs = CostModelBuilder()
    transforms: dict[str, Transform] = {}
    for index, name in enumerate(node_names):
        class_id = f"watchers-{name}"
        classes.append(
            ConsumerClass(
                class_id=class_id,
                flow_id="prices",
                node=name,
                max_consumers=consumers_per_class,
                utility=LogUtility(scale=10.0),
            )
        )
        costs.set_consumer(name, class_id, GRYPHON_CONSUMER_COST)
        costs.set_flow_node(name, "prices", GRYPHON_FLOW_NODE_COST)
        costs.set_link(f"hub->{name}", "prices", 1.0)
        threshold = price_threshold + 2.0 * index
        transforms[class_id] = FilterTransform(
            lambda payload, t=threshold: payload.get("price", 0.0) > t
        )
    routes = {
        "prices": Route(
            nodes=("hub", *node_names),
            links=tuple(f"hub->{name}" for name in node_names),
        )
    }
    problem = build_problem(
        nodes=nodes, links=links, flows=[flow], classes=classes, routes=routes,
        costs=costs.build(),
    )

    rng = random.Random(11)
    price = [80.0]

    def price_payload(sequence: int) -> dict:
        price[0] = max(1.0, price[0] + rng.gauss(0.0, 0.5))
        return {"symbol": "IBM", "price": round(price[0], 2)}

    return Scenario(
        name="latest-price",
        problem=problem,
        transforms=transforms,
        payload_factories={"prices": price_payload},
    )
