"""Tree-overlay workloads: multi-hop dissemination through relay brokers.

The paper's evaluation workloads are effectively single-hop (a producer hub
fanning out to consumer nodes).  Real event infrastructures route through
interior brokers, which consume CPU for routing and transformation on every
message they relay — the flow-node cost ``F_{b,i}`` applies at relays too.
This workload family builds a complete ``branching``-ary broker tree:

* the root hosts the producers;
* interior nodes are pure relays (flow-node cost, no consumers);
* leaves host the consumer classes;
* each flow is disseminated to a contiguous block of leaves, so different
  flows load different subtrees and interior links/nodes see different
  aggregate traffic.

Exercises machinery the star workloads cannot: relay nodes in routes,
two-stage pruning of interior branches, and (with finite ``link_capacity``)
link pricing at depth.
"""

from __future__ import annotations

import math

from repro.model.costs import (
    GRYPHON_CONSUMER_COST,
    GRYPHON_FLOW_NODE_COST,
    GRYPHON_NODE_CAPACITY,
    CostModelBuilder,
)
from repro.model.entities import ConsumerClass, Flow, Link, Node, Route
from repro.model.problem import Problem, build_problem
from repro.model.topology import Overlay
from repro.utility.functions import UTILITY_SHAPES
from repro.workloads.base import UtilityFactory

#: Rank ladder reused round-robin across a flow's classes.
DEFAULT_RANKS = (40.0, 10.0, 2.0)


def tree_workload(
    depth: int = 3,
    branching: int = 2,
    flows: int = 4,
    leaves_per_flow: int = 2,
    classes_per_leaf: int = 2,
    max_consumers: int = 500,
    leaf_capacity: float = GRYPHON_NODE_CAPACITY,
    relay_capacity: float = math.inf,
    link_capacity: float = math.inf,
    rate_min: float = 10.0,
    rate_max: float = 1000.0,
    shape: str | UtilityFactory = "log",
) -> Problem:
    """Build a ``branching``-ary tree of ``depth`` levels below the root.

    Flow ``i`` reaches leaves ``[i * leaves_per_flow, ...)`` modulo the
    leaf count, so with enough flows subtrees overlap and interior
    resources are genuinely shared.
    """
    if depth < 1 or branching < 1:
        raise ValueError("depth and branching must be at least 1")
    if flows < 1 or leaves_per_flow < 1 or classes_per_leaf < 1:
        raise ValueError("flows/leaves_per_flow/classes_per_leaf must be >= 1")
    if callable(shape):
        make_utility = shape
    else:
        make_utility = UTILITY_SHAPES[shape]

    # Nodes: root, interior levels, leaves.
    nodes = [Node("root", capacity=math.inf)]
    links = []
    level_names: list[list[str]] = [["root"]]
    for level in range(1, depth + 1):
        is_leaf = level == depth
        names = []
        for parent_index, parent in enumerate(level_names[level - 1]):
            for child in range(branching):
                index = parent_index * branching + child
                name = (
                    f"leaf{index}" if is_leaf else f"relay{level}.{index}"
                )
                names.append(name)
                nodes.append(
                    Node(
                        name,
                        capacity=leaf_capacity if is_leaf else relay_capacity,
                    )
                )
                links.append(
                    Link(
                        f"{parent}->{name}",
                        tail=parent,
                        head=name,
                        capacity=link_capacity,
                    )
                )
        level_names.append(names)
    leaves = level_names[-1]

    overlay = Overlay(nodes, links)
    flow_objs = []
    classes = []
    routes: dict[str, Route] = {}
    costs = CostModelBuilder()

    for flow_index in range(flows):
        flow_id = f"f{flow_index}"
        flow_objs.append(
            Flow(flow_id, source="root", rate_min=rate_min, rate_max=rate_max)
        )
        targets = [
            leaves[(flow_index * leaves_per_flow + offset) % len(leaves)]
            for offset in range(min(leaves_per_flow, len(leaves)))
        ]
        route = overlay.dissemination_route("root", targets)
        routes[flow_id] = route
        for node_id in route.nodes[1:]:  # every traversed broker pays F
            costs.set_flow_node(node_id, flow_id, GRYPHON_FLOW_NODE_COST)
        for link_id in route.links:
            costs.set_link(link_id, flow_id, 1.0)
        for leaf in targets:
            for class_index in range(classes_per_leaf):
                class_id = f"c{flow_index}.{leaf}.{class_index}"
                rank = DEFAULT_RANKS[class_index % len(DEFAULT_RANKS)]
                classes.append(
                    ConsumerClass(
                        class_id=class_id,
                        flow_id=flow_id,
                        node=leaf,
                        max_consumers=max_consumers,
                        utility=make_utility(rank),
                    )
                )
                costs.set_consumer(leaf, class_id, GRYPHON_CONSUMER_COST)

    return build_problem(
        nodes=nodes,
        links=links,
        flows=flow_objs,
        classes=classes,
        routes=routes,
        costs=costs.build(),
    )
