"""Micro workload: a 2-flow, 1-node, 3-class instance.

Small enough for exhaustive search (ground truth in tests), analytic enough
for hand-computed assertions, and the substrate for the queueing-latency
experiment (its node utilization is a linear function of one rate:
``usage = F_a r_a + F_b r_b + G n_ca r_a + ... ``).
"""

from __future__ import annotations

import math

from repro.model.costs import CostModelBuilder
from repro.model.entities import ConsumerClass, Flow, Link, Node, Route
from repro.model.problem import Problem, build_problem
from repro.utility.functions import LogUtility


def micro_workload(
    capacity: float = 2000.0,
    rate_min: float = 1.0,
    rate_max: float = 20.0,
) -> Problem:
    """Two flows into one consumer node hosting three contending classes.

    Consumer cost 10 per unit rate: at the max rate (20) one consumer
    costs 200, so the default node (capacity 2000) fits ~9 consumers —
    admission is genuinely contended between the three classes (scales
    10, 2 and 5).
    """
    node = Node("S", capacity=capacity)
    hub = Node("P", capacity=math.inf)
    link = Link("P->S", tail="P", head="S")
    flows = [
        Flow("fa", source="P", rate_min=rate_min, rate_max=rate_max),
        Flow("fb", source="P", rate_min=rate_min, rate_max=rate_max),
    ]
    classes = [
        ConsumerClass("ca", "fa", "S", max_consumers=5, utility=LogUtility(scale=10.0)),
        ConsumerClass("cb", "fa", "S", max_consumers=5, utility=LogUtility(scale=2.0)),
        ConsumerClass("cc", "fb", "S", max_consumers=5, utility=LogUtility(scale=5.0)),
    ]
    routes = {
        "fa": Route(nodes=("P", "S"), links=("P->S",)),
        "fb": Route(nodes=("P", "S"), links=("P->S",)),
    }
    costs = (
        CostModelBuilder()
        .set_flow_node("S", "fa", 1.0)
        .set_flow_node("S", "fb", 1.0)
        .set_consumer("S", "ca", 10.0)
        .set_consumer("S", "cb", 10.0)
        .set_consumer("S", "cc", 10.0)
        .set_link("P->S", "fa", 1.0)
        .set_link("P->S", "fb", 1.0)
        .build()
    )
    return build_problem(
        nodes=[hub, node],
        links=[link],
        flows=flows,
        classes=classes,
        routes=routes,
        costs=costs,
    )
