"""Workload suite: the paper's evaluation inputs plus generators/scenarios.

* :func:`base_workload` — Table 1 (section 4.1).
* :func:`scale_consumer_nodes` / :func:`scale_flows`,
  :data:`TABLE2_WORKLOADS` — the scalability study (section 4.3).
* :mod:`repro.workloads.generator` — seeded random workloads.
* :mod:`repro.workloads.scenarios` — the motivating scenarios of section 1.1.
"""

from repro.workloads.base import (
    BASE_RATE_MAX,
    BASE_RATE_MIN,
    TABLE1_CLASS_SPECS,
    WorkloadParams,
    base_workload,
    build_workload,
)
from repro.workloads.bottleneck import link_bottleneck_workload
from repro.workloads.datacenter import fat_tree_workload, leaf_spine_workload
from repro.workloads.generator import GeneratorConfig, generate_workload
from repro.workloads.micro import micro_workload
from repro.workloads.scaling import (
    TABLE2_WORKLOADS,
    scale_consumer_nodes,
    scale_flows,
)
from repro.workloads.dynamics import (
    ChaosScenario,
    DynamicScenario,
    ScheduledChange,
    churn_scenario,
    fault_churn_scenario,
)
from repro.workloads.tree import tree_workload
from repro.workloads.scenarios import (
    Scenario,
    latest_price_scenario,
    trade_data_scenario,
)
from repro.workloads.registry import (
    WorkloadEntry,
    canonical_workload_spec,
    format_workload_spec,
    get_workload,
    list_aliases,
    list_workloads,
    parse_workload_spec,
    register_workload,
    workload_from_spec,
)

__all__ = [
    "WorkloadEntry",
    "canonical_workload_spec",
    "format_workload_spec",
    "get_workload",
    "list_aliases",
    "list_workloads",
    "parse_workload_spec",
    "register_workload",
    "workload_from_spec",
    "ChaosScenario",
    "DynamicScenario",
    "GeneratorConfig",
    "Scenario",
    "ScheduledChange",
    "churn_scenario",
    "fault_churn_scenario",
    "tree_workload",
    "fat_tree_workload",
    "leaf_spine_workload",
    "generate_workload",
    "latest_price_scenario",
    "link_bottleneck_workload",
    "micro_workload",
    "trade_data_scenario",
    "BASE_RATE_MAX",
    "BASE_RATE_MIN",
    "TABLE1_CLASS_SPECS",
    "TABLE2_WORKLOADS",
    "WorkloadParams",
    "base_workload",
    "build_workload",
    "scale_consumer_nodes",
    "scale_flows",
]
