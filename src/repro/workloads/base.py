"""The paper's base test workload (Table 1, section 4.1).

Six flows, three consumer nodes (S0, S1, S2), twenty consumer classes in
pairs: the two classes of a pair share flow, ``n^max`` and rank and differ
only in the node they attach to.  Class utility is ``rank_j * f(r_i)`` with
a shape ``f`` shared across all classes (``log(1+r)`` by default; section
4.5 varies it).  The resource model is uniform — ``F = 3``, ``G = 19``,
``c_b = 9e5`` (values measured on Gryphon) — and all flows have
``r in [10, 1000]``.  Links are never bottlenecks, so the overlay is a
star with infinite-capacity links from a producer hub to every consumer
node.

The builder generalizes the table with replication factors used by the
scalability study (section 4.3):

* ``node_replicas`` — every consumer node is cloned, with identical classes;
  flows are routed to all clones (same information, more consumers);
* ``flow_replicas`` — the entire workload is cloned, with fresh flows *and*
  fresh consumer nodes (new information flows serving new consumers).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.model.costs import (
    GRYPHON_CONSUMER_COST,
    GRYPHON_FLOW_NODE_COST,
    GRYPHON_NODE_CAPACITY,
    CostModelBuilder,
)
from repro.model.entities import ConsumerClass, Flow, Link, Node, Route
from repro.model.problem import Problem, build_problem
from repro.utility.base import UtilityFunction
from repro.utility.functions import UTILITY_SHAPES

#: Table 1 rows: (flow index, attach nodes, n^max, rank).  Each row yields
#: one class per attach node (the paper's identical class pairs).
TABLE1_CLASS_SPECS: tuple[tuple[int, tuple[str, str], int, float], ...] = (
    (0, ("S0", "S2"), 400, 20.0),
    (0, ("S0", "S2"), 800, 5.0),
    (0, ("S0", "S2"), 2000, 1.0),
    (1, ("S0", "S1"), 1000, 15.0),
    (2, ("S1", "S2"), 1500, 10.0),
    (3, ("S0", "S2"), 400, 30.0),
    (3, ("S0", "S2"), 800, 3.0),
    (3, ("S0", "S2"), 2000, 2.0),
    (4, ("S0", "S1"), 1000, 40.0),
    (5, ("S1", "S2"), 1500, 100.0),
)

BASE_FLOW_COUNT = 6
BASE_NODE_NAMES = ("S0", "S1", "S2")
BASE_RATE_MIN = 10.0
BASE_RATE_MAX = 1000.0
#: Per-(link, flow) bandwidth coefficient.  Links have infinite capacity in
#: the paper's workloads, so this only matters for usage accounting.
BASE_LINK_COST = 1.0

UtilityFactory = Callable[[float], UtilityFunction]


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs shared by the base workload and its scalings."""

    shape: str | UtilityFactory = "log"
    flow_replicas: int = 1
    node_replicas: int = 1
    node_capacity: float = GRYPHON_NODE_CAPACITY
    flow_node_cost: float = GRYPHON_FLOW_NODE_COST
    consumer_cost: float = GRYPHON_CONSUMER_COST
    rate_min: float = BASE_RATE_MIN
    rate_max: float = BASE_RATE_MAX

    def utility_factory(self) -> UtilityFactory:
        if callable(self.shape):
            return self.shape
        try:
            return UTILITY_SHAPES[self.shape]
        except KeyError:
            raise ValueError(
                f"unknown utility shape {self.shape!r}; "
                f"expected one of {sorted(UTILITY_SHAPES)}"
            ) from None


def build_workload(params: WorkloadParams) -> Problem:
    """Materialize a (possibly replicated) Table 1 workload."""
    if params.flow_replicas < 1 or params.node_replicas < 1:
        raise ValueError("replication factors must be at least 1")
    make_utility = params.utility_factory()

    hub = Node("P", capacity=math.inf)
    nodes: list[Node] = [hub]
    links: list[Link] = []
    flows: list[Flow] = []
    classes: list[ConsumerClass] = []
    routes: dict[str, Route] = {}
    costs = CostModelBuilder()

    def node_name(flow_rep: int, base_name: str, node_rep: int) -> str:
        suffix = ""
        if params.flow_replicas > 1:
            suffix += f".f{flow_rep}"
        if params.node_replicas > 1:
            suffix += f".n{node_rep}"
        return base_name + suffix

    # Consumer nodes and hub links.
    for flow_rep in range(params.flow_replicas):
        for node_rep in range(params.node_replicas):
            for base_name in BASE_NODE_NAMES:
                name = node_name(flow_rep, base_name, node_rep)
                nodes.append(Node(name, capacity=params.node_capacity))
                links.append(Link(f"P->{name}", tail="P", head=name))

    for flow_rep in range(params.flow_replicas):
        # Flows of this replica.
        flow_names = {
            index: (
                f"f{index}" if params.flow_replicas == 1 else f"f{index}.f{flow_rep}"
            )
            for index in range(BASE_FLOW_COUNT)
        }
        # Which base nodes each flow must reach (union over its class specs).
        reach: dict[int, list[str]] = {index: [] for index in range(BASE_FLOW_COUNT)}
        for flow_index, attach_nodes, _, _ in TABLE1_CLASS_SPECS:
            for base_name in attach_nodes:
                if base_name not in reach[flow_index]:
                    reach[flow_index].append(base_name)

        for flow_index in range(BASE_FLOW_COUNT):
            flow_id = flow_names[flow_index]
            flows.append(
                Flow(
                    flow_id,
                    source="P",
                    rate_min=params.rate_min,
                    rate_max=params.rate_max,
                )
            )
            route_nodes = ["P"]
            route_links = []
            for node_rep in range(params.node_replicas):
                for base_name in reach[flow_index]:
                    name = node_name(flow_rep, base_name, node_rep)
                    route_nodes.append(name)
                    route_links.append(f"P->{name}")
                    costs.set_flow_node(name, flow_id, params.flow_node_cost)
                    costs.set_link(f"P->{name}", flow_id, BASE_LINK_COST)
            routes[flow_id] = Route(nodes=tuple(route_nodes), links=tuple(route_links))

        # Classes: one per (spec row, attach node, node replica).
        class_index = 0
        for flow_index, attach_nodes, max_consumers, rank in TABLE1_CLASS_SPECS:
            for base_name in attach_nodes:
                for node_rep in range(params.node_replicas):
                    name = node_name(flow_rep, base_name, node_rep)
                    class_id = f"c{class_index:02d}"
                    if params.flow_replicas > 1:
                        class_id += f".f{flow_rep}"
                    if params.node_replicas > 1:
                        class_id += f".n{node_rep}"
                    classes.append(
                        ConsumerClass(
                            class_id=class_id,
                            flow_id=flow_names[flow_index],
                            node=name,
                            max_consumers=max_consumers,
                            utility=make_utility(rank),
                        )
                    )
                    costs.set_consumer(name, class_id, params.consumer_cost)
                class_index += 1

    return build_problem(
        nodes=nodes,
        links=links,
        flows=flows,
        classes=classes,
        routes=routes,
        costs=costs.build(),
    )


def base_workload(shape: str | UtilityFactory = "log") -> Problem:
    """The exact Table 1 workload: 6 flows, 3 consumer nodes, 20 classes."""
    return build_workload(WorkloadParams(shape=shape))
