"""LRGP — utility optimization for event-driven distributed infrastructures.

A full reproduction of Lumezanu, Bhola & Astley (ICDCS 2006): the LRGP
distributed optimizer (Lagrangian rate allocation + greedy consumer
admission linked by benefit/cost node prices), the system model it runs on,
a message-passing runtime, an event-driven pub/sub simulator used to
validate the resource model, baselines (simulated annealing among them),
the paper's workloads and the full experiment harness.

Quickstart::

    import repro

    result = repro.solve(repro.base_workload(), method="lrgp")
    print(result.utility, result.converged_at)

``repro.solve`` is the unified front door over every optimizer family
(LRGP reference/vectorized engines, multirate, two-stage pruning, and the
baselines); the driver classes (``LRGP``, ``MultirateLRGP``, ...) remain
available for stepwise control and mid-run reconfiguration.
"""

from repro.core import (
    LRGP,
    AdaptiveGamma,
    FixedGamma,
    IterationRecord,
    LRGPConfig,
    MultirateLRGP,
    iterations_until_convergence,
    two_stage_optimize,
)
from repro.model import (
    Allocation,
    ConsumerClass,
    CostModel,
    CostModelBuilder,
    Flow,
    Link,
    Node,
    Problem,
    Route,
    build_problem,
    is_feasible,
    total_utility,
    violations,
)
from repro.obs import (
    NULL_TELEMETRY,
    ConvergenceDiagnostics,
    CsvSink,
    DiagnosticsReport,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    Telemetry,
    render_diagnostics,
    to_prometheus_text,
)
from repro.solve import SolveResult, available_methods, solve
from repro.utility import (
    LogUtility,
    PowerUtility,
    UtilityFunction,
    rank_log,
    rank_power,
)
from repro.workloads import (
    base_workload,
    generate_workload,
    get_workload,
    link_bottleneck_workload,
    list_workloads,
    micro_workload,
    scale_consumer_nodes,
    scale_flows,
    workload_from_spec,
)

__version__ = "1.0.0"

__all__ = [
    "LRGP",
    "NULL_TELEMETRY",
    "AdaptiveGamma",
    "Allocation",
    "ConsumerClass",
    "ConvergenceDiagnostics",
    "CostModel",
    "CostModelBuilder",
    "CsvSink",
    "DiagnosticsReport",
    "FixedGamma",
    "Flow",
    "IterationRecord",
    "JsonlSink",
    "LRGPConfig",
    "Link",
    "LogUtility",
    "MemorySink",
    "MetricsRegistry",
    "MultirateLRGP",
    "Node",
    "PowerUtility",
    "Problem",
    "Route",
    "SolveResult",
    "Telemetry",
    "UtilityFunction",
    "available_methods",
    "base_workload",
    "build_problem",
    "generate_workload",
    "get_workload",
    "is_feasible",
    "iterations_until_convergence",
    "link_bottleneck_workload",
    "list_workloads",
    "micro_workload",
    "rank_log",
    "rank_power",
    "render_diagnostics",
    "scale_consumer_nodes",
    "scale_flows",
    "solve",
    "to_prometheus_text",
    "total_utility",
    "two_stage_optimize",
    "violations",
    "workload_from_spec",
]
